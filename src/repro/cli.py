"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Generate a dataset, run one RMGP query and print the outcome
    (``--json`` for a machine-readable summary).
``profile``
    Run one query under a trace recorder and print the span tree;
    optionally export the ``repro-trace/v2`` JSONL, a Chrome
    (Perfetto-loadable) trace, and Prometheus text.  ``--memory``
    switches to the ``tracemalloc``-backed recorder and reports the
    top spans by peak heap allocation.
``trace``
    Print the paper's Table 1 best-response trace (``--jsonl`` /
    ``--chrome`` also write the recorded trace).
``analyze``
    Critical-path / straggler report of an exported JSONL trace
    (see :mod:`repro.obs.analysis`).
``figure``
    Regenerate one of the paper's evaluation figures as a text table.
``dataset``
    Generate a synthetic dataset, print its statistics, and optionally
    write the edge list / check-ins to disk.
``distributed``
    Run the decentralized game against fetch-and-execute once;
    ``--trace`` / ``--chrome`` export the causally-stitched
    cross-node trace, ``--analyze`` prints its critical path.
``churn``
    Feed a seeded random mutation stream through the incremental
    engine and compare sustained throughput, per-batch vertex
    movement, and equilibrium quality against re-solving from
    scratch; ``--differential`` additionally cross-checks every
    batch with the differential harness.
``serve``
    Run the partitioning service: an asyncio HTTP/JSON server with a
    bounded solve pool, an LRU instance store, per-request deadlines
    and cancellation, chunked progress streaming, ``/metrics``,
    per-request tracing and an always-on flight recorder
    (see ``docs/API.md`` § Serving).
``top``
    Live terminal console of one running server: polls ``/metrics``
    and ``/v1/health`` and renders queue depth, latency p50/p99,
    per-solver traffic and flight-recorder activity.
``flight``
    Inspect one flight-recorder dump: validate it against
    ``repro-trace/v2``, list the captured traces, and print the
    critical-path report of what the server was doing when the
    trigger fired.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.core.registry import SOLVERS

#: Registry names usable without extra arguments (cap/minpart need
#: capacities / min_participants, which the CLI does not collect).
_CLI_METHODS = sorted(
    name for name in SOLVERS
    if name not in ("cap", "capacitated", "minpart", "with_minimums")
)


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RMGP: real-time multi-criteria social graph partitioning",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="run one RMGP query")
    _add_dataset_arguments(solve)
    solve.add_argument(
        "--method",
        default="all",
        choices=_CLI_METHODS,
        help="algorithm variant (default: all)",
    )
    solve.add_argument("--alpha", type=float, default=0.5)
    solve.add_argument(
        "--normalize",
        default="pessimistic",
        choices=["none", "optimistic", "pessimistic"],
    )
    solve.add_argument("--top", type=int, default=5,
                       help="show the N most popular classes")
    solve.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON (result.to_dict()) instead of text",
    )
    solve.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="real-time budget: stop at the first round boundary past "
             "this wall-clock deadline and report the best-so-far "
             "assignment (stop_reason='deadline')",
    )
    solve.add_argument(
        "--round-budget", type=float, metavar="SECONDS",
        help="per-round budget: stop once a round exceeds this",
    )
    solve.add_argument(
        "--checkpoint", metavar="PATH",
        help="write a resumable checkpoint here (periodically with "
             "--checkpoint-every, and always on interrupt)",
    )
    solve.add_argument(
        "--checkpoint-every", type=int, metavar="N",
        help="checkpoint every N rounds (requires --checkpoint)",
    )
    solve.add_argument(
        "--resume", metavar="PATH",
        help="resume a previously interrupted solve from this checkpoint",
    )
    _add_backend_arguments(solve)

    profile = commands.add_parser(
        "profile", help="run one query under a trace recorder"
    )
    profile.add_argument(
        "--dataset",
        default="paper",
        choices=["gowalla", "foursquare", "paper"],
        help="workload; 'paper' is the running example of Figure 2",
    )
    profile.add_argument("--users", type=int, default=1000)
    profile.add_argument("--events", type=int, default=32)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--alpha", type=float, default=0.5)
    profile.add_argument(
        "--method", default="gt", choices=_CLI_METHODS,
        help="algorithm variant (default: gt)",
    )
    profile.add_argument(
        "--jsonl", metavar="PATH",
        help="write the repro-trace/v2 JSONL trace here",
    )
    profile.add_argument(
        "--metrics", metavar="PATH",
        help="write Prometheus-style metrics text here",
    )
    profile.add_argument(
        "--chrome", metavar="PATH",
        help="write a Chrome trace-event (Perfetto) JSON file here",
    )
    profile.add_argument(
        "--memory",
        action="store_true",
        help="profile heap allocation per span (tracemalloc; slower)",
    )
    _add_backend_arguments(profile)

    trace = commands.add_parser("trace", help="print the Table 1 trace")
    trace.add_argument("--init", default="closest", choices=["closest", "random"])
    trace.add_argument(
        "--jsonl", metavar="PATH",
        help="also record the run and write the JSONL trace here",
    )
    trace.add_argument(
        "--chrome", metavar="PATH",
        help="also record the run and write a Chrome trace here",
    )

    analyze = commands.add_parser(
        "analyze", help="critical-path report of a JSONL trace"
    )
    analyze.add_argument("trace", help="repro-trace JSONL file to analyze")
    analyze.add_argument(
        "--top", type=int, default=12,
        help="critical-path steps to show (slowest first)",
    )

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name",
        choices=[
            "table1", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12a", "fig12b", "fig12c", "fig13", "fig14",
        ],
    )
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--chart",
        metavar="COLUMN",
        help="also render COLUMN as an ASCII bar chart",
    )
    figure.add_argument(
        "--trace",
        metavar="PATH",
        help="record the benchmark run and write the JSONL trace here",
    )

    dataset = commands.add_parser("dataset", help="generate a dataset")
    _add_dataset_arguments(dataset)
    dataset.add_argument("--edges-out", help="write the edge list here")
    dataset.add_argument("--checkins-out", help="write the check-ins here")

    distributed = commands.add_parser(
        "distributed", help="run DG vs FaE on a simulated cluster"
    )
    _add_dataset_arguments(distributed)
    distributed.add_argument("--slaves", type=int, default=2)
    distributed.add_argument(
        "--protocol", default="relayed", choices=["relayed", "peer"]
    )
    distributed.add_argument(
        "--trace", metavar="PATH",
        help="record the DG run and write the cross-node JSONL trace",
    )
    distributed.add_argument(
        "--chrome", metavar="PATH",
        help="record the DG run and write a Chrome trace-event file",
    )
    distributed.add_argument(
        "--analyze",
        action="store_true",
        help="print the critical-path / straggler report of the run",
    )

    stream = commands.add_parser(
        "stream", help="simulate the online (hourly) recommendation loop"
    )
    _add_dataset_arguments(stream)
    stream.add_argument("--epochs", type=int, default=5)
    stream.add_argument("--checkins-per-epoch", type=int, default=25)
    stream.add_argument("--movement-km", type=float, default=25.0)

    churn = commands.add_parser(
        "churn",
        help="run a mutation stream through the incremental engine and "
             "compare against re-solving from scratch",
    )
    churn.add_argument("--users", type=int, default=80)
    churn.add_argument("--events", type=int, default=6)
    churn.add_argument("--batches", type=int, default=5)
    churn.add_argument("--batch-size", type=int, default=8)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--alpha", type=float, default=0.5)
    churn.add_argument(
        "--solver", default="gt", choices=_CLI_METHODS,
        help="from-scratch reference solver (default: gt)",
    )
    churn.add_argument(
        "--movement-penalty", type=float, metavar="W",
        help="switching-cost penalty: tax each shard move by W to trade "
             "equilibrium quality for less migration",
    )
    churn.add_argument(
        "--differential",
        action="store_true",
        help="also run the differential harness on the stream and "
             "report per-batch equivalence",
    )

    serve = commands.add_parser(
        "serve", help="run the HTTP/JSON partitioning service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8350,
        help="listen port (0 binds an ephemeral port; default: 8350)",
    )
    serve.add_argument(
        "--pool-size", type=int, default=4, metavar="N",
        help="worker threads running solves (default: 4)",
    )
    serve.add_argument(
        "--max-instances", type=int, default=8, metavar="N",
        help="resident instances in the LRU store (default: 8)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=256, metavar="N",
        help="finished jobs retained for polling (default: 256)",
    )
    serve.add_argument(
        "--default-deadline", type=float, metavar="SECONDS",
        help="deadline applied to requests that do not send one "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission bound on queued (admitted, not yet running) "
             "jobs; past it requests get 429 + Retry-After (default: 64)",
    )
    serve.add_argument(
        "--admission-policy", default="reject",
        choices=["reject", "shed-expired"],
        help="full-queue policy: reject outright, or first shed queued "
             "requests whose deadline already elapsed (default: reject)",
    )
    serve.add_argument(
        "--interactive-weight", type=int, default=4, metavar="W",
        help="dequeue W interactive jobs per batch job when both "
             "classes are queued (default: 4)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-connection cap on reading the request head/body; "
             "stalled reads get 408 (default: 30)",
    )
    serve.add_argument(
        "--write-timeout", type=float, default=30.0, metavar="SECONDS",
        help="cap on one response/stream write; a stalled client "
             "connection is aborted (default: 30)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="SECONDS",
        help="graceful-shutdown budget: on SIGTERM in-flight solves get "
             "this long to finish as best-so-far results (default: 5)",
    )
    serve.add_argument(
        "--drain-checkpoint-dir", metavar="DIR",
        help="persist round-boundary checkpoints of jobs interrupted "
             "by a drain under DIR for post-restart resume "
             "(default: off)",
    )
    serve.add_argument(
        "--health-p99-ms", type=float, metavar="MS",
        help="report /v1/health status 'degraded' once the recent p99 "
             "request latency exceeds MS (default: off)",
    )
    serve.add_argument(
        "--no-trace", action="store_true",
        help="disable per-request tracing and the flight recorder "
             "(drops GET /v1/jobs/<id>/trace; default: tracing on)",
    )
    serve.add_argument(
        "--flight-dir", metavar="DIR",
        help="write flight-recorder dumps (repro-trace/v2 JSONL + "
             "metrics snapshot) under DIR on 5xx/shed/drain/overload "
             "triggers and POST /v1/debug/flight (default: off)",
    )
    serve.add_argument(
        "--flight-window", type=float, default=30.0, metavar="SECONDS",
        help="trailing seconds of completed spans one flight dump "
             "covers (default: 30)",
    )
    serve.add_argument(
        "--flight-debounce", type=float, default=30.0, metavar="SECONDS",
        help="minimum spacing between automatic flight dumps — an "
             "error storm produces one dump, not one per failure "
             "(default: 30)",
    )

    top = commands.add_parser(
        "top", help="live terminal console of a running server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8350)
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (scripting mode)",
    )
    top.add_argument(
        "--iterations", type=int, metavar="N",
        help="render N snapshots then exit (default: until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append screens instead of clearing the terminal",
    )

    flight = commands.add_parser(
        "flight", help="inspect a flight-recorder dump"
    )
    flight.add_argument(
        "dump", help="flight-*.trace.jsonl file written by the server"
    )
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="gowalla", choices=["gowalla", "foursquare"]
    )
    parser.add_argument("--users", type=int, default=1000)
    parser.add_argument("--events", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.core.registry import BACKENDS

    parser.add_argument(
        "--backend", choices=sorted(BACKENDS),
        help="execution backend for the hot kernels (is/vec/gt/sync); "
             "assignments are byte-identical to pure on every backend",
    )
    parser.add_argument(
        "--workers", type=int, metavar="N",
        help="shm worker-pool size (default: REPRO_WORKERS, then "
             "os.cpu_count(); --workers 1 runs the serial fallback)",
    )


def _backend_kwargs(arguments) -> dict:
    kwargs = {}
    if getattr(arguments, "backend", None) is not None:
        kwargs["backend"] = arguments.backend
    if getattr(arguments, "workers", None) is not None:
        kwargs["workers"] = arguments.workers
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    handler = {
        "solve": _run_solve,
        "profile": _run_profile,
        "trace": _run_trace,
        "analyze": _run_analyze,
        "figure": _run_figure,
        "dataset": _run_dataset,
        "distributed": _run_distributed,
        "stream": _run_stream,
        "churn": _run_churn,
        "serve": _run_serve,
        "top": _run_top,
        "flight": _run_flight,
    }[arguments.command]
    return handler(arguments)


# ----------------------------------------------------------------------
def _load(arguments):
    from repro.datasets import load_dataset

    return load_dataset(
        arguments.dataset,
        num_users=arguments.users,
        num_events=arguments.events,
        seed=arguments.seed,
    )


def _run_solve(arguments) -> int:
    from repro.core import RMGPGame

    data = _load(arguments)
    game = RMGPGame(
        data.graph, data.event_ids, data.cost_matrix(), alpha=arguments.alpha
    )
    normalize = None if arguments.normalize == "none" else arguments.normalize
    realtime_kwargs = {}
    if arguments.deadline is not None:
        realtime_kwargs["deadline_seconds"] = arguments.deadline
    if arguments.round_budget is not None:
        realtime_kwargs["round_budget_seconds"] = arguments.round_budget
    if arguments.checkpoint is not None:
        realtime_kwargs["checkpoint_path"] = arguments.checkpoint
    if arguments.checkpoint_every is not None:
        realtime_kwargs["checkpoint_every"] = arguments.checkpoint_every
    if arguments.resume is not None:
        realtime_kwargs["resume_from"] = arguments.resume
    realtime_kwargs.update(_backend_kwargs(arguments))
    result = game.solve(
        method=arguments.method, normalize_method=normalize,
        seed=arguments.seed, **realtime_kwargs,
    )
    if arguments.json:
        import json

        payload = result.to_dict()
        payload["dataset"] = {
            "name": data.name,
            "users": arguments.users,
            "events": arguments.events,
            "seed": arguments.seed,
            "normalize": arguments.normalize,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"dataset: {data.stats()}")
    print(result.summary())
    if not result.converged and result.stop_reason in ("deadline", "cancelled"):
        hint = (
            f" — resume with --resume {arguments.checkpoint}"
            if arguments.checkpoint else ""
        )
        print(f"interrupted: {result.stop_reason}{hint}")
    if game.normalization is not None:
        print(f"normalization: {game.normalization}")
    print(f"equilibrium: {game.verify(result)}")
    popularity: dict = {}
    for label in result.labels.values():
        popularity[label] = popularity.get(label, 0) + 1
    top = sorted(popularity.items(), key=lambda kv: -kv[1])[: arguments.top]
    print("most popular classes:")
    for label, count in top:
        print(f"  class {label}: {count} users")
    return 0


def _run_profile(arguments) -> int:
    from repro.api import partition
    from repro.obs import recording, summary_tree
    from repro.obs.exporters import prometheus_text, write_jsonl
    from repro.obs.memory import memory_recording, memory_summary

    if arguments.dataset == "paper":
        from repro.datasets import paper_example_instance

        instance = paper_example_instance(alpha=arguments.alpha)
        print("dataset: paper running example (Figure 2)")
    else:
        from repro.core import RMGPInstance
        from repro.core.normalization import normalize

        data = _load(arguments)
        print(f"dataset: {data.stats()}")
        instance = RMGPInstance(
            data.graph, data.event_ids, data.cost_matrix(),
            alpha=arguments.alpha,
        )
        instance, _ = normalize(instance, "pessimistic")
    record = memory_recording if arguments.memory else recording
    with record() as recorder:
        result = partition(
            instance, solver=arguments.method, seed=arguments.seed,
            **_backend_kwargs(arguments),
        )
    print(result.summary())
    print()
    print(summary_tree(recorder))
    if arguments.memory:
        print()
        print(memory_summary(recorder))
    if arguments.jsonl:
        count = write_jsonl(recorder, arguments.jsonl)
        print(f"trace: {count} records written to {arguments.jsonl}")
    if arguments.metrics:
        with open(arguments.metrics, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(recorder.metrics))
        print(f"metrics written to {arguments.metrics}")
    if arguments.chrome:
        from repro.obs.chrome import write_chrome_trace

        count = write_chrome_trace(recorder, arguments.chrome)
        print(f"chrome trace: {count} events written to {arguments.chrome}")
    return 0


def _run_trace(arguments) -> int:
    from repro.bench.fig_table1 import run_table1

    if arguments.jsonl or arguments.chrome:
        from repro.obs import recording
        from repro.obs.exporters import write_jsonl

        with recording() as recorder:
            table = run_table1(init=arguments.init)
        print(table)
        if arguments.jsonl:
            count = write_jsonl(recorder, arguments.jsonl)
            print(f"trace: {count} records written to {arguments.jsonl}")
        if arguments.chrome:
            from repro.obs.chrome import write_chrome_trace

            count = write_chrome_trace(recorder, arguments.chrome)
            print(
                f"chrome trace: {count} events written to {arguments.chrome}"
            )
        return 0
    print(run_table1(init=arguments.init))
    return 0


def _run_analyze(arguments) -> int:
    from repro.obs.analysis import analyze_trace_file, format_report
    from repro.obs.schema import validate_trace_file

    errors = validate_trace_file(arguments.trace)
    if errors:
        print(f"{arguments.trace}: {len(errors)} schema violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    report = analyze_trace_file(arguments.trace)
    print(format_report(report, max_path=arguments.top))
    return 0


def _run_figure(arguments) -> int:
    from repro import bench

    runners = {
        "table1": bench.run_table1,
        "fig7": bench.run_fig7,
        "fig8": bench.run_fig8,
        "fig9": bench.run_fig9,
        "fig10": bench.run_fig10,
        "fig11": bench.run_fig11,
        "fig12a": bench.run_fig12_vs_k,
        "fig12b": bench.run_fig12_vs_alpha,
        "fig12c": bench.run_fig12_per_round,
        "fig13": bench.run_fig13,
        "fig14": bench.run_fig14,
    }
    runner = runners[arguments.name]

    def _render() -> None:
        table = (
            runner() if arguments.name == "table1"
            else runner(seed=arguments.seed)
        )
        print(table)
        if getattr(arguments, "chart", None):
            from repro.bench.ascii import table_chart

            print()
            print(table_chart(table, arguments.chart))

    if getattr(arguments, "trace", None):
        from repro.obs import recording
        from repro.obs.exporters import write_jsonl

        with recording() as recorder:
            _render()
        count = write_jsonl(recorder, arguments.trace)
        print(f"trace: {count} records written to {arguments.trace}")
    else:
        _render()
    return 0


def _run_dataset(arguments) -> int:
    from repro.graph import write_checkins, write_edge_list

    data = _load(arguments)
    print(f"{data.name}: {data.stats()}")
    print(f"events: {len(data.events)}")
    if arguments.edges_out:
        write_edge_list(data.graph, arguments.edges_out)
        print(f"edge list written to {arguments.edges_out}")
    if arguments.checkins_out:
        write_checkins(data.checkins, arguments.checkins_out)
        print(f"check-ins written to {arguments.checkins_out}")
    return 0


def _run_distributed(arguments) -> int:
    from repro.distributed import DGQuery, build_cluster, hash_partition, run_fae

    data = _load(arguments)
    print(f"dataset: {data.stats()}")
    shards = hash_partition(data.graph.nodes(), arguments.slaves)
    query = DGQuery(events=data.events, alpha=0.5, seed=arguments.seed)
    cluster = build_cluster(
        data, num_slaves=arguments.slaves, shards=shards,
        protocol=arguments.protocol,
    )
    tracing = arguments.trace or arguments.chrome or arguments.analyze
    if tracing:
        from repro.obs import recording

        with recording() as recorder:
            dg = cluster.game.run(query)
    else:
        dg = cluster.game.run(query)
    print(
        f"DG[{arguments.protocol}]: rounds={dg.num_rounds} "
        f"time={dg.total_seconds:.3f}s bytes={dg.total_bytes:,} "
        f"messages={dg.total_messages}"
    )
    if arguments.trace:
        from repro.obs.exporters import write_jsonl

        count = write_jsonl(recorder, arguments.trace)
        print(f"trace: {count} records written to {arguments.trace}")
    if arguments.chrome:
        from repro.obs.chrome import write_chrome_trace

        count = write_chrome_trace(recorder, arguments.chrome)
        print(f"chrome trace: {count} events written to {arguments.chrome}")
    if arguments.analyze:
        from repro.obs.analysis import analyze_recorder, format_report

        print()
        print(format_report(analyze_recorder(recorder)))
    fae = run_fae(data.graph, data.checkins, shards, query, seed=arguments.seed)
    print(
        f"FaE: transfer={fae.transfer_seconds:.3f}s "
        f"({fae.transfer_bytes:,} bytes) "
        f"execution={fae.execution_seconds:.3f}s total={fae.total_seconds:.3f}s"
    )
    return 0


def _run_stream(arguments) -> int:
    from repro.apps import StreamingRecommender, simulate_stream

    data = _load(arguments)
    print(f"dataset: {data.stats()}")
    recommender = StreamingRecommender(
        data.graph, data.checkins, data.events, seed=arguments.seed
    )
    history = simulate_stream(
        recommender,
        epochs=arguments.epochs,
        checkins_per_epoch=arguments.checkins_per_epoch,
        movement_km=arguments.movement_km,
        seed=arguments.seed,
    )
    print("epoch  checkins  deviations  rounds  reassigned  objective")
    for stats in history:
        print(
            f"{stats.epoch:5d}  {stats.checkins_ingested:8d}  "
            f"{stats.deviations:10d}  {stats.rounds:6d}  "
            f"{stats.users_reassigned:10d}  {stats.objective_total:9.1f}"
        )
    return 0


def _run_churn(arguments) -> int:
    from repro.bench.churn import churn_instance, run_churn

    run = run_churn(
        num_users=arguments.users,
        num_events=arguments.events,
        num_batches=arguments.batches,
        batch_size=arguments.batch_size,
        seed=arguments.seed,
        alpha=arguments.alpha,
        scratch_solver=arguments.solver,
        movement_penalty=arguments.movement_penalty,
    )
    print(run)
    if arguments.differential:
        from repro.streaming import differential_check, random_mutation_stream

        base = churn_instance(
            arguments.users, arguments.events,
            seed=arguments.seed, alpha=arguments.alpha,
        )
        stream = random_mutation_stream(
            base, arguments.batches * arguments.batch_size,
            seed=arguments.seed,
        )
        batches = [
            stream[i * arguments.batch_size : (i + 1) * arguments.batch_size]
            for i in range(arguments.batches)
        ]
        report = differential_check(
            base, batches, solver=arguments.solver, seed=arguments.seed,
            movement_penalty=arguments.movement_penalty,
        )
        print()
        print(f"differential: {report}")
        if not report.ok:
            return 1
    return 0


def _run_serve(arguments) -> int:
    from repro.serve import ServeConfig
    from repro.serve.server import run

    run(
        ServeConfig(
            host=arguments.host,
            port=arguments.port,
            pool_size=arguments.pool_size,
            max_instances=arguments.max_instances,
            max_jobs=arguments.max_jobs,
            max_queue=arguments.max_queue,
            admission_policy=arguments.admission_policy,
            interactive_weight=arguments.interactive_weight,
            read_timeout_seconds=arguments.read_timeout,
            write_timeout_seconds=arguments.write_timeout,
            drain_grace_seconds=arguments.drain_grace,
            drain_checkpoint_dir=arguments.drain_checkpoint_dir,
            default_deadline_seconds=arguments.default_deadline,
            health_p99_ms=arguments.health_p99_ms,
            trace_requests=not arguments.no_trace,
            flight_dir=arguments.flight_dir,
            flight_window_seconds=arguments.flight_window,
            flight_debounce_seconds=arguments.flight_debounce,
        )
    )
    return 0


def _run_top(arguments) -> int:
    from repro.serve.console import run_top

    iterations = arguments.iterations
    if arguments.once:
        iterations = 1
    return run_top(
        host=arguments.host,
        port=arguments.port,
        interval=arguments.interval,
        iterations=iterations,
        clear=not arguments.no_clear,
    )


def _run_flight(arguments) -> int:
    from repro.obs.flight import inspect_dump

    try:
        print(inspect_dump(arguments.dump))
    except (OSError, ValueError) as exc:
        print(f"{arguments.dump}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
