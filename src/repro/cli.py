"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Generate a dataset, run one RMGP query and print the outcome.
``trace``
    Print the paper's Table 1 best-response trace.
``figure``
    Regenerate one of the paper's evaluation figures as a text table.
``dataset``
    Generate a synthetic dataset, print its statistics, and optionally
    write the edge list / check-ins to disk.
``distributed``
    Run the decentralized game against fetch-and-execute once.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RMGP: real-time multi-criteria social graph partitioning",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="run one RMGP query")
    _add_dataset_arguments(solve)
    solve.add_argument(
        "--method",
        default="all",
        choices=["baseline", "se", "is", "gt", "all"],
        help="algorithm variant (default: all)",
    )
    solve.add_argument("--alpha", type=float, default=0.5)
    solve.add_argument(
        "--normalize",
        default="pessimistic",
        choices=["none", "optimistic", "pessimistic"],
    )
    solve.add_argument("--top", type=int, default=5,
                       help="show the N most popular classes")

    trace = commands.add_parser("trace", help="print the Table 1 trace")
    trace.add_argument("--init", default="closest", choices=["closest", "random"])

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name",
        choices=[
            "table1", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12a", "fig12b", "fig12c", "fig13", "fig14",
        ],
    )
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--chart",
        metavar="COLUMN",
        help="also render COLUMN as an ASCII bar chart",
    )

    dataset = commands.add_parser("dataset", help="generate a dataset")
    _add_dataset_arguments(dataset)
    dataset.add_argument("--edges-out", help="write the edge list here")
    dataset.add_argument("--checkins-out", help="write the check-ins here")

    distributed = commands.add_parser(
        "distributed", help="run DG vs FaE on a simulated cluster"
    )
    _add_dataset_arguments(distributed)
    distributed.add_argument("--slaves", type=int, default=2)
    distributed.add_argument(
        "--protocol", default="relayed", choices=["relayed", "peer"]
    )

    stream = commands.add_parser(
        "stream", help="simulate the online (hourly) recommendation loop"
    )
    _add_dataset_arguments(stream)
    stream.add_argument("--epochs", type=int, default=5)
    stream.add_argument("--checkins-per-epoch", type=int, default=25)
    stream.add_argument("--movement-km", type=float, default=25.0)
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="gowalla", choices=["gowalla", "foursquare"]
    )
    parser.add_argument("--users", type=int, default=1000)
    parser.add_argument("--events", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    handler = {
        "solve": _run_solve,
        "trace": _run_trace,
        "figure": _run_figure,
        "dataset": _run_dataset,
        "distributed": _run_distributed,
        "stream": _run_stream,
    }[arguments.command]
    return handler(arguments)


# ----------------------------------------------------------------------
def _load(arguments):
    from repro.datasets import load_dataset

    return load_dataset(
        arguments.dataset,
        num_users=arguments.users,
        num_events=arguments.events,
        seed=arguments.seed,
    )


def _run_solve(arguments) -> int:
    from repro.core import RMGPGame

    data = _load(arguments)
    print(f"dataset: {data.stats()}")
    game = RMGPGame(
        data.graph, data.event_ids, data.cost_matrix(), alpha=arguments.alpha
    )
    normalize = None if arguments.normalize == "none" else arguments.normalize
    result = game.solve(
        method=arguments.method, normalize_method=normalize, seed=arguments.seed
    )
    print(result.summary())
    if game.normalization is not None:
        print(f"normalization: {game.normalization}")
    print(f"equilibrium: {game.verify(result)}")
    popularity: dict = {}
    for label in result.labels.values():
        popularity[label] = popularity.get(label, 0) + 1
    top = sorted(popularity.items(), key=lambda kv: -kv[1])[: arguments.top]
    print("most popular classes:")
    for label, count in top:
        print(f"  class {label}: {count} users")
    return 0


def _run_trace(arguments) -> int:
    from repro.bench.fig_table1 import run_table1

    print(run_table1(init=arguments.init))
    return 0


def _run_figure(arguments) -> int:
    from repro import bench

    runners = {
        "table1": bench.run_table1,
        "fig7": bench.run_fig7,
        "fig8": bench.run_fig8,
        "fig9": bench.run_fig9,
        "fig10": bench.run_fig10,
        "fig11": bench.run_fig11,
        "fig12a": bench.run_fig12_vs_k,
        "fig12b": bench.run_fig12_vs_alpha,
        "fig12c": bench.run_fig12_per_round,
        "fig13": bench.run_fig13,
        "fig14": bench.run_fig14,
    }
    runner = runners[arguments.name]
    table = runner() if arguments.name == "table1" else runner(seed=arguments.seed)
    print(table)
    if getattr(arguments, "chart", None):
        from repro.bench.ascii import table_chart

        print()
        print(table_chart(table, arguments.chart))
    return 0


def _run_dataset(arguments) -> int:
    from repro.graph import write_checkins, write_edge_list

    data = _load(arguments)
    print(f"{data.name}: {data.stats()}")
    print(f"events: {len(data.events)}")
    if arguments.edges_out:
        write_edge_list(data.graph, arguments.edges_out)
        print(f"edge list written to {arguments.edges_out}")
    if arguments.checkins_out:
        write_checkins(data.checkins, arguments.checkins_out)
        print(f"check-ins written to {arguments.checkins_out}")
    return 0


def _run_distributed(arguments) -> int:
    from repro.distributed import DGQuery, build_cluster, hash_partition, run_fae

    data = _load(arguments)
    print(f"dataset: {data.stats()}")
    shards = hash_partition(data.graph.nodes(), arguments.slaves)
    query = DGQuery(events=data.events, alpha=0.5, seed=arguments.seed)
    cluster = build_cluster(
        data, num_slaves=arguments.slaves, shards=shards,
        protocol=arguments.protocol,
    )
    dg = cluster.game.run(query)
    print(
        f"DG[{arguments.protocol}]: rounds={dg.num_rounds} "
        f"time={dg.total_seconds:.3f}s bytes={dg.total_bytes:,} "
        f"messages={dg.total_messages}"
    )
    fae = run_fae(data.graph, data.checkins, shards, query, seed=arguments.seed)
    print(
        f"FaE: transfer={fae.transfer_seconds:.3f}s "
        f"({fae.transfer_bytes:,} bytes) "
        f"execution={fae.execution_seconds:.3f}s total={fae.total_seconds:.3f}s"
    )
    return 0


def _run_stream(arguments) -> int:
    from repro.apps import StreamingRecommender, simulate_stream

    data = _load(arguments)
    print(f"dataset: {data.stats()}")
    recommender = StreamingRecommender(
        data.graph, data.checkins, data.events, seed=arguments.seed
    )
    history = simulate_stream(
        recommender,
        epochs=arguments.epochs,
        checkins_per_epoch=arguments.checkins_per_epoch,
        movement_km=arguments.movement_km,
        seed=arguments.seed,
    )
    print("epoch  checkins  deviations  rounds  reassigned  objective")
    for stats in history:
        print(
            f"{stats.epoch:5d}  {stats.checkins_ingested:8d}  "
            f"{stats.deviations:10d}  {stats.rounds:6d}  "
            f"{stats.users_reassigned:10d}  {stats.objective_total:9.1f}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
