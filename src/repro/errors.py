"""Exception hierarchy for the RMGP reproduction library.

All library-specific errors derive from :class:`RMGPError` so that callers
can catch every failure mode of this package with a single ``except``
clause while still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class RMGPError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(RMGPError):
    """Raised for structural graph problems (missing nodes, bad edges)."""


class ConfigurationError(RMGPError):
    """Raised when solver or query parameters are invalid.

    Examples: ``alpha`` outside ``(0, 1)``, an empty class set, a cost
    matrix whose shape does not match the instance.
    """


class ConvergenceError(RMGPError):
    """Raised when an iterative solver exceeds its round budget.

    Best-response dynamics on an exact potential game always terminate,
    so hitting this error indicates either a far-too-small ``max_rounds``
    or a bug in a cost function (e.g. one that changes between rounds).
    """


class DataError(RMGPError):
    """Raised for malformed dataset files or impossible dataset parameters."""


class SolverError(RMGPError):
    """Raised when an external-style solver (LP, max-flow) fails."""


class ProtocolError(RMGPError):
    """Raised when the decentralized game protocol is violated.

    For example a slave answering for a color it does not own, or a
    strategy update for a player that is not part of the query.
    """


class SlaveUnreachableError(ProtocolError):
    """Raised when a slave stays unreachable past the retry budget.

    Carries the failing slave's id so callers can decide between
    aborting the query and degrading (re-sharding the dead slave's
    players onto survivors).
    """

    def __init__(self, slave_id: str, message: str = "") -> None:
        super().__init__(
            message
            or f"slave {slave_id!r} unreachable: retry budget exhausted"
        )
        self.slave_id = slave_id
