"""Causal trace propagation across the simulated cluster.

The decentralized framework runs master, slaves and the network as
separate actors; a flat per-process recorder cannot link a master round
to the messages it fanned out and the slave compute they triggered.
This module supplies the glue:

* :class:`TraceContext` — the (trace id, parent span id, causal time)
  triple the master stamps onto DG messages and slave calls.  It is
  created **only when a recorder is attached** (the same only-when-set
  rule the real-time budgets use), so fault-free byte ledgers stay
  byte-identical with tracing off: context never contributes wire
  bytes, and no context means no code runs.
* :class:`RemoteSpan` — a span recorded *away* from the master recorder
  (on a slave, or inside the network transport), carrying explicit
  start/end times on the shared **simulated** timeline plus the master
  span id it is causally a child of.
* :class:`SpanCollector` — the buffer remote actors append to.  The
  master drains it at the end of a run and grafts the spans into its
  recorder via :meth:`~repro.obs.recorder.TraceRecorder.adopt`,
  producing one causally-linked trace.

Timebase: remote spans live on the deterministic simulated clock
(transfer + max-parallel compute, the Figure 14 quantity); adoption
shifts them by a constant offset so they share the master recorder's
origin.  Durations are therefore exact simulated seconds, which is what
the critical-path analysis (:mod:`repro.obs.analysis`) consumes.

The module also owns the W3C ``traceparent`` helpers the serving layer
uses to carry a trace id across the HTTP boundary
(:func:`parse_traceparent` / :func:`format_traceparent` /
:func:`new_trace_id`).  We follow the Trace Context spec's restart
semantics: a malformed header is *ignored* (the server starts a fresh
trace) rather than rejected, so broken upstream tracers never fail a
solve request.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.spans import SpanEvent

#: HTTP header carrying the W3C Trace Context (lowercase per the spec).
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<parent_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """Fresh random W3C trace id (32 lowercase hex chars).

    Uses :func:`os.urandom`, never the solver RNG — trace identity must
    not perturb solver randomness (assignments stay byte-identical with
    tracing on or off).
    """
    return os.urandom(16).hex()


def parse_traceparent(value: Optional[str]) -> Optional[str]:
    """Trace id of a W3C ``traceparent`` header, or ``None``.

    Accepts ``version-traceid-parentid-flags`` with lowercase hex
    fields; per the spec, version ``ff`` and all-zero trace/parent ids
    are invalid.  Malformed values return ``None`` — the caller restarts
    the trace, it never errors the request.
    """
    if not value:
        return None
    match = _TRACEPARENT_RE.match(value.strip())
    if match is None:
        return None
    if match.group("version") == "ff":
        return None
    trace_id = match.group("trace_id")
    if trace_id == "0" * 32 or match.group("parent_id") == "0" * 16:
        return None
    return trace_id


def format_traceparent(trace_id: str, span_id: Optional[str] = None) -> str:
    """``traceparent`` header value for an outbound request.

    ``span_id`` defaults to a fresh random 16-hex parent id (the client
    has no server-side span to name; the id only needs to be non-zero).
    """
    if span_id is None:
        span_id = os.urandom(8).hex()
    return f"00-{trace_id}-{span_id}-01"


@dataclass(frozen=True)
class TraceContext:
    """Causal coordinates carried by one DG message or slave call.

    ``parent_span_id`` names a span in the *master's* recorder;
    ``sim_time`` anchors the receiver's work on the shared simulated
    timeline; ``collector`` is where the receiver records its spans.
    The context is deliberately weightless on the wire — stamping it
    onto a :class:`~repro.distributed.messages.Message` never changes
    ``payload_bytes`` or ``total_bytes``.
    """

    trace_id: str
    parent_span_id: Optional[int]
    sim_time: float
    collector: "SpanCollector"

    def record(
        self,
        name: str,
        node: str,
        start: float,
        end: float,
        events: Optional[List[SpanEvent]] = None,
        **attrs: Any,
    ) -> "RemoteSpan":
        """Record one remote span under this context's parent."""
        return self.collector.record(
            name,
            node=node,
            start=start,
            end=end,
            parent_span_id=self.parent_span_id,
            events=events,
            **attrs,
        )


@dataclass
class RemoteSpan:
    """One span produced away from the master recorder.

    Times are explicit (no clock callback): remote actors know exactly
    when their work happened on the simulated timeline, and adoption
    must not re-time them.
    """

    name: str
    node: str
    start: float
    end: float
    parent_span_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanCollector:
    """Append-only buffer of :class:`RemoteSpan` records.

    One collector is shared by every actor of a traced run; the master
    drains it once and adopts the spans in record order (which is causal
    order, because the protocol is lockstep).
    """

    def __init__(self) -> None:
        self.spans: List[RemoteSpan] = []

    def record(
        self,
        name: str,
        node: str,
        start: float,
        end: float,
        parent_span_id: Optional[int] = None,
        events: Optional[List[SpanEvent]] = None,
        **attrs: Any,
    ) -> RemoteSpan:
        """Append one remote span; returns it for attr updates."""
        span = RemoteSpan(
            name=name,
            node=node,
            start=start,
            end=end,
            parent_span_id=parent_span_id,
            attrs=dict(attrs),
            events=list(events) if events else [],
        )
        self.spans.append(span)
        return span

    def drain(self) -> List[RemoteSpan]:
        """All recorded spans; the buffer is emptied."""
        spans, self.spans = self.spans, []
        return spans

    def __len__(self) -> int:
        return len(self.spans)
