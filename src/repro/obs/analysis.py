"""Critical-path analysis of distributed traces.

Consumes the causally-linked traces the DG coordinator produces (master
spans plus adopted slave/network spans, see :mod:`repro.obs.context`)
and answers the questions Figure 13/14 experiments raise in practice:
*which slave is the straggler*, *how much time do the others idle
waiting for it*, *how skewed is the load*, and *how much does the
reliability layer amplify traffic via retries*.

The protocol is lockstep — per phase every slave works in parallel and
the master waits for the slowest — so the critical path through a round
is the causal chain of per-step maxima: for each group of sibling spans
with the same name (one per slave, or one per delivery) the slowest
member is on the path and everyone else idles for the difference.

The same machinery covers the shared-memory backend
(:mod:`repro.parallel`): solver ``round`` spans whose subtree contains
adopted ``worker.compute`` spans are analyzed exactly like DG rounds —
per-worker busy time, idle-behind-the-slowest-chunk, and an overall
straggler named ``worker-N`` — so ``repro analyze`` answers "which
worker is slow" for a parallel solve with no extra flags.

The serving layer (:mod:`repro.serve`) produces a third trace shape:
``serve.request`` > ``serve.queue_wait`` + ``job.solve`` > solver
spans.  Those are digested into per-request reports — total latency
split into queue wait vs compute, naming the bottleneck — so ``repro
analyze`` answers "was this slow request queued or computing" straight
from ``GET /v1/jobs/<id>/trace`` output or a flight-recorder dump.

Works on exported JSONL records as well as live recorders, so the CLI
(``repro analyze trace.jsonl``) and tests share one implementation.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import TraceRecorder

#: Spans counted as parallel compute work, grouped per node: DG
#: slave-side phases and shm-backend worker chunks (repro.parallel).
_WORK_PREFIXES = ("slave.", "worker.")
#: Spans counted as network time.
_NET_NAMES = ("net.deliver", "net.exchange")


@dataclass
class PathSegment:
    """One step on the critical path (the slowest sibling of its group)."""

    name: str
    node: Optional[str]
    seconds: float
    round_index: Optional[int] = None
    slack: float = 0.0  # lead over the second-slowest sibling


@dataclass
class RoundReport:
    """Straggler/idle/imbalance/retry digest of one DG round."""

    round_index: int
    straggler: Optional[str] = None
    straggler_seconds: float = 0.0
    compute_seconds: float = 0.0  # charged: sum of per-step maxima
    idle_seconds: float = 0.0  # others waiting for each step's maximum
    imbalance: float = 0.0  # max busy / mean busy across slaves
    net_seconds: float = 0.0
    deliveries: int = 0
    attempts: int = 0
    slave_busy: Dict[str, float] = field(default_factory=dict)

    @property
    def retry_amplification(self) -> float:
        """Delivery attempts per message (1.0 = no retries)."""
        if not self.deliveries:
            return 1.0
        return self.attempts / self.deliveries


@dataclass
class RequestReport:
    """Latency split of one served request (``serve.request`` span)."""

    job: Optional[str] = None
    trace_id: Optional[str] = None
    solver: Optional[str] = None
    state: Optional[str] = None
    total_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    solve_seconds: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Where the request spent most of its life."""
        if self.queue_wait_seconds > self.solve_seconds:
            return "queue-wait"
        return "compute"


@dataclass
class TraceReport:
    """Whole-trace analysis: per-round digests plus totals."""

    rounds: List[RoundReport] = field(default_factory=list)
    critical_path: List[PathSegment] = field(default_factory=list)
    requests: List[RequestReport] = field(default_factory=list)

    @property
    def straggler(self) -> Optional[str]:
        """Node (DG slave or shm worker) with the most total busy time."""
        busy: Dict[str, float] = defaultdict(float)
        for report in self.rounds:
            for node, seconds in report.slave_busy.items():
                busy[node] += seconds
        if not busy:
            return None
        return max(busy, key=lambda node: (busy[node], node))

    @property
    def total_compute_seconds(self) -> float:
        return sum(r.compute_seconds for r in self.rounds)

    @property
    def total_idle_seconds(self) -> float:
        return sum(r.idle_seconds for r in self.rounds)

    @property
    def retry_amplification(self) -> float:
        deliveries = sum(r.deliveries for r in self.rounds)
        attempts = sum(r.attempts for r in self.rounds)
        return attempts / deliveries if deliveries else 1.0


# ----------------------------------------------------------------------
def analyze_records(records: Iterable[Dict[str, Any]]) -> TraceReport:
    """Analyze exported trace records (``repro-trace`` v1 or v2)."""
    spans = [r for r in records if r.get("type") == "span"]
    children: Dict[Any, List[Dict[str, Any]]] = defaultdict(list)
    for span in spans:
        children[span.get("parent")].append(span)

    report = TraceReport()
    for span in spans:
        name = span.get("name")
        if name == "serve.request":
            report.requests.append(
                _digest_request(span, children, report.critical_path)
            )
            continue
        if name not in ("dg.round", "round"):
            continue
        attrs = span.get("attrs") or {}
        round_report = RoundReport(round_index=int(attrs.get("round", -1)))
        _walk_round(span, children, round_report, report.critical_path)
        if (
            name == "round"
            and not round_report.slave_busy
            and not round_report.deliveries
        ):
            # A plain solver round with no adopted worker spans under it
            # — nothing parallel happened, so there is nothing to digest.
            continue
        busy = round_report.slave_busy
        if busy:
            straggler = max(busy, key=lambda node: (busy[node], node))
            round_report.straggler = straggler
            round_report.straggler_seconds = busy[straggler]
            mean = sum(busy.values()) / len(busy)
            if mean > 0:
                round_report.imbalance = busy[straggler] / mean
        report.rounds.append(round_report)
    report.rounds.sort(key=lambda r: r.round_index)
    return report


def _walk_round(
    span: Dict[str, Any],
    children: Dict[Any, List[Dict[str, Any]]],
    report: RoundReport,
    path: List[PathSegment],
) -> None:
    """Accumulate one round subtree into ``report`` and ``path``.

    Sibling spans sharing a parent and a name ran in parallel (one per
    slave / one per delivery); the group is charged its maximum and the
    rest idles.
    """
    stack = [span]
    while stack:
        parent = stack.pop(0)
        groups: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
        for child in children.get(parent.get("id"), []):
            stack.append(child)
            name = child.get("name", "")
            if name.startswith(_WORK_PREFIXES) or name in _NET_NAMES:
                groups[name].append(child)
        for name in sorted(groups):
            group = groups[name]
            durations = sorted(
                (_duration(member) for member in group), reverse=True
            )
            charged = durations[0]
            slowest = max(group, key=_duration)
            if name.startswith(_WORK_PREFIXES):
                report.compute_seconds += charged
                report.idle_seconds += sum(charged - d for d in durations[1:])
                for member in group:
                    node = member.get("node")
                    if node is not None:
                        report.slave_busy[node] = (
                            report.slave_busy.get(node, 0.0)
                            + _duration(member)
                        )
            else:
                report.net_seconds += charged
                for member in group:
                    attrs = member.get("attrs") or {}
                    messages = int(attrs.get("messages", 1))
                    report.deliveries += messages
                    report.attempts += int(attrs.get("attempts", messages))
            path.append(
                PathSegment(
                    name=name,
                    node=slowest.get("node"),
                    seconds=charged,
                    round_index=report.round_index,
                    slack=(
                        charged - durations[1] if len(durations) > 1 else 0.0
                    ),
                )
            )


def _digest_request(
    span: Dict[str, Any],
    children: Dict[Any, List[Dict[str, Any]]],
    path: List[PathSegment],
) -> RequestReport:
    """Split one ``serve.request`` span into queue wait vs compute.

    The two phases are serial (a job waits in the admission queue, then
    solves), so each direct-child phase span becomes one critical-path
    segment with no round index.
    """
    attrs = span.get("attrs") or {}
    request = RequestReport(
        job=attrs.get("job"),
        trace_id=attrs.get("trace_id"),
        solver=attrs.get("solver"),
        state=attrs.get("state"),
        total_seconds=_duration(span),
    )
    node = span.get("node")
    for child in children.get(span.get("id"), []):
        name = child.get("name")
        if name == "serve.queue_wait":
            request.queue_wait_seconds += _duration(child)
        elif name == "job.solve":
            request.solve_seconds += _duration(child)
        else:
            continue
        path.append(
            PathSegment(
                name=name,
                node=child.get("node", node),
                seconds=_duration(child),
                round_index=None,
            )
        )
    return request


def _duration(span: Dict[str, Any]) -> float:
    return float(span.get("end", 0.0)) - float(span.get("start", 0.0))


def analyze_recorder(recorder: "TraceRecorder") -> TraceReport:
    """Analyze a live recorder (after the traced run finished)."""
    from repro.obs.exporters import trace_records

    return analyze_records(list(trace_records(recorder)))


def analyze_trace_file(path: str) -> TraceReport:
    """Analyze an exported JSONL trace file."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return analyze_records(records)


# ----------------------------------------------------------------------
def format_report(report: TraceReport, max_path: int = 12) -> str:
    """Human-readable critical-path / straggler report."""
    lines: List[str] = []
    if not report.rounds and not report.requests:
        return "no distributed or parallel rounds in trace (nothing to analyze)"
    for request in report.requests:
        label = request.job or "request"
        desc = (
            f"{label}: {request.total_seconds * 1e3:.3f} ms total = "
            f"queue-wait {request.queue_wait_seconds * 1e3:.3f} ms + "
            f"compute {request.solve_seconds * 1e3:.3f} ms"
            f" -> bottleneck: {request.bottleneck}"
        )
        if request.solver:
            desc += f" (solver {request.solver}"
            if request.state:
                desc += f", state {request.state}"
            desc += ")"
        lines.append(desc)
        if request.trace_id:
            lines.append(f"  trace id: {request.trace_id}")
    if not report.rounds:
        segments = sorted(
            report.critical_path, key=lambda s: s.seconds, reverse=True
        )[:max_path]
        if segments:
            lines.append("critical path (slowest steps first):")
            for segment in segments:
                node = segment.node or "server"
                lines.append(
                    f"  {segment.seconds:.6f}s  {segment.name} on {node}"
                    f" (slack {segment.slack:.6f}s)"
                )
        return "\n".join(lines)
    lines.append(
        f"rounds: {len(report.rounds)}  "
        f"compute {report.total_compute_seconds:.6f}s  "
        f"idle {report.total_idle_seconds:.6f}s  "
        f"retry amplification {report.retry_amplification:.2f}x"
    )
    if report.straggler is not None:
        lines.append(f"overall straggler: {report.straggler}")
    for r in report.rounds:
        desc = f"round {r.round_index}:"
        if r.straggler is not None:
            desc += (
                f" straggler={r.straggler}"
                f" ({r.straggler_seconds:.6f}s busy)"
            )
        desc += (
            f" compute={r.compute_seconds:.6f}s"
            f" idle={r.idle_seconds:.6f}s"
            f" imbalance={r.imbalance:.2f}x"
        )
        if r.deliveries:
            desc += (
                f" net={r.net_seconds:.6f}s"
                f" retries={max(r.attempts - r.deliveries, 0)}"
                f" (amplification {r.retry_amplification:.2f}x)"
            )
        lines.append(desc)
    segments = sorted(
        report.critical_path, key=lambda s: s.seconds, reverse=True
    )[:max_path]
    if segments:
        lines.append("critical path (slowest steps first):")
        for segment in segments:
            node = segment.node or "master"
            where = (
                f"round {segment.round_index}, "
                if segment.round_index is not None
                else ""
            )
            lines.append(
                f"  {segment.seconds:.6f}s  {segment.name} on {node}"
                f" ({where}slack {segment.slack:.6f}s)"
            )
    return "\n".join(lines)
