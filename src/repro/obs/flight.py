"""Always-on flight recorder: the last N seconds of serve telemetry.

Production incidents on the serving path (a 500, a shed burst, a drain)
are only debuggable if the seconds *before* the trigger were recorded —
but always-on full tracing to disk is too expensive.  The flight
recorder squares that: a bounded in-memory ring of **completed** span
and event records (cheap: one lock, one ``deque.append`` per record,
no I/O) that the server feeds every finished request into, plus
:meth:`FlightRecorder.trigger` which atomically dumps the recent window
to disk as a schema-valid ``repro-trace/v2`` JSONL file and a
Prometheus metrics snapshot.

Design constraints, in order:

* **Never perturb the solve.** Traces are added *after* a request
  finishes, from already-exported records; the ring touches no solver
  state and no RNG.
* **Schema-valid dumps.** Span ids from different request recorders
  collide (every recorder counts from 1), so ids are remapped onto one
  monotonic namespace at append time.  At dump time, spans whose parent
  fell out of the window are re-parented to root and events whose span
  is gone are dropped — the result always passes
  ``python -m repro.obs.schema``.
* **Debounced.** A 500-storm must produce one dump, not one per
  failure: triggers inside ``debounce_seconds`` of the last dump are
  counted but suppressed (``force=True`` — the manual debug endpoint —
  bypasses this).
* **One timeline.** Each added trace is shifted so its newest span ends
  at ring-insertion time on the flight clock; "the last N seconds"
  then means wall seconds regardless of each recorder's clock origin.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.exporters import SCHEMA_VERSION, metric_records, prometheus_text
from repro.obs.metrics import MetricsRegistry

#: Default ring capacity (records, spans + events).
DEFAULT_MAX_RECORDS = 4096

#: Default dump window and debounce, in seconds.
DEFAULT_WINDOW_SECONDS = 30.0
DEFAULT_DEBOUNCE_SECONDS = 30.0


@dataclass
class FlightDump:
    """One on-disk dump produced by a trigger."""

    path: str
    metrics_path: str
    reason: str
    records: int
    trace_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dump": self.path,
            "metrics": self.metrics_path,
            "reason": self.reason,
            "records": self.records,
            "trace_ids": list(self.trace_ids),
        }


class FlightRecorder:
    """Bounded ring of completed telemetry + triggered window dumps."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_records: int = DEFAULT_MAX_RECORDS,
        debounce_seconds: float = DEFAULT_DEBOUNCE_SECONDS,
        directory: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        if debounce_seconds < 0:
            raise ValueError("debounce_seconds must be >= 0")
        self.window_seconds = float(window_seconds)
        self.debounce_seconds = float(debounce_seconds)
        self.directory = directory
        self.registry = registry
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=int(max_records))
        self._next_id = 1
        self._last_dump_at: Optional[float] = None
        self._dump_seq = 0
        self.last_dump: Optional[FlightDump] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ------------------------------------------------------------------
    def add_trace(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append one finished trace's span/event records to the ring.

        ``records`` is :func:`repro.obs.exporters.trace_records` output;
        meta and metric records are skipped (the dump carries a fresh
        metrics snapshot).  Span ids are remapped onto the ring's global
        namespace and times shifted so the newest span ends "now" on
        the flight clock.  Returns the number of records appended.
        """
        spans: List[Dict[str, Any]] = []
        events: List[Dict[str, Any]] = []
        latest = None
        for record in records:
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
                end = record.get("end", record.get("start", 0.0))
                if latest is None or end > latest:
                    latest = end
            elif kind == "event":
                events.append(record)
        if not spans:
            return 0
        now = self._clock()
        offset = now - float(latest)
        with self._lock:
            idmap: Dict[int, int] = {}
            appended = 0
            for span in spans:
                new_id = self._next_id
                self._next_id += 1
                idmap[span["id"]] = new_id
                shifted = dict(span)
                shifted["id"] = new_id
                parent = span.get("parent")
                shifted["parent"] = idmap.get(parent)
                shifted["start"] = float(span["start"]) + offset
                shifted["end"] = float(span["end"]) + offset
                self._ring.append(shifted)
                appended += 1
            for event in events:
                span_id = idmap.get(event.get("span"))
                if span_id is None:
                    continue
                shifted = dict(event)
                shifted["span"] = span_id
                shifted["time"] = float(event["time"]) + offset
                self._ring.append(shifted)
                appended += 1
        return appended

    def note(self, name: str, **attrs: Any) -> None:
        """Record a zero-length marker span (shed, drain, transition)."""
        now = self._clock()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._ring.append(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": None,
                    "name": name,
                    "depth": 0,
                    "start": now,
                    "end": now,
                    "attrs": {
                        k: v
                        for k, v in attrs.items()
                        if isinstance(v, (str, int, float, bool))
                        or v is None
                    },
                }
            )

    # ------------------------------------------------------------------
    def trigger(
        self,
        reason: str,
        detail: Optional[str] = None,
        trace_id: Optional[str] = None,
        force: bool = False,
    ) -> Optional[FlightDump]:
        """Count a trigger and, debounce permitting, dump the window.

        Returns the :class:`FlightDump` on a write, ``None`` when the
        trigger was debounced or no ``directory`` is configured.
        """
        now = self._clock()
        if self.registry is not None:
            self.registry.counter(
                "serve.flight_triggers", {"reason": reason}
            ).inc()
        with self._lock:
            debounced = (
                not force
                and self._last_dump_at is not None
                and now - self._last_dump_at < self.debounce_seconds
            )
            if debounced or self.directory is None:
                suppressed = True
            else:
                suppressed = False
                self._last_dump_at = now
                self._dump_seq += 1
                seq = self._dump_seq
                window = [
                    dict(record)
                    for record in self._ring
                    if self._in_window(record, now)
                ]
        if suppressed:
            if self.registry is not None and debounced:
                self.registry.counter("serve.flight_suppressed").inc()
            return None
        dump = self._write_dump(seq, reason, detail, trace_id, now, window)
        if self.registry is not None:
            self.registry.counter("serve.flight_dumps").inc()
        self.last_dump = dump
        return dump

    def _in_window(self, record: Dict[str, Any], now: float) -> bool:
        horizon = now - self.window_seconds
        if record.get("type") == "span":
            return float(record.get("end", 0.0)) >= horizon
        return float(record.get("time", 0.0)) >= horizon

    def _write_dump(
        self,
        seq: int,
        reason: str,
        detail: Optional[str],
        trace_id: Optional[str],
        now: float,
        window: List[Dict[str, Any]],
    ) -> FlightDump:
        # Orphan repair: a span whose parent was evicted from the ring
        # (or aged out of the window) becomes a root; an event whose
        # span is gone is dropped.  Ring order already puts parents
        # before children, so one pass suffices.
        present = {
            record["id"] for record in window if record.get("type") == "span"
        }
        records: List[Dict[str, Any]] = []
        trace_ids: List[str] = []
        seen_tids = set()
        for record in window:
            if record.get("type") == "span":
                if record.get("parent") not in present:
                    record["parent"] = None
                    record["depth"] = 0
                tid = (record.get("attrs") or {}).get("trace_id")
                if isinstance(tid, str) and tid not in seen_tids:
                    seen_tids.add(tid)
                    trace_ids.append(tid)
                records.append(record)
            elif record.get("span") in present:
                records.append(record)
        meta: Dict[str, Any] = {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "flight": {
                "reason": reason,
                "detail": detail,
                "trace_id": trace_id,
                "window_seconds": self.window_seconds,
                "dumped_at": now,
                "spans": len(present),
            },
        }
        lines = [meta] + records
        if self.registry is not None:
            lines.extend(metric_records(self.registry))

        os.makedirs(self.directory, exist_ok=True)
        safe_reason = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        )
        stem = f"flight-{seq:04d}-{safe_reason}"
        path = os.path.join(self.directory, stem + ".trace.jsonl")
        metrics_path = os.path.join(self.directory, stem + ".metrics.txt")
        self._atomic_write(
            path,
            "".join(
                json.dumps(record, sort_keys=True, default=str) + "\n"
                for record in lines
            ),
        )
        self._atomic_write(
            metrics_path,
            prometheus_text(self.registry)
            if self.registry is not None
            else "",
        )
        return FlightDump(
            path=path,
            metrics_path=metrics_path,
            reason=reason,
            records=len(lines),
            trace_ids=trace_ids,
        )

    @staticmethod
    def _atomic_write(path: str, content: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(content)
        os.replace(tmp, path)


# ----------------------------------------------------------------------
def inspect_dump(path: str) -> str:
    """Human-readable digest of one flight dump (``repro flight``).

    Validates the dump against the trace schema, summarizes the window
    (reason, trace ids, span counts) and runs the critical-path
    analysis on whatever rounds the window captured.
    """
    from repro.obs.analysis import analyze_records, format_report
    from repro.obs.schema import validate_records

    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    lines: List[str] = [f"flight dump: {path}"]
    errors = validate_records(records)
    if errors:
        lines.append(f"SCHEMA INVALID ({len(errors)} violation(s)):")
        lines.extend(f"  - {error}" for error in errors[:10])
    else:
        lines.append(f"schema: valid {SCHEMA_VERSION}")
    meta = records[0] if records else {}
    flight = meta.get("flight") or {}
    if flight:
        lines.append(
            f"trigger: {flight.get('reason')}"
            + (
                f" ({flight.get('detail')})"
                if flight.get("detail")
                else ""
            )
        )
        if flight.get("trace_id"):
            lines.append(f"trigger trace id: {flight['trace_id']}")
        lines.append(
            f"window: {flight.get('window_seconds')}s,"
            f" {flight.get('spans')} spans"
        )
    spans = [r for r in records if r.get("type") == "span"]
    by_name: Dict[str, int] = {}
    trace_ids: List[str] = []
    seen = set()
    for span in spans:
        by_name[span["name"]] = by_name.get(span["name"], 0) + 1
        tid = (span.get("attrs") or {}).get("trace_id")
        if isinstance(tid, str) and tid not in seen:
            seen.add(tid)
            trace_ids.append(tid)
    if by_name:
        lines.append("spans by name:")
        for name in sorted(by_name):
            lines.append(f"  {name}: {by_name[name]}")
    if trace_ids:
        lines.append(f"trace ids in window: {len(trace_ids)}")
        for tid in trace_ids[:8]:
            lines.append(f"  {tid}")
    lines.append(format_report(analyze_records(records)))
    return "\n".join(lines)
