"""Chrome trace-event exporter (loadable in Perfetto / chrome://tracing).

Converts ``repro-trace`` records into the Trace Event JSON format:
every span becomes a complete event (``ph="X"``) on the track of the
node it ran on (master, each slave, the network), span events become
instant events (``ph="i"``), and each track is named via ``ph="M"``
thread-name metadata.  Timestamps are microseconds, shifted so the
earliest span starts at 0.

Also a command — validates an exported file::

    python -m repro.obs.chrome trace.json
"""

from __future__ import annotations

import json
import sys
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import TraceRecorder

_PID = 1
_MASTER_TRACK = "master"


def chrome_events(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Trace-event list for exported ``repro-trace`` records."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    if not spans:
        return []
    origin = min(float(span["start"]) for span in spans)

    tracks: Dict[str, int] = {_MASTER_TRACK: 0}
    span_tracks: Dict[Any, str] = {}
    out: List[Dict[str, Any]] = []
    for span in spans:
        node = span.get("node") or _MASTER_TRACK
        tid = tracks.setdefault(node, len(tracks))
        span_tracks[span.get("id")] = node
        attrs = dict(span.get("attrs") or {})
        out.append(
            {
                "name": span.get("name", ""),
                "cat": str(span.get("name", "")).split(".", 1)[0],
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": _us(float(span["start"]) - origin),
                "dur": _us(float(span["end"]) - float(span["start"])),
                "args": attrs,
            }
        )
    for event in events:
        node = span_tracks.get(event.get("span"), _MASTER_TRACK)
        out.append(
            {
                "name": event.get("name", ""),
                "cat": str(event.get("name", "")).split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tracks.get(node, 0),
                "ts": _us(float(event.get("time", origin)) - origin),
                "args": dict(event.get("attrs") or {}),
            }
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": node},
        }
        for node, tid in sorted(tracks.items(), key=lambda item: item[1])
    ]
    return meta + out


def _us(seconds: float) -> float:
    """Seconds on the recorder clock -> trace-event microseconds."""
    return round(seconds * 1e6, 3)


def chrome_trace(recorder: "TraceRecorder") -> Dict[str, Any]:
    """Chrome trace object for a live recorder."""
    from repro.obs.exporters import trace_records

    return chrome_trace_from_records(list(trace_records(recorder)))


def chrome_trace_from_records(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Chrome trace object (the JSON Object Format) for records."""
    return {
        "traceEvents": chrome_events(records),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(recorder: "TraceRecorder", path: str) -> int:
    """Write the recorder's trace to ``path``; returns the event count."""
    trace = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True, default=str)
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
def validate_chrome(trace: Any) -> List[str]:
    """Violations of the Trace Event JSON Object Format (empty = valid)."""
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["top level must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if not isinstance(phase, str) or not phase:
            errors.append(f"{where}: missing phase 'ph'")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key!r} must be an integer")
        if phase in ("X", "i", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: 'ts' must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'dur' must be a number >= 0")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def validate_chrome_file(path: str) -> List[str]:
    """Violations of an exported Chrome trace file (empty = valid)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace: {exc}"]
    return validate_chrome(trace)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.chrome TRACE.json", file=sys.stderr)
        return 2
    errors = validate_chrome_file(argv[0])
    if errors:
        print(f"{argv[0]}: {len(errors)} violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"{argv[0]}: valid Chrome trace")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
