"""Clock sources for span timing.

Recorders time spans through a zero-argument callable returning seconds.
:class:`MonotonicClock` wraps ``time.perf_counter`` (wall profiling);
:class:`ManualClock` is advanced explicitly — deterministic tests and
simulated-time traces (the distributed game, bench replays) use it so
span durations are exact by construction.
"""

from __future__ import annotations

import time


class MonotonicClock:
    """Real time: ``clock()`` returns ``time.perf_counter()``."""

    def __call__(self) -> float:
        return time.perf_counter()


class ManualClock:
    """Simulated time: ``clock()`` returns whatever was advanced so far."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time ({seconds})")
        self._now += float(seconds)
        return self._now
