"""Validation for the ``repro-trace`` JSONL schema (v1 and v2).

v2 adds the optional ``node`` key on spans — the actor the work ran on
(master = absent, a slave id, or ``"net"``) — and tightens the checks:
duplicate span ids, malformed parent ids, orphan spans, non-monotonic
span timestamps and events outside their span all fail with a message
naming the offending record.  Parent/child *time containment* is
deliberately not enforced: master spans run on the recorder's wall
clock while adopted remote spans live on the shifted simulated
timeline, so a child may legitimately extend past its parent.

Usable as a library (:func:`validate_records`, :func:`validate_trace_file`)
and as a command — the CI trace-artifact gate::

    python -m repro.obs.schema trace.jsonl

Exit status 0 means every record conforms; 1 lists the violations; 2 is
a usage error.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.exporters import SCHEMA_VERSION, SCHEMA_VERSIONS

#: Tolerance for event-inside-span checks (clock rounding).
_TIME_EPSILON = 1e-6

#: Required keys (and permissive types) per record type.
_SPEC: Dict[str, Dict[str, tuple]] = {
    "meta": {"schema": (str,)},
    "span": {
        "id": (int,),
        "parent": (int, type(None)),
        "name": (str,),
        "depth": (int,),
        "start": (int, float),
        "end": (int, float),
        "attrs": (dict,),
    },
    "event": {
        "span": (int,),
        "name": (str,),
        "time": (int, float),
        "attrs": (dict,),
    },
    "counter": {"name": (str,), "labels": (dict,), "value": (int, float)},
    "gauge": {"name": (str,), "labels": (dict,), "value": (int, float)},
    "histogram": {
        "name": (str,),
        "labels": (dict,),
        "boundaries": (list,),
        "counts": (list,),
        "sum": (int, float),
        "count": (int,),
    },
}

#: Optional keys (v2) checked for type when present.
_OPTIONAL: Dict[str, Dict[str, tuple]] = {
    "span": {"node": (str,)},
}


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema violations of an iterable of parsed records (empty = valid)."""
    errors: List[str] = []
    span_times: Dict[int, tuple] = {}
    saw_meta = False
    for index, record in enumerate(records):
        where = f"record {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        kind = record.get("type")
        if index == 0:
            saw_meta = kind == "meta"
            if not saw_meta:
                errors.append(f"{where}: first record must be type 'meta'")
            elif record.get("schema") not in SCHEMA_VERSIONS:
                errors.append(
                    f"{where}: schema {record.get('schema')!r} not one of "
                    f"{list(SCHEMA_VERSIONS)}"
                )
        if kind not in _SPEC:
            errors.append(f"{where}: unknown type {kind!r}")
            continue
        for key, types in _SPEC[kind].items():
            if key not in record:
                errors.append(f"{where} ({kind}): missing key {key!r}")
            elif not isinstance(record[key], types):
                errors.append(
                    f"{where} ({kind}): {key!r} has type "
                    f"{type(record[key]).__name__}"
                )
        for key, types in _OPTIONAL.get(kind, {}).items():
            if key in record and not isinstance(record[key], types):
                errors.append(
                    f"{where} ({kind}): optional {key!r} has type "
                    f"{type(record[key]).__name__}"
                )
        if kind == "span" and all(
            isinstance(record.get(key), _SPEC["span"][key])
            for key in ("id", "parent", "start", "end")
        ):
            if record["end"] < record["start"]:
                errors.append(
                    f"{where} (span): non-monotonic timestamps — end "
                    f"{record['end']} precedes start {record['start']}"
                )
            parent = record["parent"]
            if parent is not None and parent not in span_times:
                errors.append(
                    f"{where} (span): orphan — parent {parent} not seen "
                    f"before child {record['id']}"
                )
            if record["id"] in span_times:
                errors.append(
                    f"{where} (span): duplicate span id {record['id']}"
                )
            span_times[record["id"]] = (record["start"], record["end"])
        if kind == "event":
            span_id = record.get("span")
            if span_id not in span_times:
                errors.append(f"{where} (event): unknown span {span_id}")
            elif isinstance(record.get("time"), (int, float)):
                start, end = span_times[span_id]
                if not (
                    start - _TIME_EPSILON
                    <= record["time"]
                    <= end + _TIME_EPSILON
                ):
                    errors.append(
                        f"{where} (event): time {record['time']} outside "
                        f"span {span_id} [{start}, {end}]"
                    )
        if kind == "histogram" and "boundaries" in record and "counts" in record:
            if len(record["counts"]) != len(record["boundaries"]) + 1:
                errors.append(
                    f"{where} (histogram): need len(boundaries)+1 counts"
                )
    if not saw_meta:
        errors.append("trace is empty (no meta record)")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Schema violations of a JSONL trace file (empty list = valid)."""
    records: List[Dict[str, Any]] = []
    errors: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                errors.append(f"line {line_number}: invalid JSON ({exc})")
    return errors + validate_records(records)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.jsonl", file=sys.stderr)
        return 2
    errors = validate_trace_file(argv[0])
    if errors:
        print(f"{argv[0]}: {len(errors)} schema violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"{argv[0]}: valid {SCHEMA_VERSION} trace")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
