"""Metrics registry: counters, gauges, fixed-boundary histograms.

Instruments are keyed by ``(name, labels)`` — labels are an optional
small mapping (e.g. ``{"solver": "RMGP_gt"}``) so one registry can hold
the same metric for several solver runs.  Histogram buckets use
Prometheus ``le`` semantics: bucket ``i`` counts observations
``<= boundaries[i]``, with one implicit ``+inf`` overflow bucket, and
boundaries are *fixed at creation* so merged/exported histograms always
line up.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

#: Default histogram boundaries — a 1-2-5 ladder wide enough for both
#: per-round counts (frontier sizes, moves) and millisecond timings.
DEFAULT_BOUNDARIES: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, Any]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (moves, bytes, retries...)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-write-wins value (table bytes, recovery seconds...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary distribution (frontier sizes, round bytes...)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        boundaries: Sequence[float] = DEFAULT_BOUNDARIES,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing"
            )
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Prometheus `le` buckets: first boundary >= value.
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Create-or-fetch store for all instruments of one recorder."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}

    def _get(self, cls, name: str, labels, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        boundaries: Sequence[float] = DEFAULT_BOUNDARIES,
    ) -> Histogram:
        histogram = self._get(Histogram, name, labels, boundaries=boundaries)
        if histogram.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-registered with different boundaries"
            )
        return histogram

    def __iter__(self) -> Iterator[Any]:
        """Instruments in name order (stable export order)."""
        return iter(
            sorted(self._instruments.values(), key=lambda m: (m.name, m.labels))
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> Iterable[Any]:
        return list(self)
