"""Metrics registry: counters, gauges, fixed-boundary histograms.

Instruments are keyed by ``(name, labels)`` — labels are an optional
small mapping (e.g. ``{"solver": "RMGP_gt"}``) so one registry can hold
the same metric for several solver runs.  Histogram buckets use
Prometheus ``le`` semantics: bucket ``i`` counts observations
``<= boundaries[i]``, with one implicit ``+inf`` overflow bucket, and
boundaries are *fixed at creation* so merged/exported histograms always
line up.

The registry and its instruments are thread-safe: create-or-fetch and
every update (``inc``/``set``/``observe``) run under one registry-wide
lock, so concurrent ``partition()`` calls sharing a recorder (the
serving path runs many at once) never interleave a read-modify-write.
Standalone instruments (constructed without a registry) get a private
lock.  :meth:`MetricsRegistry.merge` folds another registry in — the
serving layer uses it to accumulate per-request recorders into one
process-wide registry scraped at ``/metrics``.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

#: Default histogram boundaries — a 1-2-5 ladder wide enough for both
#: per-round counts (frontier sizes, moves) and millisecond timings.
DEFAULT_BOUNDARIES: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, Any]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (moves, bytes, retries...)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins value (table bytes, recovery seconds...)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-boundary distribution (frontier sizes, round bytes...)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        boundaries: Sequence[float] = DEFAULT_BOUNDARIES,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing"
            )
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            # Prometheus `le` buckets: first boundary >= value.
            self.bucket_counts[bucket] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile from the bucket counts (upper boundary).

        Returns the smallest boundary whose cumulative count covers the
        ``q``-th observation; observations past the last boundary report
        that last boundary (there is no upper bound for the +inf
        bucket).  Good enough for p50/p99 dashboards off fixed buckets.

        An empty histogram has no quantiles: returns ``None`` (callers
        rendering dashboards print a placeholder rather than a bogus
        0.0).  ``q=0`` maps to the first non-empty bucket's boundary and
        ``q=1`` to the bucket covering the largest observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        with self._lock:
            total = self.count
            counts = list(self.bucket_counts)
        if total == 0:
            return None
        # Rank of the target observation, 1-based: q=0 still needs the
        # first observation, q=1 the last, so clamp into [1, total].
        rank = min(max(1, math.ceil(q * total)), total)
        cumulative = 0
        for boundary, bucket in zip(self.boundaries, counts):
            cumulative += bucket
            if cumulative >= rank:
                return boundary
        return self.boundaries[-1]


class MetricsRegistry:
    """Create-or-fetch store for all instruments of one recorder.

    Thread-safe: one lock guards the instrument map *and* is shared with
    every instrument it creates, so concurrent updates from multiple
    solve threads serialize instead of interleaving.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], lock=self._lock, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        boundaries: Sequence[float] = DEFAULT_BOUNDARIES,
    ) -> Histogram:
        histogram = self._get(Histogram, name, labels, boundaries=boundaries)
        if histogram.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-registered with different boundaries"
            )
        return histogram

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry.

        Counters add, gauges take the other's (newer) value, histograms
        add bucket-by-bucket — boundaries must match, as enforced by
        :meth:`histogram`.  ``other`` is left untouched; the serving
        layer merges each finished request's recorder into the
        process-wide registry behind ``/metrics``.
        """
        for instrument in other.instruments():
            labels = dict(instrument.labels)
            if instrument.kind == "counter":
                if instrument.value:
                    self.counter(instrument.name, labels).inc(instrument.value)
            elif instrument.kind == "gauge":
                self.gauge(instrument.name, labels).set(instrument.value)
            else:
                mine = self.histogram(
                    instrument.name, labels, boundaries=instrument.boundaries
                )
                with mine._lock:
                    for i, count in enumerate(instrument.bucket_counts):
                        mine.bucket_counts[i] += count
                    mine.sum += instrument.sum
                    mine.count += instrument.count

    def __iter__(self) -> Iterator[Any]:
        """Instruments in name order (stable export order)."""
        with self._lock:
            instruments = list(self._instruments.values())
        return iter(sorted(instruments, key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def instruments(self) -> Iterable[Any]:
        return list(self)
