"""Zero-dependency solver observability: spans, metrics, exporters.

The package gives every solver in the reproduction a common telemetry
surface without perturbing the hot path:

* :class:`~repro.obs.recorder.Recorder` — the interface the solvers talk
  to.  The default :data:`NULL_RECORDER` is a no-op (a handful of cheap
  method dispatches per *round*, never per player), so instrumented code
  costs nothing unless a recorder is attached.
* :class:`~repro.obs.recorder.TraceRecorder` — collects hierarchical
  spans (``solve`` > ``round``), a metrics registry (counters, gauges,
  fixed-boundary histograms) and per-round solver telemetry (frontier
  size, moves, Eq. 3 cost evaluations, potential delta).
* :mod:`~repro.obs.exporters` — JSONL trace files (``repro-trace/v1``),
  Prometheus-style text dumps and a human summary tree.
* :mod:`~repro.obs.schema` — validation for the JSONL schema (also
  runnable: ``python -m repro.obs.schema trace.jsonl``).

Opt-in is either explicit (``SolveOptions(recorder=...)`` /
``recorder=`` kwargs) or ambient via the context manager::

    with obs.recording() as rec:
        repro.partition(instance, solver="gt")
    print(obs.summary_tree(rec))
    obs.write_jsonl(rec, "trace.jsonl")

Instrumentation never touches solver randomness or state: assignments
are byte-identical with tracing on or off.
"""

from repro.obs.clock import ManualClock, MonotonicClock
from repro.obs.exporters import (
    SCHEMA_VERSION,
    jsonl_lines,
    prometheus_text,
    summary_tree,
    trace_records,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    active_recorder,
    current_recorder,
    recording,
    use_recorder,
)
from repro.obs.schema import validate_records, validate_trace_file
from repro.obs.spans import Span

__all__ = [
    "Counter",
    "DEFAULT_BOUNDARIES",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SCHEMA_VERSION",
    "Span",
    "TraceRecorder",
    "active_recorder",
    "current_recorder",
    "jsonl_lines",
    "prometheus_text",
    "recording",
    "summary_tree",
    "trace_records",
    "use_recorder",
    "validate_records",
    "validate_trace_file",
    "write_jsonl",
]
