"""Zero-dependency solver observability: spans, metrics, exporters.

The package gives every solver in the reproduction a common telemetry
surface without perturbing the hot path:

* :class:`~repro.obs.recorder.Recorder` — the interface the solvers talk
  to.  The default :data:`NULL_RECORDER` is a no-op (a handful of cheap
  method dispatches per *round*, never per player), so instrumented code
  costs nothing unless a recorder is attached.
* :class:`~repro.obs.recorder.TraceRecorder` — collects hierarchical
  spans (``solve`` > ``round``), a metrics registry (counters, gauges,
  fixed-boundary histograms) and per-round solver telemetry (frontier
  size, moves, Eq. 3 cost evaluations, potential delta).
* :mod:`~repro.obs.exporters` — JSONL trace files (``repro-trace/v2``),
  Prometheus-style text dumps and a human summary tree.
* :mod:`~repro.obs.schema` — validation for the JSONL schema (also
  runnable: ``python -m repro.obs.schema trace.jsonl``).
* :mod:`~repro.obs.context` — causal trace propagation across the
  simulated cluster (master, slaves, network) for the DG framework.
* :mod:`~repro.obs.analysis` — critical-path / straggler / retry
  analysis of distributed traces.
* :mod:`~repro.obs.chrome` — Chrome trace-event (Perfetto-loadable)
  export, also runnable as a validator.
* :mod:`~repro.obs.memory` — ``tracemalloc``-backed memory recorder
  attaching peak/net heap allocation to every span.

Opt-in is either explicit (``SolveOptions(recorder=...)`` /
``recorder=`` kwargs) or ambient via the context manager::

    with obs.recording() as rec:
        repro.partition(instance, solver="gt")
    print(obs.summary_tree(rec))
    obs.write_jsonl(rec, "trace.jsonl")

Instrumentation never touches solver randomness or state: assignments
are byte-identical with tracing on or off.
"""

from repro.obs.analysis import (
    RequestReport,
    TraceReport,
    analyze_recorder,
    analyze_records,
    analyze_trace_file,
    format_report,
)
from repro.obs.chrome import (
    chrome_trace,
    validate_chrome_file,
    write_chrome_trace,
)
from repro.obs.clock import ManualClock, MonotonicClock
from repro.obs.context import (
    TRACEPARENT_HEADER,
    RemoteSpan,
    SpanCollector,
    TraceContext,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.exporters import (
    SCHEMA_VERSION,
    SCHEMA_VERSIONS,
    jsonl_lines,
    metric_records,
    prometheus_text,
    summary_tree,
    trace_records,
    write_jsonl,
)
from repro.obs.flight import FlightDump, FlightRecorder, inspect_dump
from repro.obs.metrics import (
    DEFAULT_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.memory import (
    MemoryRecorder,
    memory_recording,
    memory_summary,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
    active_recorder,
    current_recorder,
    recording,
    use_recorder,
)
from repro.obs.schema import validate_records, validate_trace_file
from repro.obs.spans import Span

__all__ = [
    "Counter",
    "DEFAULT_BOUNDARIES",
    "FlightDump",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MemoryRecorder",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RemoteSpan",
    "RequestReport",
    "SCHEMA_VERSION",
    "SCHEMA_VERSIONS",
    "Span",
    "SpanCollector",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "TraceRecorder",
    "TraceReport",
    "active_recorder",
    "analyze_recorder",
    "analyze_records",
    "analyze_trace_file",
    "chrome_trace",
    "current_recorder",
    "format_report",
    "format_traceparent",
    "inspect_dump",
    "jsonl_lines",
    "memory_recording",
    "memory_summary",
    "metric_records",
    "new_trace_id",
    "parse_traceparent",
    "prometheus_text",
    "recording",
    "summary_tree",
    "trace_records",
    "use_recorder",
    "validate_chrome_file",
    "validate_records",
    "validate_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
