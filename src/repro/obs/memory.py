"""Memory profiling: ``tracemalloc``-backed span allocation telemetry.

:class:`MemoryRecorder` extends the tracing recorder so every span
carries the peak and net Python heap allocation of the work it covers
(``mem_peak_bytes`` / ``mem_net_bytes`` attrs, exported through the
normal JSONL/summary paths).  Peaks are measured per span via
``tracemalloc.reset_peak`` and propagated outward, so a parent's peak is
never smaller than any child's — closing a child must not hide the high
-water mark it set.

Opt-in mirrors :func:`~repro.obs.recorder.recording`::

    with memory_recording() as rec:
        partition(graph, query)
    print(summary_tree(rec))

``tracemalloc`` slows allocation-heavy code noticeably, which is why
memory profiling is a separate recorder instead of a flag on the default
one — attach it only when asked (``repro profile --memory``).
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.recorder import TraceRecorder, use_recorder
from repro.obs.spans import Span

#: ``tracemalloc.reset_peak`` arrived in Python 3.9; degrade to
#: whole-run peaks (still correct, less precise) without it.
_HAS_RESET_PEAK = hasattr(tracemalloc, "reset_peak")


class MemoryRecorder(TraceRecorder):
    """Trace recorder that annotates spans with heap allocation.

    Requires ``tracemalloc`` to be tracing (use
    :func:`memory_recording`, which starts it); with tracing off the
    recorder silently degrades to plain span timing.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        super().__init__(clock=clock, meta=meta)
        #: Per open span: heap size at open + peak seen so far.
        self._mem_stack: List[Dict[str, int]] = []

    def _on_open(self, span: Span) -> None:
        if not tracemalloc.is_tracing():
            return
        current, _ = tracemalloc.get_traced_memory()
        if _HAS_RESET_PEAK:
            tracemalloc.reset_peak()
        self._mem_stack.append({"start": current, "peak": current})

    def _on_close(self, span: Span) -> None:
        if not self._mem_stack or not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        frame = self._mem_stack.pop()
        span_peak = max(frame["peak"], peak)
        span.attrs["mem_net_bytes"] = current - frame["start"]
        span.attrs["mem_peak_bytes"] = max(span_peak - frame["start"], 0)
        if self._mem_stack:
            parent = self._mem_stack[-1]
            parent["peak"] = max(parent["peak"], span_peak)
        if _HAS_RESET_PEAK:
            tracemalloc.reset_peak()


@contextmanager
def memory_recording(
    clock: Optional[Callable[[], float]] = None,
    meta: Optional[dict] = None,
) -> Iterator[MemoryRecorder]:
    """Ambient :class:`MemoryRecorder` with ``tracemalloc`` running.

    Starts ``tracemalloc`` only if it is not already tracing, and stops
    it only if this context started it.
    """
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    try:
        with use_recorder(
            MemoryRecorder(clock=clock, meta=meta)
        ) as recorder:
            yield recorder
    finally:
        if started:
            tracemalloc.stop()


def memory_summary(recorder: TraceRecorder, top: int = 10) -> str:
    """The ``top`` spans by peak allocation, largest first."""
    ranked = sorted(
        (
            span
            for span in recorder.all_spans()
            if "mem_peak_bytes" in span.attrs
        ),
        key=lambda span: span.attrs["mem_peak_bytes"],
        reverse=True,
    )[:top]
    if not ranked:
        return "no memory telemetry recorded (tracemalloc was off?)"
    lines = ["top spans by peak allocation:"]
    for span in ranked:
        peak = span.attrs["mem_peak_bytes"]
        net = span.attrs.get("mem_net_bytes", 0)
        lines.append(
            f"  {_fmt_bytes(peak):>10}  peak"
            f"  ({_fmt_bytes(net)} net)  {span.name}"
        )
    return "\n".join(lines)


def _fmt_bytes(value: Any) -> str:
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size) < 1024.0 or unit == "GiB":
            return (
                f"{size:.0f} {unit}" if unit == "B" else f"{size:.1f} {unit}"
            )
        size /= 1024.0
    return f"{size:.1f} GiB"
