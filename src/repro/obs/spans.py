"""Hierarchical spans: named, timed, attributed intervals.

A span covers one unit of solver work (a whole ``solve``, one ``round``,
one distributed exchange).  Spans nest: the recorder keeps a stack, and
every span opened while another is active becomes its child.  Point
events (a retry, a crash, an FaE transfer) attach to the span they
happened inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    name: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed interval in the trace tree.

    ``node`` names the actor the work ran on — ``None`` for the local
    process, a slave id (``"slave-0"``) or the network (``"net"``) for
    spans adopted from the distributed framework.
    """

    name: str
    start: float
    span_id: int
    parent_id: Optional[int] = None
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    events: List[SpanEvent] = field(default_factory=list)
    node: Optional[str] = None

    @property
    def duration(self) -> float:
        """Seconds covered (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def finish(self, end: float) -> None:
        """Close the span at clock time ``end``."""
        self.end = end

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first traversal yielding ``(span, depth)``."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)
