"""Trace exporters: JSONL file, Prometheus-style text, summary tree.

All exporters read from a :class:`~repro.obs.recorder.TraceRecorder`;
the JSONL schema (``repro-trace/v2``) is shared by the solver
instrumentation, the bench harness and the CLI, so figures and profiles
flow through one data path.  :mod:`repro.obs.schema` validates it (and
still accepts v1 traces — v2 only *adds* the optional ``node`` key that
names the actor a span ran on).  For the Perfetto-loadable flavor see
:mod:`repro.obs.chrome`.

The Prometheus text dump follows the exposition format: counters carry
the ``_total`` suffix and label values escape backslash, double quote
and newline, so standard parsers can round-trip the output.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterator, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import TraceRecorder

#: Version tag stamped into every trace's leading ``meta`` record.
SCHEMA_VERSION = "repro-trace/v2"

#: Versions the validator accepts (v2 = v1 plus optional span ``node``).
SCHEMA_VERSIONS = ("repro-trace/v1", "repro-trace/v2")


def trace_records(recorder: "TraceRecorder") -> Iterator[Dict[str, Any]]:
    """All schema records of one recorder, ``meta`` first."""
    meta: Dict[str, Any] = {"type": "meta", "schema": SCHEMA_VERSION}
    meta.update(recorder.meta)
    yield meta
    for root in recorder.spans:
        for span, depth in root.walk():
            record = {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "depth": depth,
                "start": span.start,
                "end": span.end if span.end is not None else span.start,
                "attrs": _plain(span.attrs),
            }
            if span.node is not None:
                record["node"] = span.node
            yield record
            for event in span.events:
                yield {
                    "type": "event",
                    "span": span.span_id,
                    "name": event.name,
                    "time": event.time,
                    "attrs": _plain(event.attrs),
                }
    for record in metric_records(recorder.metrics):
        yield record


def metric_records(registry: MetricsRegistry) -> Iterator[Dict[str, Any]]:
    """Schema metric records (counter/gauge/histogram) of a registry.

    Shared by :func:`trace_records` and the flight recorder, whose dumps
    append a metrics snapshot after the span window.
    """
    for instrument in registry:
        record: Dict[str, Any] = {
            "type": instrument.kind,
            "name": instrument.name,
            "labels": dict(instrument.labels),
        }
        if isinstance(instrument, Histogram):
            record["boundaries"] = list(instrument.boundaries)
            record["counts"] = list(instrument.bucket_counts)
            record["sum"] = instrument.sum
            record["count"] = instrument.count
        else:
            record["value"] = instrument.value
        yield record


def jsonl_lines(recorder: "TraceRecorder") -> List[str]:
    """The trace as JSONL strings (no trailing newlines)."""
    return [
        json.dumps(record, sort_keys=True, default=str)
        for record in trace_records(recorder)
    ]


def write_jsonl(recorder: "TraceRecorder", path: str) -> int:
    """Write the trace to ``path``; returns the number of records."""
    lines = jsonl_lines(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


# ----------------------------------------------------------------------
def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-style text dump of a metrics registry."""
    lines: List[str] = []
    seen_types = set()
    for instrument in registry:
        name = _prom_name(instrument.name)
        if instrument.kind == "counter" and not name.endswith("_total"):
            name += "_total"
        if name not in seen_types:
            lines.append(f"# TYPE {name} {instrument.kind}")
            seen_types.add(name)
        labels = dict(instrument.labels)
        if isinstance(instrument, Histogram):
            cumulative = 0
            for boundary, count in zip(
                instrument.boundaries, instrument.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels({**labels, 'le': _fmt(boundary)})}"
                    f" {cumulative}"
                )
            cumulative += instrument.bucket_counts[-1]
            lines.append(
                f"{name}_bucket{_prom_labels({**labels, 'le': '+Inf'})}"
                f" {cumulative}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(instrument.sum)}")
            lines.append(f"{name}_count{_prom_labels(labels)} {instrument.count}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {_fmt(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_prom_escape(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prom_escape(value: Any) -> str:
    """Exposition-format label value escaping (\\, \", newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
def summary_tree(recorder: "TraceRecorder", max_depth: int = 6) -> str:
    """Human-readable span tree with durations and key attributes."""
    lines: List[str] = []
    for root in recorder.spans:
        for span, depth in root.walk():
            if depth > max_depth:
                continue
            indent = "  " * depth
            label = span.name
            if span.node is not None:
                label += f" @{span.node}"
            highlights = ", ".join(
                f"{key}={_fmt_attr(value)}"
                for key, value in span.attrs.items()
                if key in _SUMMARY_ATTRS
            )
            suffix = f"  [{highlights}]" if highlights else ""
            lines.append(
                f"{indent}{label}: {span.duration * 1e3:.3f} ms{suffix}"
            )
            for event in span.events:
                lines.append(f"{indent}  ! {event.name}")
    if len(recorder.metrics):
        lines.append("metrics:")
        for instrument in recorder.metrics:
            labels = _prom_labels(dict(instrument.labels))
            if isinstance(instrument, Histogram):
                lines.append(
                    f"  {instrument.name}{labels}: count={instrument.count} "
                    f"sum={_fmt(instrument.sum)}"
                )
            else:
                lines.append(
                    f"  {instrument.name}{labels}: {_fmt(instrument.value)}"
                )
    return "\n".join(lines)


#: Span attributes surfaced in the summary tree.
_SUMMARY_ATTRS = (
    "solver", "round", "deviations", "players_examined", "frontier",
    "potential_delta", "n", "k", "bytes", "messages", "label",
    "color", "attempts", "mem_peak_bytes", "mem_net_bytes",
)


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _plain(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of span/event attributes."""
    plain: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            plain[key] = value
        elif hasattr(value, "item"):  # numpy scalars
            plain[key] = value.item()
        else:
            plain[key] = str(value)
    return plain
