"""Recorders: the telemetry interface the solvers talk to.

The base :class:`Recorder` *is* the no-op implementation — every method
returns immediately, and :meth:`Recorder.span` hands back one shared
do-nothing context manager.  Solvers call the recorder a handful of
times per **round** (never per player), so with the default
:data:`NULL_RECORDER` the instrumented hot paths stay within measurement
noise of the uninstrumented code and assignments are byte-identical with
tracing on or off.

:class:`TraceRecorder` is the collecting implementation: hierarchical
spans on a pluggable clock, a :class:`~repro.obs.metrics.MetricsRegistry`
and the per-round solver telemetry of :meth:`Recorder.round_end`
(frontier size, moves, Eq. 3 cost evaluations, potential delta).

Opt-in is a context manager::

    with recording() as rec:          # ambient for everything inside
        solve_global_table(instance)
    print(summary_tree(rec))

or explicit (``SolveOptions(recorder=rec)`` / ``recorder=rec`` kwargs);
``active_recorder(explicit)`` resolves the one to use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from repro.obs.clock import MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanEvent


class _NullSpanContext:
    """Shared no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class Recorder:
    """No-op telemetry sink; subclass to actually collect."""

    #: False when recording is free to skip (lazy callables never run).
    enabled: bool = False

    #: The innermost open span (None on the null recorder).
    current_span = None

    def span(self, name: str, **attrs: Any):
        """Context manager timing one unit of work (yields the Span)."""
        return _NULL_SPAN

    def new_trace_id(self) -> str:
        """Fresh trace id for one distributed run ("" = not tracing)."""
        return ""

    def adopt(self, remote_spans, offset: float = 0.0) -> None:
        """Graft remote spans into the trace (no-op when not collecting)."""

    def count(
        self, name: str, value: float = 1.0, **labels: Any
    ) -> None:
        """Increment a counter."""

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge."""

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation."""

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the current span."""

    def round_end(
        self,
        span: Optional[Span],
        solver: str,
        round_index: int,
        *,
        deviations: int,
        examined: int,
        cost_evaluations: Optional[int] = None,
        frontier_fn: Optional[Callable[[], int]] = None,
        potential_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        """Per-round solver telemetry (one call at the end of a round).

        ``frontier_fn``/``potential_fn`` are lazy so the null recorder
        never pays for an O(n) frontier count or an O(|E|) potential
        evaluation.  ``frontier_fn`` reports the dirty-set size *after*
        the round — the work queued for the next one.
        """


class NullRecorder(Recorder):
    """Explicit name for the default do-nothing recorder."""


#: The process-wide default recorder (always installed at stack bottom).
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """Collects spans + metrics; export via :mod:`repro.obs.exporters`."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.metrics = MetricsRegistry()
        self.spans: List[Span] = []
        self.meta = dict(meta or {})
        self._stack: List[Span] = []
        self._next_id = 0
        self._next_trace = 0
        self._spans_by_id: dict = {}
        self._last_potential: dict = {}

    # -- spans ----------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.open_span(name, **attrs)
        try:
            yield span
        finally:
            self.close_span(span)

    def open_span(self, name: str, **attrs: Any) -> Span:
        """Open a span without the context manager (manual traces)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            start=self.clock(),
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._spans_by_id[span.span_id] = span
        if parent is not None:
            parent.children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        self._on_open(span)
        return span

    def close_span(self, span: Span) -> None:
        """Close ``span`` (and any deeper spans left open by mistake)."""
        while self._stack:
            top = self._stack.pop()
            top.finish(self.clock())
            self._on_close(top)
            if top is span:
                return
        raise ValueError(f"span {span.name!r} is not open")

    def _on_open(self, span: Span) -> None:
        """Subclass hook fired after a span opens (memory profiling)."""

    def _on_close(self, span: Span) -> None:
        """Subclass hook fired after a span closes."""

    # -- cross-node stitching ------------------------------------------
    def new_trace_id(self) -> str:
        """Deterministic fresh trace id for one distributed run."""
        trace_id = f"trace-{self._next_trace}"
        self._next_trace += 1
        return trace_id

    def adopt(self, remote_spans, offset: float = 0.0) -> None:
        """Graft :class:`~repro.obs.context.RemoteSpan` records in.

        Each remote span becomes a child of the (master-side) span its
        ``parent_span_id`` names — or a new root when the parent is
        unknown — shifted by ``offset`` so the simulated timeline shares
        this recorder's clock origin.  Record order is preserved, which
        is causal order for the lockstep protocol.
        """
        for remote in remote_spans:
            parent = self._spans_by_id.get(remote.parent_span_id)
            span = Span(
                name=remote.name,
                start=remote.start + offset,
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                end=remote.end + offset,
                attrs=dict(remote.attrs),
                node=remote.node,
            )
            self._next_id += 1
            self._spans_by_id[span.span_id] = span
            span.events = [
                SpanEvent(
                    name=event.name,
                    time=event.time + offset,
                    attrs=dict(event.attrs),
                )
                for event in remote.events
            ]
            if parent is not None:
                parent.children.append(span)
            else:
                self.spans.append(span)

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def all_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.spans:
            for span, _ in root.walk():
                yield span

    # -- metrics --------------------------------------------------------
    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        self.metrics.counter(name, labels).inc(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.gauge(name, labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.histogram(name, labels).observe(value)

    def event(self, name: str, **attrs: Any) -> None:
        current = self.current_span
        if current is not None:
            current.events.append(
                SpanEvent(name=name, time=self.clock(), attrs=dict(attrs))
            )
        else:
            # Eventless root: wrap in a zero-length span so nothing is
            # lost.  The timestamp is taken *inside* the wrapper so the
            # event stays within its span (schema v2 enforces this).
            span = self.open_span(name, orphan_event=True)
            span.events.append(
                SpanEvent(name=name, time=self.clock(), attrs=dict(attrs))
            )
            self.close_span(span)

    # -- per-round solver telemetry ------------------------------------
    def round_end(
        self,
        span: Optional[Span],
        solver: str,
        round_index: int,
        *,
        deviations: int,
        examined: int,
        cost_evaluations: Optional[int] = None,
        frontier_fn: Optional[Callable[[], int]] = None,
        potential_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        labels = {"solver": solver}
        self.count("solver.rounds", 1, **labels)
        self.count("solver.moves", deviations, **labels)
        self.count("solver.players_examined", examined, **labels)
        if cost_evaluations is not None:
            self.count("solver.cost_evaluations", cost_evaluations, **labels)
        frontier = int(frontier_fn()) if frontier_fn is not None else examined
        self.observe("solver.frontier", frontier, **labels)
        attrs = {
            "round": round_index,
            "deviations": deviations,
            "players_examined": examined,
            "frontier": frontier,
        }
        if cost_evaluations is not None:
            attrs["cost_evaluations"] = cost_evaluations
        if potential_fn is not None:
            potential = float(potential_fn())
            attrs["potential"] = potential
            previous = self._last_potential.get(solver)
            if previous is not None:
                attrs["potential_delta"] = potential - previous
                self.observe(
                    "solver.potential_drop", max(previous - potential, 0.0),
                    **labels,
                )
            self._last_potential[solver] = potential
        if span is not None:
            span.attrs.update(attrs)


# ----------------------------------------------------------------------
# Ambient recorder stack (context-manager opt-in)
# ----------------------------------------------------------------------
_ACTIVE: List[Recorder] = [NULL_RECORDER]


def current_recorder() -> Recorder:
    """The innermost ambient recorder (the null recorder by default)."""
    return _ACTIVE[-1]


def active_recorder(explicit: Optional[Recorder] = None) -> Recorder:
    """Resolve the recorder to use: explicit argument beats ambient."""
    return explicit if explicit is not None else _ACTIVE[-1]


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for the block."""
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()


@contextmanager
def recording(
    clock: Optional[Callable[[], float]] = None,
    meta: Optional[dict] = None,
) -> Iterator[TraceRecorder]:
    """Create a :class:`TraceRecorder` and make it ambient for the block."""
    with use_recorder(TraceRecorder(clock=clock, meta=meta)) as recorder:
        yield recorder
