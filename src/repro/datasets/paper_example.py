"""The paper's running example (Figure 1 / Table 1), reconstructed.

Six users, three events, α = 0.5.  The source text of the paper garbles
parts of Figure 1's table, so the example is reconstructed around the
values the prose states explicitly and verifiably:

* ``c(v1, p1) = 0.48``, ``c(v1, p2) = 0.6``, ``c(v1, p3) = 0.27`` and
  ``VR_v1 = 0.37`` at α = 0.5 (Section 4.1) — which forces
  ``W_v1 = 0.10``, i.e. v1's incident edge weights sum to 0.2;
* strategy elimination fixes v5 to his closest event and prunes ``p1``
  from v2's strategy space (Section 4.1);
* a triangle of friends (v3, v4, v6) pulls v4 away from his individually
  closest event — the Figure 1 narrative.

All three properties hold for the data below and are asserted by
``tests/datasets/test_paper_example.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.instance import RMGPInstance
from repro.graph.social_graph import SocialGraph

USERS: List[str] = ["v1", "v2", "v3", "v4", "v5", "v6"]
EVENTS: List[str] = ["p1", "p2", "p3"]

#: Distance of each user to each event (the cost table of Figure 1).
COSTS: Dict[str, Tuple[float, float, float]] = {
    "v1": (0.48, 0.60, 0.27),
    "v2": (0.80, 0.34, 0.44),
    "v3": (0.94, 0.30, 0.80),
    "v4": (0.34, 0.67, 0.99),
    "v5": (0.10, 0.54, 0.67),
    "v6": (0.47, 0.20, 0.54),
}

#: Weighted friendships (the labeled edges of Figure 1).
EDGES: List[Tuple[str, str, float]] = [
    ("v1", "v4", 0.10),
    ("v1", "v5", 0.10),
    ("v2", "v5", 0.40),
    ("v3", "v4", 0.40),
    ("v3", "v6", 0.30),
    ("v4", "v6", 0.40),
]

ALPHA = 0.5


def paper_example_graph() -> SocialGraph:
    """The six-user social graph of Figure 1."""
    graph = SocialGraph(USERS)
    for u, v, w in EDGES:
        graph.add_edge(u, v, w)
    return graph


def paper_example_cost_matrix() -> np.ndarray:
    """Cost matrix aligned with ``USERS`` x ``EVENTS`` order."""
    return np.array([COSTS[user] for user in USERS], dtype=np.float64)


def paper_example_instance(alpha: float = ALPHA) -> RMGPInstance:
    """The running example as a ready-to-solve :class:`RMGPInstance`."""
    return RMGPInstance(
        paper_example_graph(),
        EVENTS,
        paper_example_cost_matrix(),
        alpha=alpha,
    )
