"""Gowalla-like dataset: the Dallas+Austin snapshot, synthesized.

The paper's Gowalla slice has 12,748 users in the Dallas and Austin
metropolitan areas, 48,419 friendships (deg_avg ≈ 7.6), unit edge
weights, weekend check-ins, and 128 Eventbrite events.  The real
snapshot is not redistributable, so :func:`gowalla_like` synthesizes a
statistically matched stand-in (see DESIGN.md §4 for why this preserves
the experiments): two Gaussian metro clusters roughly 290 km apart
(distances in km — matching "the average distance between a user and an
event is above 100 km", Section 6.2), homophilous heavy-tailed
friendships tuned to deg_avg ≈ 7.6, and 128 events sampled near the
population.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datasets.base import GeoSocialDataset
from repro.datasets.events import sample_events
from repro.datasets.geo import (
    homophilous_friendships,
    jittered_checkins,
    metro_positions,
)
from repro.errors import DataError

#: The paper's published statistics for the Gowalla slice.
PAPER_NUM_USERS = 12_748
PAPER_NUM_EDGES = 48_419
PAPER_NUM_EVENTS = 128
PAPER_AVG_DEGREE = 2 * PAPER_NUM_EDGES / PAPER_NUM_USERS  # ~7.6

#: "Dallas" and "Austin" metro centers on a km plane, ~292 km apart.
METRO_CENTERS = ((0.0, 0.0), (130.0, 262.0))
METRO_WEIGHTS = (0.6, 0.4)
METRO_SPREAD_KM = 28.0
CHECKIN_JITTER_KM = 4.0


def gowalla_like(
    num_users: int = PAPER_NUM_USERS,
    num_events: int = PAPER_NUM_EVENTS,
    avg_degree: float = PAPER_AVG_DEGREE,
    seed: Optional[int] = None,
) -> GeoSocialDataset:
    """Build the Gowalla-like dataset.

    Defaults reproduce the paper's full-size slice; pass a smaller
    ``num_users`` for quick experiments (the Forest Fire sampler in
    :mod:`repro.graph.sampling` is the paper's own down-sizing tool and
    can be applied on top).
    """
    if num_users < 2:
        raise DataError("num_users must be at least 2")
    rng = random.Random(seed)
    positions = metro_positions(
        num_users, METRO_CENTERS, METRO_WEIGHTS, METRO_SPREAD_KM, rng
    )
    graph = homophilous_friendships(positions, avg_degree, rng)
    checkins = jittered_checkins(positions, CHECKIN_JITTER_KM, rng)
    events = sample_events(positions, num_events, rng, name_prefix="gowalla-event")
    return GeoSocialDataset(
        name=f"gowalla_like(n={num_users}, k={num_events}, seed={seed})",
        graph=graph,
        checkins=checkins,
        events=events,
    )
