"""Dataset substrates: Gowalla-like, Foursquare-like, the paper example."""

from repro.datasets.base import GeoSocialDataset
from repro.datasets.events import sample_events, subsample_events
from repro.datasets.forum import DEFAULT_TOPICS, ForumDataset, forum_like
from repro.datasets.foursquare import foursquare_like
from repro.datasets.geo import (
    homophilous_friendships,
    jittered_checkins,
    metro_positions,
)
from repro.datasets.gowalla import gowalla_like
from repro.datasets.paper_example import (
    ALPHA,
    COSTS,
    EDGES,
    EVENTS,
    USERS,
    paper_example_cost_matrix,
    paper_example_graph,
    paper_example_instance,
)
from repro.datasets.registry import (
    clear_cache,
    dataset_names,
    load_dataset,
    register_dataset,
    with_event_count,
)

__all__ = [
    "ALPHA",
    "COSTS",
    "EDGES",
    "EVENTS",
    "DEFAULT_TOPICS",
    "ForumDataset",
    "GeoSocialDataset",
    "USERS",
    "clear_cache",
    "dataset_names",
    "forum_like",
    "foursquare_like",
    "gowalla_like",
    "homophilous_friendships",
    "jittered_checkins",
    "load_dataset",
    "metro_positions",
    "paper_example_cost_matrix",
    "paper_example_graph",
    "paper_example_instance",
    "register_dataset",
    "sample_events",
    "subsample_events",
    "with_event_count",
]
