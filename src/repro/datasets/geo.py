"""Spatially clustered user populations and homophilous friendships.

Building blocks shared by the Gowalla-like and Foursquare-like dataset
generators: metro-cluster user placement, check-in jitter, and a
spatial-preferential friendship model producing geographic homophily
with a heavy-tailed degree distribution — the two structural features of
real check-in networks that matter to RMGP (distance-correlated costs
and hub users for the degree-ordering heuristic).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

from repro.apps.spatial import GridIndex, Point
from repro.errors import DataError
from repro.graph.social_graph import SocialGraph


def metro_positions(
    num_users: int,
    centers: Sequence[Point],
    weights: Sequence[float],
    spread_km: float,
    rng: random.Random,
) -> List[Point]:
    """Sample user home positions from a mixture of Gaussian metros."""
    if len(centers) != len(weights) or not centers:
        raise DataError("need matching, non-empty centers and weights")
    total = sum(weights)
    if total <= 0:
        raise DataError("metro weights must sum to a positive value")
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    positions: List[Point] = []
    for _ in range(num_users):
        draw = rng.random()
        which = next(i for i, c in enumerate(cumulative) if draw <= c)
        cx, cy = centers[which]
        positions.append(
            (rng.gauss(cx, spread_km), rng.gauss(cy, spread_km))
        )
    return positions


def jittered_checkins(
    positions: Sequence[Point], jitter_km: float, rng: random.Random
) -> Dict[int, Point]:
    """Last check-in per user: home position plus Gaussian jitter."""
    return {
        user: (rng.gauss(x, jitter_km), rng.gauss(y, jitter_km))
        for user, (x, y) in enumerate(positions)
    }


def homophilous_friendships(
    positions: Sequence[Point],
    target_avg_degree: float,
    rng: random.Random,
    local_fraction: float = 0.9,
    candidate_pool: int = 40,
    hub_exponent: float = 1.6,
) -> SocialGraph:
    """Friendship graph with geographic homophily and heavy-tailed hubs.

    Each user draws a Pareto-ish number of friendship slots (mean tuned
    to ``target_avg_degree / 2`` since each edge fills two slots).  A
    slot connects to one of the user's ``candidate_pool`` nearest
    neighbors with probability ``local_fraction`` (weighted towards
    already-popular users), otherwise to a uniformly random user —
    reproducing the short-edges-plus-shortcuts structure of Gowalla.
    """
    n = len(positions)
    if n < 2:
        return SocialGraph(range(n))
    if target_avg_degree <= 0 or target_avg_degree >= n:
        raise DataError("target_avg_degree must be in (0, n)")

    mean_slots = target_avg_degree / 2.0
    graph = SocialGraph(range(n))
    index = GridIndex(
        {i: p for i, p in enumerate(positions)},
        cell_size=_typical_spacing(positions) * 4.0,
    )
    degree_bonus = [1.0] * n

    for user in range(n):
        slots = _pareto_slots(mean_slots, hub_exponent, rng)
        near = [c for c in index.nearest(positions[user], candidate_pool + 1) if c != user]
        for _ in range(slots):
            # Retry collisions a few times so duplicate picks do not
            # silently erode the target average degree.
            for _attempt in range(4):
                if near and rng.random() < local_fraction:
                    friend = _weighted_choice(near, degree_bonus, rng)
                else:
                    friend = rng.randrange(n)
                if friend != user and not graph.has_edge(user, friend):
                    graph.add_edge(user, friend, 1.0)
                    degree_bonus[user] += 1.0
                    degree_bonus[friend] += 1.0
                    break
    return graph


def _pareto_slots(mean: float, exponent: float, rng: random.Random) -> int:
    """Heavy-tailed slot count with the requested mean.

    A Pareto(α) has mean ``x_m · α/(α−1)``; we solve for ``x_m`` and
    round stochastically so the expectation is preserved.
    """
    if exponent <= 1.0:
        raise DataError("hub_exponent must exceed 1")
    x_m = mean * (exponent - 1.0) / exponent
    value = x_m * (1.0 - rng.random()) ** (-1.0 / exponent)
    floor = int(value)
    return floor + (1 if rng.random() < value - floor else 0)


def _weighted_choice(
    candidates: Sequence[int], weights: List[float], rng: random.Random
) -> int:
    """Pick a candidate proportionally to its popularity weight."""
    total = sum(weights[c] for c in candidates)
    draw = rng.random() * total
    acc = 0.0
    for candidate in candidates:
        acc += weights[candidate]
        if draw <= acc:
            return candidate
    return candidates[-1]


def _typical_spacing(positions: Sequence[Point]) -> float:
    """Rough nearest-neighbor spacing for grid sizing."""
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    extent = max(max(xs) - min(xs), max(ys) - min(ys))
    if extent <= 0:
        return 1.0
    return max(extent / math.sqrt(len(positions)), extent * 1e-9)
