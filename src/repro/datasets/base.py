"""Common container for geo-social datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List

import numpy as np

from repro.apps.lagp import Event, LAGPTask
from repro.apps.spatial import Point, distance_matrix
from repro.graph.metrics import GraphStats, graph_stats
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass
class GeoSocialDataset:
    """A social graph with user check-ins and an event catalog.

    The shape every LAGP experiment consumes: ``graph`` (friendships),
    ``checkins`` (last known location per user) and ``events`` (the
    query-time classes).
    """

    name: str
    graph: SocialGraph
    checkins: Dict[NodeId, Point]
    events: List[Event]

    @property
    def event_ids(self) -> List[Hashable]:
        """Class labels for an RMGP instance."""
        return [e.event_id for e in self.events]

    @property
    def event_locations(self) -> List[Point]:
        """Event coordinates, in catalog order."""
        return [e.location for e in self.events]

    def cost_matrix(self, metric: str = "euclidean") -> np.ndarray:
        """User-to-event distances aligned with ``graph.nodes()`` order."""
        user_points = [self.checkins[u] for u in self.graph.nodes()]
        return distance_matrix(user_points, self.event_locations, metric)

    def lagp_task(self, metric: str = "euclidean") -> LAGPTask:
        """Wrap this dataset as a ready-to-query :class:`LAGPTask`."""
        return LAGPTask(self.graph, self.checkins, self.events, metric=metric)

    def with_events(self, events: List[Event]) -> "GeoSocialDataset":
        """Same users/graph with a different event catalog."""
        return GeoSocialDataset(
            name=self.name,
            graph=self.graph,
            checkins=self.checkins,
            events=list(events),
        )

    def stats(self) -> GraphStats:
        """Graph statistics (for matching against the paper's numbers)."""
        return graph_stats(self.graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeoSocialDataset({self.name!r}, |V|={self.graph.num_nodes}, "
            f"|E|={self.graph.num_edges}, events={len(self.events)})"
        )
