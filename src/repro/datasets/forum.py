"""Synthetic discussion-forum dataset — the TAGP substrate.

Example 2 needs an on-line forum: threads with topic text, participants,
and a co-participation social structure.  No public forum dump ships with
this repository, so :func:`forum_like` synthesizes one with the features
TAGP exercises: topic-aligned user communities (users mostly join threads
of their home topic), occasional cross-topic visitors (the weak ties
advertisements propagate over), and vocabulary drawn per topic so tf-idf
actually separates the communities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.tagp import Advertisement, DiscussionThread, TAGPTask
from repro.errors import DataError

#: Default topic vocabularies (verbs/nouns that tf-idf can separate).
DEFAULT_TOPICS: Dict[str, str] = {
    "gaming": "game console controller rpg strategy esports speedrun quest",
    "cooking": "recipe oven pasta sauce bake garlic dinner kitchen flavor",
    "cycling": "bike gear ride trail carbon wheel climb race helmet",
    "ml": "model training dataset neural network gradient inference gpu",
    "travel": "flight hostel itinerary passport beach museum hiking visa",
}


@dataclass
class ForumDataset:
    """A synthesized forum with known ground-truth topics."""

    threads: List[DiscussionThread]
    home_topic: Dict[int, str]
    topics: Dict[str, str]

    def task(self) -> TAGPTask:
        """Wrap the threads as a ready-to-query :class:`TAGPTask`."""
        return TAGPTask(self.threads)

    def default_advertisements(self) -> List[Advertisement]:
        """One advertisement per topic, phrased in that topic's words."""
        ads = []
        for topic, vocabulary in self.topics.items():
            words = vocabulary.split()[:5]
            ads.append(
                Advertisement(f"ad-{topic}", " ".join(words) + " sale deal")
            )
        return ads


def forum_like(
    num_users: int = 400,
    threads_per_topic: int = 60,
    topics: Optional[Dict[str, str]] = None,
    participants_range: "tuple[int, int]" = (3, 8),
    crossover_rate: float = 0.15,
    words_per_thread: int = 25,
    seed: Optional[int] = None,
) -> ForumDataset:
    """Synthesize a forum.

    Parameters
    ----------
    crossover_rate:
        Probability that a thread attracts one random off-topic visitor,
        creating the cross-community ties word-of-mouth spreads over.
    """
    if num_users < 2:
        raise DataError("num_users must be at least 2")
    if threads_per_topic <= 0:
        raise DataError("threads_per_topic must be positive")
    low, high = participants_range
    if not 1 <= low <= high:
        raise DataError("participants_range must satisfy 1 <= low <= high")
    if not 0.0 <= crossover_rate <= 1.0:
        raise DataError("crossover_rate must be in [0, 1]")

    topics = dict(DEFAULT_TOPICS) if topics is None else dict(topics)
    if not topics:
        raise DataError("need at least one topic")
    rng = random.Random(seed)
    names = list(topics)
    home_topic = {user: rng.choice(names) for user in range(num_users)}
    members: Dict[str, List[int]] = {name: [] for name in names}
    for user, topic in home_topic.items():
        members[topic].append(user)
    # Guarantee every topic has at least one member.
    for name in names:
        if not members[name]:
            user = rng.randrange(num_users)
            members[home_topic[user]].remove(user)
            home_topic[user] = name
            members[name].append(user)

    threads: List[DiscussionThread] = []
    thread_id = 0
    for name in names:
        vocabulary = topics[name].split()
        for _ in range(threads_per_topic):
            pool = members[name]
            count = min(len(pool), rng.randint(low, high))
            participants = rng.sample(pool, count)
            if rng.random() < crossover_rate:
                participants.append(rng.randrange(num_users))
            threads.append(
                DiscussionThread(
                    thread_id=thread_id,
                    text=" ".join(rng.choices(vocabulary, k=words_per_thread)),
                    participants=participants,
                )
            )
            thread_id += 1
    return ForumDataset(threads=threads, home_topic=home_topic, topics=topics)
