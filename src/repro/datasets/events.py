"""Event catalogs — the Eventbrite stand-in.

The paper sources "128 different social events that took place during the
same weekend in Dallas and Austin ... from Eventbrite".  Offline, we
sample events near where users actually are (events happen in populated
places), with a small uniform background so that some events are far from
everyone.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.apps.lagp import Event
from repro.apps.spatial import Point
from repro.errors import DataError


def sample_events(
    user_positions: Sequence[Point],
    num_events: int,
    rng: random.Random,
    near_user_fraction: float = 0.85,
    jitter_km: float = 5.0,
    name_prefix: str = "event",
) -> List[Event]:
    """Sample ``num_events`` events around the user population.

    A fraction ``near_user_fraction`` of events is placed next to a
    random user (Gaussian jitter of ``jitter_km``); the rest fall
    uniformly inside the population's bounding box.
    """
    if num_events <= 0:
        raise DataError("num_events must be positive")
    if not user_positions:
        raise DataError("need user positions to place events")
    if not 0.0 <= near_user_fraction <= 1.0:
        raise DataError("near_user_fraction must be in [0, 1]")

    xs = [p[0] for p in user_positions]
    ys = [p[1] for p in user_positions]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)

    events: List[Event] = []
    for event_index in range(num_events):
        if rng.random() < near_user_fraction:
            ux, uy = user_positions[rng.randrange(len(user_positions))]
            location: Point = (rng.gauss(ux, jitter_km), rng.gauss(uy, jitter_km))
        else:
            location = (rng.uniform(x_min, x_max), rng.uniform(y_min, y_max))
        events.append(
            Event(
                event_id=event_index,
                location=location,
                name=f"{name_prefix}-{event_index}",
            )
        )
    return events


def subsample_events(
    events: Sequence[Event], num_events: int, rng: random.Random
) -> List[Event]:
    """Uniformly choose ``num_events`` events (the paper's procedure for
    "decreasing the event cardinality, we randomly select the required
    number of events", Section 6)."""
    if num_events <= 0:
        raise DataError("num_events must be positive")
    if num_events > len(events):
        raise DataError(
            f"requested {num_events} events, catalog has {len(events)}"
        )
    return rng.sample(list(events), num_events)
