"""Named dataset registry with in-process caching.

Benchmarks reference datasets by name + parameters; the registry caches
built datasets so a parameter sweep (e.g. Figure 10's k ∈ {8..128} over
the same Gowalla graph) pays generation cost once.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro.datasets.base import GeoSocialDataset
from repro.datasets.events import subsample_events
from repro.datasets.foursquare import foursquare_like
from repro.datasets.gowalla import gowalla_like
from repro.errors import DataError

_FACTORIES: Dict[str, Callable[..., GeoSocialDataset]] = {
    "gowalla": gowalla_like,
    "foursquare": foursquare_like,
}

_CACHE: Dict[Tuple, GeoSocialDataset] = {}


def dataset_names() -> Tuple[str, ...]:
    """Registered dataset family names."""
    return tuple(sorted(_FACTORIES))


def register_dataset(name: str, factory: Callable[..., GeoSocialDataset]) -> None:
    """Register a custom dataset family (overwrites are rejected)."""
    if name in _FACTORIES:
        raise DataError(f"dataset {name!r} is already registered")
    _FACTORIES[name] = factory


def load_dataset(
    name: str,
    num_users: Optional[int] = None,
    num_events: Optional[int] = None,
    seed: Optional[int] = 0,
    use_cache: bool = True,
) -> GeoSocialDataset:
    """Build (or fetch from cache) a dataset by family name."""
    if name not in _FACTORIES:
        raise DataError(
            f"unknown dataset {name!r}; registered: {dataset_names()}"
        )
    kwargs = {}
    if num_users is not None:
        kwargs["num_users"] = num_users
    if num_events is not None:
        kwargs["num_events"] = num_events
    kwargs["seed"] = seed
    key = (name, tuple(sorted(kwargs.items())))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    dataset = _FACTORIES[name](**kwargs)
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def with_event_count(
    dataset: GeoSocialDataset, num_events: int, seed: Optional[int] = 0
) -> GeoSocialDataset:
    """Derive a dataset with ``num_events`` randomly selected events.

    The paper's procedure for event-cardinality sweeps: "for decreasing
    the event cardinality, we randomly select the required number of
    events" (Section 6).
    """
    if num_events == len(dataset.events):
        return dataset
    rng = random.Random(seed)
    return dataset.with_events(
        subsample_events(dataset.events, num_events, rng)
    )


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests)."""
    _CACHE.clear()
