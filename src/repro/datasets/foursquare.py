"""Foursquare-like dataset: the 2013 snapshot, synthesized and scalable.

The paper's Foursquare snapshot has 2,153,471 users, 27,098,490
friendships (deg_avg ≈ 25.2) and 1,143,092 events/venues — the workload
of the decentralized experiments (Section 6.4, k up to 1,024).  A
pure-Python reproduction cannot hold the full graph comfortably, so
:func:`foursquare_like` generates a *density-matched, scaled* version:
``scale`` controls the user count while deg_avg (≈25), the
multi-metro spatial layout and the event-per-user ratio track the
original.  The full-size parameters are exposed as constants for anyone
running on bigger iron.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datasets.base import GeoSocialDataset
from repro.datasets.events import sample_events
from repro.datasets.geo import (
    homophilous_friendships,
    jittered_checkins,
    metro_positions,
)
from repro.errors import DataError

#: The paper's published statistics for the Foursquare snapshot.
PAPER_NUM_USERS = 2_153_471
PAPER_NUM_EDGES = 27_098_490
PAPER_NUM_EVENTS = 1_143_092
PAPER_AVG_DEGREE = 2 * PAPER_NUM_EDGES / PAPER_NUM_USERS  # ~25.2

#: Default scaled size used by the decentralized benchmarks.
DEFAULT_NUM_USERS = 8_000

#: A worldwide service: several metros with uneven weights (km plane).
METRO_CENTERS = (
    (0.0, 0.0),
    (400.0, 150.0),
    (-350.0, 300.0),
    (150.0, -450.0),
    (-200.0, -250.0),
)
METRO_WEIGHTS = (0.35, 0.25, 0.18, 0.12, 0.10)
METRO_SPREAD_KM = 40.0
CHECKIN_JITTER_KM = 6.0


def foursquare_like(
    num_users: int = DEFAULT_NUM_USERS,
    num_events: int = 1024,
    avg_degree: float = PAPER_AVG_DEGREE,
    seed: Optional[int] = None,
) -> GeoSocialDataset:
    """Build the Foursquare-like dataset at the requested scale.

    ``num_events`` defaults to 1,024 — the paper's largest query (its
    catalog holds over a million venues; queries randomly select the
    required number, which :func:`repro.datasets.events.subsample_events`
    reproduces).
    """
    if num_users < 2:
        raise DataError("num_users must be at least 2")
    if avg_degree >= num_users:
        raise DataError("avg_degree must be below num_users")
    rng = random.Random(seed)
    positions = metro_positions(
        num_users, METRO_CENTERS, METRO_WEIGHTS, METRO_SPREAD_KM, rng
    )
    graph = homophilous_friendships(
        positions, avg_degree, rng, candidate_pool=60
    )
    checkins = jittered_checkins(positions, CHECKIN_JITTER_KM, rng)
    events = sample_events(
        positions, num_events, rng, name_prefix="foursquare-venue"
    )
    return GeoSocialDataset(
        name=f"foursquare_like(n={num_users}, k={num_events}, seed={seed})",
        graph=graph,
        checkins=checkins,
        events=events,
    )
