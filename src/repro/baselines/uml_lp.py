"""UML_lp — the Kleinberg–Tardos LP relaxation with randomized rounding.

RMGP is an instance of Uniform Metric Labeling (Section 2.1).  The
classic 2-approximation relaxes the ILP

    min  α·Σ_v Σ_p c(v,p)·x_vp + (1−α)·Σ_e w_e · ½·Σ_p z_ep
    s.t. Σ_p x_vp = 1                    ∀ v
         z_ep ≥ x_up − x_vp              ∀ e=(u,v), p
         z_ep ≥ x_vp − x_up              ∀ e=(u,v), p
         x, z ≥ 0

(``½·Σ_p |x_up − x_vp|`` is the variation distance, which equals the cut
indicator on integral solutions) and rounds the fractional solution with
Kleinberg–Tardos ball rounding: repeatedly draw a class ``p`` and a
threshold ``θ ∈ (0, 1]`` and assign every still-unassigned user with
``x_vp ≥ θ`` to ``p``.

The paper solved this LP with CVX; we use ``scipy.optimize.linprog``
(HiGHS), which is an equivalent simplex/IPM solver.  As the paper notes,
"in most settings the linear relaxation gave integral solutions", in
which case rounding is a no-op and the output is optimal.
"""

from __future__ import annotations

import random
import time
from typing import Optional

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.core.instance import RMGPInstance
from repro.core.objective import objective
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import SolverError

#: Values this close to 0/1 are treated as integral.
INTEGRALITY_TOLERANCE = 1e-6


def solve_uml_lp(
    instance: RMGPInstance,
    seed: Optional[int] = None,
    rounding_trials: int = 25,
) -> PartitionResult:
    """Run UML_lp on ``instance``.

    ``rounding_trials`` independent KT roundings are drawn and the best
    (by the true Equation 1 objective) is kept — a standard derandomizing
    practice that can only improve on a single draw.

    The result's ``extra`` records the LP lower bound (``lp_value``),
    whether the relaxation was integral, and the rounded/LP gap.
    """
    start = time.perf_counter()
    fractional, lp_value = _solve_relaxation(instance)

    integral = bool(
        np.all(
            (fractional < INTEGRALITY_TOLERANCE)
            | (fractional > 1.0 - INTEGRALITY_TOLERANCE)
        )
    )
    if integral:
        assignment = fractional.argmax(axis=1).astype(np.int64)
    else:
        assignment = _best_rounding(instance, fractional, seed, rounding_trials)

    elapsed = time.perf_counter() - start
    result = make_result(
        solver="UML_lp",
        instance=instance,
        assignment=assignment,
        rounds=[RoundStats(round_index=0, deviations=0, seconds=elapsed)],
        converged=True,
        wall_seconds=elapsed,
        extra={
            "lp_value": lp_value,
            "lp_integral": integral,
            "approximation_ratio_bound": 2.0,
        },
    )
    result.extra["rounding_gap"] = (
        result.value.total / lp_value if lp_value > 0 else 1.0
    )
    return result


def lp_lower_bound(instance: RMGPInstance) -> float:
    """The LP optimum — a certified lower bound on any labeling's cost."""
    _, value = _solve_relaxation(instance)
    return value


def _solve_relaxation(instance: RMGPInstance) -> "tuple[np.ndarray, float]":
    """Solve the KT relaxation; returns ``(x as n x k matrix, LP value)``."""
    n, k = instance.n, instance.k
    alpha = instance.alpha
    edges = list(instance.graph.edges())
    m = len(edges)
    index_of = instance.index_of

    num_x = n * k
    num_z = m * k
    num_vars = num_x + num_z

    # Objective coefficients.
    c = np.zeros(num_vars, dtype=np.float64)
    c[:num_x] = alpha * instance.cost.dense().ravel()
    for e, (_, _, w) in enumerate(edges):
        c[num_x + e * k : num_x + (e + 1) * k] = (1.0 - alpha) * 0.5 * w

    # Equality constraints: sum_p x_vp = 1 per node.
    eq_rows = np.repeat(np.arange(n), k)
    eq_cols = np.arange(num_x)
    a_eq = coo_matrix(
        (np.ones(num_x), (eq_rows, eq_cols)), shape=(n, num_vars)
    )
    b_eq = np.ones(n)

    # Inequalities: x_up - x_vp - z_ep <= 0 and x_vp - x_up - z_ep <= 0.
    rows, cols, vals = [], [], []
    row = 0
    for e, (u_id, v_id, _) in enumerate(edges):
        u, v = index_of[u_id], index_of[v_id]
        for p in range(k):
            xu = u * k + p
            xv = v * k + p
            z = num_x + e * k + p
            rows += [row, row, row]
            cols += [xu, xv, z]
            vals += [1.0, -1.0, -1.0]
            row += 1
            rows += [row, row, row]
            cols += [xv, xu, z]
            vals += [1.0, -1.0, -1.0]
            row += 1
    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, num_vars))
    b_ub = np.zeros(row)

    bounds = [(0.0, 1.0)] * num_x + [(0.0, 1.0)] * num_z
    outcome = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not outcome.success:
        raise SolverError(f"LP relaxation failed: {outcome.message}")
    fractional = outcome.x[:num_x].reshape(n, k)
    # Clean tiny negatives from the solver.
    np.clip(fractional, 0.0, 1.0, out=fractional)
    return fractional, float(outcome.fun)


def _best_rounding(
    instance: RMGPInstance,
    fractional: np.ndarray,
    seed: Optional[int],
    trials: int,
) -> np.ndarray:
    """Best of ``trials`` independent KT ball roundings."""
    rng = random.Random(seed)
    best_assignment: Optional[np.ndarray] = None
    best_value = float("inf")
    for _ in range(max(1, trials)):
        assignment = _kt_rounding(instance, fractional, rng)
        value = objective(instance, assignment).total
        if value < best_value:
            best_value = value
            best_assignment = assignment
    assert best_assignment is not None
    return best_assignment


def _kt_rounding(
    instance: RMGPInstance, fractional: np.ndarray, rng: random.Random
) -> np.ndarray:
    """One Kleinberg–Tardos rounding pass."""
    n, k = fractional.shape
    assignment = np.full(n, -1, dtype=np.int64)
    remaining = n
    # Guard against pathological fractional mass (all-zero rows would
    # loop forever); fall back to argmax for such rows.
    degenerate = fractional.max(axis=1) <= 0
    for v in np.flatnonzero(degenerate):
        assignment[v] = 0
        remaining -= 1
    while remaining:
        p = rng.randrange(k)
        theta = rng.random()
        hit = (assignment < 0) & (fractional[:, p] >= theta) & (fractional[:, p] > 0)
        count = int(hit.sum())
        if count:
            assignment[hit] = p
            remaining -= count
    return assignment
