"""Hungarian algorithm for minimum-cost assignment.

Used by the Metis+Hungarian (MH) benchmark of Section 6.1 to map the
``k`` connectivity-only partitions onto the ``k`` classes "so that each
partition is assigned to a different event and the total assignment cost
is minimized".

This is the ``O(n³)`` shortest-augmenting-path formulation with dual
potentials (Jonker–Volgenant style).  Rectangular matrices with more
columns than rows are supported directly; tests cross-check optimal value
and feasibility against ``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


def hungarian(cost: np.ndarray) -> Tuple[List[int], float]:
    """Minimum-cost row-to-column matching.

    Parameters
    ----------
    cost:
        ``n x m`` matrix with ``n <= m``; entry ``[i, j]`` is the cost of
        assigning row ``i`` to column ``j``.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column matched to row ``i`` (columns are
        used at most once), and ``total`` the optimal cost.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ConfigurationError("cost must be a 2-d matrix")
    n, m = cost.shape
    if n == 0:
        return [], 0.0
    if n > m:
        raise ConfigurationError(
            f"need rows <= columns, got {n} x {m}; transpose the input"
        )
    if not np.isfinite(cost).all():
        raise ConfigurationError("cost entries must be finite")

    INF = float("inf")
    # 1-indexed potentials over rows (u) and columns (v); p[j] is the row
    # matched to column j (0 = free), way[j] the alternating-path parent.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Unwind the augmenting path.
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    total = float(sum(cost[i, assignment[i]] for i in range(n)))
    return assignment, total


def assignment_cost_of(cost: np.ndarray, assignment: List[int]) -> float:
    """Total cost of an explicit row-to-column assignment."""
    cost = np.asarray(cost, dtype=np.float64)
    n = cost.shape[0]
    if len(assignment) != n:
        raise ConfigurationError("assignment length must equal row count")
    if len(set(assignment)) != n:
        raise ConfigurationError("assignment reuses a column")
    return float(sum(cost[i, j] for i, j in enumerate(assignment)))
