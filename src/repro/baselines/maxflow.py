"""Dinic's maximum-flow / minimum-cut solver.

Substrate for the greedy UML baseline (Section 2.1, [Bracht et al.]),
whose per-class graph transformations reduce to s-t minimum cuts.  The
implementation is the standard level-graph + blocking-flow Dinic in
``O(V²·E)``, with a helper returning the source-side of a minimum cut.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

from repro.errors import SolverError


class FlowNetwork:
    """Directed flow network with residual bookkeeping.

    Nodes are dense integers ``0..n-1``.  Each :meth:`add_edge` creates a
    forward arc with the given capacity and a residual arc of capacity 0;
    undirected capacity is modeled by two forward arcs
    (:meth:`add_undirected_edge`).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise SolverError("flow network needs at least one node")
        self.num_nodes = num_nodes
        # Arc arrays: to[a], cap[a]; arcs of node v in graph[v].
        self._to: List[int] = []
        self._cap: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        """Add arc ``u -> v`` with ``capacity`` (and its residual)."""
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise SolverError(f"negative capacity {capacity} on ({u}, {v})")
        self._adj[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(float(capacity))
        self._adj[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(0.0)

    def add_undirected_edge(self, u: int, v: int, capacity: float) -> None:
        """Add capacity in both directions (for symmetric social edges)."""
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise SolverError(f"negative capacity {capacity} on ({u}, {v})")
        self._adj[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(float(capacity))
        self._adj[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(float(capacity))

    def max_flow(self, source: int, sink: int) -> float:
        """Maximum flow from ``source`` to ``sink`` (mutates capacities)."""
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise SolverError("source and sink must differ")
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return total
            iters = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, float("inf"), level, iters)
                if pushed <= 0:
                    break
                total += pushed

    def min_cut_source_side(self, source: int, sink: int) -> Tuple[float, Set[int]]:
        """Run max-flow, then return ``(cut value, source-side nodes)``."""
        value = self.max_flow(source, sink)
        side: Set[int] = set()
        queue = deque([source])
        side.add(source)
        while queue:
            node = queue.popleft()
            for arc in self._adj[node]:
                if self._cap[arc] > 1e-12 and self._to[arc] not in side:
                    side.add(self._to[arc])
                    queue.append(self._to[arc])
        return value, side

    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        level = [-1] * self.num_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc in self._adj[node]:
                if self._cap[arc] > 1e-12 and level[self._to[arc]] < 0:
                    level[self._to[arc]] = level[node] + 1
                    queue.append(self._to[arc])
        return level

    def _dfs_push(
        self,
        node: int,
        sink: int,
        limit: float,
        level: List[int],
        iters: List[int],
    ) -> float:
        if node == sink:
            return limit
        while iters[node] < len(self._adj[node]):
            arc = self._adj[node][iters[node]]
            nxt = self._to[arc]
            if self._cap[arc] > 1e-12 and level[nxt] == level[node] + 1:
                pushed = self._dfs_push(
                    nxt, sink, min(limit, self._cap[arc]), level, iters
                )
                if pushed > 0:
                    self._cap[arc] -= pushed
                    self._cap[arc ^ 1] += pushed
                    return pushed
            iters[node] += 1
        return 0.0

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SolverError(f"node {node} out of range [0, {self.num_nodes})")
