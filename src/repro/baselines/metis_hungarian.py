"""MH — the Metis+Hungarian benchmark (Section 6.1).

Pipeline: (1) compute a connectivity-only k-way partition of the social
graph (our multilevel partitioner standing in for METIS), then (2) assign
each partition to a distinct class with the Hungarian method so that the
*total* assignment cost is minimized.

MH optimizes the social cut first and only reconciles assignment costs at
partition granularity, so individual users can land on expensive classes
— the behaviour behind its poor quality in Figures 7(b) and 8(b).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.baselines.hungarian import hungarian
from repro.baselines.kway import kway_partition
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError


def solve_metis_hungarian(
    instance: RMGPInstance,
    seed: Optional[int] = None,
    imbalance: float = 0.10,
) -> PartitionResult:
    """Run the MH benchmark on ``instance``.

    Requires ``k <= |V|`` (each class receives one partition).  The
    result's ``extra`` carries the intermediate cut weight and the
    partition-to-class mapping cost for diagnostics.
    """
    if instance.k > instance.n:
        raise ConfigurationError(
            f"MH needs k <= |V|, got k={instance.k}, |V|={instance.n}"
        )
    start = time.perf_counter()

    # Step 1: connectivity-only k-way cut.
    kway = kway_partition(instance.graph, instance.k, seed=seed, imbalance=imbalance)

    # Step 2: partition -> class cost matrix, one row per partition:
    # the cost of sending *all* members of partition g to class p.
    group_cost = np.zeros((instance.k, instance.k), dtype=np.float64)
    for player in range(instance.n):
        part = kway.parts[instance.node_ids[player]]
        group_cost[part] += instance.cost.row(player)

    mapping, mapping_cost = hungarian(group_cost)

    assignment = np.empty(instance.n, dtype=np.int64)
    for player in range(instance.n):
        part = kway.parts[instance.node_ids[player]]
        assignment[player] = mapping[part]

    elapsed = time.perf_counter() - start
    return make_result(
        solver="MH",
        instance=instance,
        assignment=assignment,
        rounds=[RoundStats(round_index=0, deviations=0, seconds=elapsed)],
        converged=True,
        wall_seconds=elapsed,
        extra={
            "kway_cut": kway.cut,
            "partition_to_class": list(mapping),
            "mapping_cost": mapping_cost,
        },
    )
