"""Multilevel k-way graph partitioner (METIS stand-in).

The MH benchmark of Section 6.1 "initially computes the minimum
unbalanced k-way social cut using METIS".  METIS is a closed C library,
so this module re-implements its classic multilevel recipe from scratch:

1. **Coarsening** — repeated heavy-edge matching collapses matched pairs
   into super-nodes until the graph is small.
2. **Initial partitioning** — greedy region growing seeds ``k`` balanced
   parts on the coarsest graph.
3. **Uncoarsening + refinement** — partitions are projected back level by
   level and improved by boundary Kernighan–Lin/Fiduccia–Mattheyses style
   gain moves under a balance constraint.

The output minimizes the weighted edge cut using connectivity only — by
design it ignores assignment costs, which is exactly why MH "yields high
assignment costs" in Figure 7(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.metrics import cut_weight
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass
class KWayResult:
    """A k-way partition: part index per node plus its cut weight."""

    parts: Dict[NodeId, int]
    num_parts: int
    cut: float

    def members(self) -> List[List[NodeId]]:
        """Nodes of each part, indexed by part id."""
        groups: List[List[NodeId]] = [[] for _ in range(self.num_parts)]
        for node, part in self.parts.items():
            groups[part].append(node)
        return groups


# Internal coarse-graph representation: dense ids, adjacency dicts,
# node weights = number of original vertices collapsed into the node.
_CoarseGraph = Tuple[List[Dict[int, float]], List[int]]


def kway_partition(
    graph: SocialGraph,
    num_parts: int,
    seed: Optional[int] = None,
    imbalance: float = 0.10,
    coarsen_until: int = 0,
    refinement_passes: int = 8,
) -> KWayResult:
    """Partition ``graph`` into ``num_parts`` parts of low cut weight.

    Parameters
    ----------
    imbalance:
        Allowed overload per part: each part's vertex count may reach
        ``(1 + imbalance) * n / k`` (METIS's default ballpark).
    coarsen_until:
        Stop coarsening below this many super-nodes (default
        ``max(30 * k, 200)``).
    """
    if num_parts <= 0:
        raise ConfigurationError("num_parts must be positive")
    n = graph.num_nodes
    if n == 0:
        return KWayResult({}, num_parts, 0.0)
    if num_parts > n:
        raise ConfigurationError(
            f"num_parts={num_parts} exceeds node count {n}"
        )
    rng = random.Random(seed)
    if coarsen_until <= 0:
        coarsen_until = max(30 * num_parts, 200)

    # Dense relabeling for list-indexed adjacency.
    nodes = graph.nodes()
    index_of = {node: i for i, node in enumerate(nodes)}
    adjacency: List[Dict[int, float]] = [
        {index_of[f]: w for f, w in graph.neighbors(node).items()}
        for node in nodes
    ]
    weights = [1] * n

    # --- Phase 1: coarsening ------------------------------------------
    levels: List[List[int]] = []  # mapping fine node -> coarse node
    current: _CoarseGraph = (adjacency, weights)
    while len(current[0]) > coarsen_until:
        mapping, coarser = _heavy_edge_matching(current, rng)
        if len(coarser[0]) >= len(current[0]):
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append(mapping)
        current = coarser

    # --- Phase 2: initial partitioning --------------------------------
    parts = _region_growing(current, num_parts, imbalance, rng)

    # --- Phase 3: uncoarsen + refine ----------------------------------
    graphs: List[_CoarseGraph] = [(adjacency, weights)]
    replay: _CoarseGraph = (adjacency, weights)
    for mapping in levels:
        replay = _apply_mapping(replay, mapping)
        graphs.append(replay)
    # graphs[i] is the graph at level i (0 = finest); levels[i] maps i -> i+1.
    parts = _refine(graphs[-1], parts, num_parts, imbalance, refinement_passes, rng)
    for level in range(len(levels) - 1, -1, -1):
        mapping = levels[level]
        parts = [parts[mapping[v]] for v in range(len(graphs[level][0]))]
        parts = _refine(
            graphs[level], parts, num_parts, imbalance, refinement_passes, rng
        )

    labeled = {nodes[i]: parts[i] for i in range(n)}
    return KWayResult(
        parts=labeled, num_parts=num_parts, cut=cut_weight(graph, labeled)
    )


def _heavy_edge_matching(
    graph: _CoarseGraph, rng: random.Random
) -> Tuple[List[int], _CoarseGraph]:
    """Match each node with its heaviest unmatched neighbor and collapse."""
    adjacency, weights = graph
    n = len(adjacency)
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for node in order:
        if match[node] >= 0:
            continue
        best, best_weight = -1, -1.0
        for neighbor, weight in adjacency[node].items():
            if match[neighbor] < 0 and weight > best_weight:
                best, best_weight = neighbor, weight
        if best >= 0:
            match[node] = best
            match[best] = node
    mapping = [-1] * n
    next_id = 0
    for node in range(n):
        if mapping[node] >= 0:
            continue
        mapping[node] = next_id
        if match[node] >= 0:
            mapping[match[node]] = next_id
        next_id += 1
    return mapping, _apply_mapping(graph, mapping)


def _apply_mapping(graph: _CoarseGraph, mapping: List[int]) -> _CoarseGraph:
    """Collapse nodes according to ``mapping`` (fine id -> coarse id)."""
    adjacency, weights = graph
    size = max(mapping) + 1 if mapping else 0
    coarse_adj: List[Dict[int, float]] = [{} for _ in range(size)]
    coarse_weights = [0] * size
    for node, coarse in enumerate(mapping):
        coarse_weights[coarse] += weights[node]
        for neighbor, weight in adjacency[node].items():
            target = mapping[neighbor]
            if target == coarse:
                continue
            coarse_adj[coarse][target] = coarse_adj[coarse].get(target, 0.0) + weight
    # Symmetry holds by construction: the fine edge (u, v) contributes to
    # coarse_adj[c(u)][c(v)] from u's side and to coarse_adj[c(v)][c(u)]
    # from v's side, once each.
    return coarse_adj, coarse_weights


def _region_growing(
    graph: _CoarseGraph, num_parts: int, imbalance: float, rng: random.Random
) -> List[int]:
    """Greedy BFS region growing for the coarsest-level partition."""
    adjacency, weights = graph
    n = len(adjacency)
    total = sum(weights)
    capacity = (1.0 + imbalance) * total / num_parts
    parts = [-1] * n
    loads = [0.0] * num_parts
    order = sorted(range(n), key=lambda v: -weights[v])
    frontier_of: List[List[int]] = [[] for _ in range(num_parts)]

    # Seed each part with the heaviest unassigned nodes.
    seeds = iter(order)
    for part in range(num_parts):
        for seed in seeds:
            if parts[seed] < 0:
                parts[seed] = part
                loads[part] += weights[seed]
                frontier_of[part].append(seed)
                break

    # Round-robin growth: the lightest part claims an adjacent node.
    unassigned = sum(1 for p in parts if p < 0)
    while unassigned:
        part = min(range(num_parts), key=loads.__getitem__)
        claimed = -1
        while frontier_of[part]:
            node = frontier_of[part][-1]
            for neighbor in adjacency[node]:
                if parts[neighbor] < 0:
                    claimed = neighbor
                    break
            if claimed >= 0:
                break
            frontier_of[part].pop()
        if claimed < 0:
            # Disconnected remainder: grab any unassigned node.
            claimed = next(v for v in range(n) if parts[v] < 0)
        parts[claimed] = part
        loads[part] += weights[claimed]
        frontier_of[part].append(claimed)
        unassigned -= 1
        if loads[part] > capacity:
            # Freeze an overloaded part by emptying its frontier.
            frontier_of[part] = []
            # Keep at least one growable part to avoid livelock.
            if all(not f for f in frontier_of) and unassigned:
                lightest = min(range(num_parts), key=loads.__getitem__)
                frontier_of[lightest] = [
                    v for v in range(n) if parts[v] == lightest
                ]
    return parts


def _refine(
    graph: _CoarseGraph,
    parts: List[int],
    num_parts: int,
    imbalance: float,
    passes: int,
    rng: random.Random,
) -> List[int]:
    """Boundary gain moves (FM-style) under the balance constraint."""
    adjacency, weights = graph
    n = len(adjacency)
    total = sum(weights)
    capacity = (1.0 + imbalance) * total / num_parts
    loads = [0.0] * num_parts
    for node in range(n):
        loads[parts[node]] += weights[node]

    for _ in range(passes):
        moved = 0
        order = list(range(n))
        rng.shuffle(order)
        for node in order:
            here = parts[node]
            # Connectivity to each part among the node's neighbors.
            link: Dict[int, float] = {}
            for neighbor, weight in adjacency[node].items():
                part = parts[neighbor]
                link[part] = link.get(part, 0.0) + weight
            internal = link.get(here, 0.0)
            best_part, best_gain = here, 0.0
            for part, weight in link.items():
                if part == here:
                    continue
                if loads[part] + weights[node] > capacity:
                    continue
                gain = weight - internal
                if gain > best_gain + 1e-12:
                    best_part, best_gain = part, gain
            if best_part != here:
                parts[node] = best_part
                loads[here] -= weights[node]
                loads[best_part] += weights[node]
                moved += 1
        if moved == 0:
            break
    return parts
