"""α-expansion for uniform metric labeling (Boykov–Veksler–Zabih).

The strongest classical move-making algorithm for the Potts model and a
natural extra comparator for RMGP: each *expansion move* fixes one label
``a`` and solves a binary min-cut deciding, for every node
simultaneously, whether to switch to ``a`` or keep its current label.
Sweeping all labels until no move improves the objective yields a local
minimum that is within a factor 2 of the optimum for uniform metrics —
the same guarantee class as the LP, typically with better constants than
one-shot greedies, at the price of many max-flow solves.

Construction per expansion (source side = "take ``a``"):

* ``s → v`` with capacity ``α·c(v, l_v)`` — the price of *rejecting* the
  expansion (``∞`` conceptually when ``l_v = a``; then both t-links are
  equal and the node is indifferent),
* ``v → t`` with capacity ``α·c(v, a)`` — the price of accepting it,
* edge ``(u, v)`` with ``l_u = l_v``: undirected capacity ``(1−α)·w`` —
  cut only when the move separates them,
* edge ``(u, v)`` with ``l_u ≠ l_v`` (already cut): the pairwise table is
  ``E(take,take)=0`` and ``(1−α)·w`` otherwise; by the Kolmogorov–Zabih
  decomposition this is ``s→u`` plus a *directed* ``u→v`` arc, both with
  capacity ``(1−α)·w`` (cut exactly unless both endpoints join ``a``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.maxflow import FlowNetwork
from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import objective
from repro.core.result import PartitionResult, RoundStats, make_result


def solve_alpha_expansion(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    max_sweeps: int = 50,
) -> PartitionResult:
    """Run α-expansion to a move-optimal labeling.

    ``init`` seeds the labeling (``"closest"`` or ``"random"``); each
    sweep tries an expansion for every class and applies it when it
    strictly lowers the Equation 1 objective.  Stops after a sweep with
    no improving move (or ``max_sweeps``).
    """
    import random

    rng = random.Random(seed)
    clock = dynamics.RoundClock()
    assignment = dynamics.initial_assignment(instance, init, rng)
    current_value = objective(instance, assignment).total
    rounds: List[RoundStats] = [RoundStats(0, 0, clock.lap())]

    converged = False
    sweeps = 0
    cuts_solved = 0
    while not converged and sweeps < max_sweeps:
        sweeps += 1
        moves = 0
        for klass in range(instance.k):
            candidate = _expansion_move(instance, assignment, klass)
            cuts_solved += 1
            candidate_value = objective(instance, candidate).total
            if candidate_value < current_value - 1e-12:
                assignment = candidate
                current_value = candidate_value
                moves += 1
        rounds.append(
            RoundStats(
                round_index=sweeps,
                deviations=moves,
                seconds=clock.lap(),
                players_examined=instance.n * instance.k,
            )
        )
        converged = moves == 0

    return make_result(
        solver="AlphaExp",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra={
            "sweeps": sweeps,
            "cuts_solved": cuts_solved,
            "approximation_ratio_bound": 2.0,
        },
    )


def _expansion_move(
    instance: RMGPInstance, assignment: np.ndarray, klass: int
) -> np.ndarray:
    """Best single expansion of ``klass``: the BVZ binary min-cut."""
    alpha = instance.alpha
    beta = 1.0 - alpha
    n = instance.n

    # Count auxiliary nodes (one per currently-cut edge).
    edges = []
    for player in range(n):
        idx = instance.neighbor_indices[player]
        wts = instance.neighbor_weights[player]
        for neighbor, weight in zip(idx, wts):
            if int(neighbor) > player:
                edges.append((player, int(neighbor), float(weight)))
    mixed = [
        (u, v, w) for u, v, w in edges if assignment[u] != assignment[v]
    ]
    same = [
        (u, v, w) for u, v, w in edges if assignment[u] == assignment[v]
    ]

    source = n
    sink = n + 1
    network = FlowNetwork(n + 2)

    big = 1e15
    for player in range(n):
        keep_cost = alpha * instance.cost.cost(player, int(assignment[player]))
        take_cost = alpha * instance.cost.cost(player, klass)
        if int(assignment[player]) == klass:
            # Already labeled a: keeping == taking; forbid "rejecting".
            network.add_edge(source, player, big)
        else:
            network.add_edge(source, player, keep_cost)
        network.add_edge(player, sink, take_cost)

    for u, v, w in same:
        network.add_undirected_edge(u, v, beta * w)
    for u, v, w in mixed:
        # Pay (1-alpha)*w unless BOTH endpoints take a:
        # E = w*[u keeps] + w*[u takes][v keeps]  (Kolmogorov-Zabih).
        network.add_edge(source, u, beta * w)
        network.add_edge(u, v, beta * w)

    _, source_side = network.min_cut_source_side(source, sink)
    candidate = assignment.copy()
    for player in range(n):
        if player in source_side:
            candidate[player] = klass
    return candidate
