"""UML_gr — greedy UML via per-class graph transformations and min-cuts.

Stands in for the Bracht et al. greedy algorithm the paper benchmarks
(Section 2.1): avoid linear programming, accept a much looser
approximation, and rely on "extensive graph transformations; i.e., for
each class it generates a new graph that connects the class to all
nodes".

Concretely this is the classic *isolation heuristic* specialized to
uniform metric labeling.  Classes are processed once, in decreasing order
of total attraction.  For each class ``p`` a two-terminal network is
built over the still-unlabeled users:

* ``source -> v`` with capacity ``α·min_{q≠p} c(v, q)`` — the assignment
  cost v pays if he *rejects* ``p``;
* ``v -> sink`` with capacity ``α·c(v, p)`` — the cost of accepting it;
* undirected ``u - v`` with capacity ``(1−α)·w(u, v)`` — the social price
  of separating friends.

The minimum s-t cut is the optimal binary "take p / keep the cheapest
alternative" labeling; the source side takes ``p`` and leaves the game.
One pass over the ``k`` classes labels everyone (the last class absorbs
the remainder).  Like the original, this is fast but clearly worse than
the LP — the Figure 7(b)/8(b) ordering.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.baselines.maxflow import FlowNetwork
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result


def solve_uml_greedy(instance: RMGPInstance) -> PartitionResult:
    """Run UML_gr on ``instance``; deterministic (no seeds involved)."""
    start = time.perf_counter()
    n, k = instance.n, instance.k
    costs = instance.cost.dense()

    # Process classes by decreasing attraction: classes many users find
    # cheap get first pick, mirroring the greedy's fixed class sweep.
    if n:
        order = list(np.argsort(costs.sum(axis=0)))
    else:
        order = list(range(k))

    assignment = np.full(n, -1, dtype=np.int64)
    unlabeled = list(range(n))
    cuts_solved = 0

    for position, klass in enumerate(order):
        if not unlabeled:
            break
        if position == k - 1:
            # Last class absorbs everyone still unlabeled.
            for player in unlabeled:
                assignment[player] = klass
            unlabeled = []
            break
        taken = _isolate_class(instance, costs, unlabeled, int(klass))
        cuts_solved += 1
        for player in taken:
            assignment[player] = klass
        if taken:
            taken_set = set(taken)
            unlabeled = [p for p in unlabeled if p not in taken_set]

    elapsed = time.perf_counter() - start
    return make_result(
        solver="UML_gr",
        instance=instance,
        assignment=assignment,
        rounds=[RoundStats(round_index=0, deviations=0, seconds=elapsed)],
        converged=True,
        wall_seconds=elapsed,
        extra={"cuts_solved": cuts_solved, "class_order": [int(c) for c in order]},
    )


def _isolate_class(
    instance: RMGPInstance,
    costs: np.ndarray,
    unlabeled: List[int],
    klass: int,
) -> List[int]:
    """Min-cut binary subproblem: which unlabeled users take ``klass``.

    Returns the players on the source side of the minimum cut — those
    for whom accepting ``klass`` is jointly cheaper once social ties are
    accounted for.
    """
    alpha = instance.alpha
    local_of = {player: i for i, player in enumerate(unlabeled)}
    num_local = len(unlabeled)
    network = FlowNetwork(num_local + 2)
    source, sink = num_local, num_local + 1

    k = instance.k
    for player in unlabeled:
        local = local_of[player]
        row = costs[player]
        # Cheapest alternative among the other classes.
        if k > 1:
            alternative = float(np.delete(row, klass).min())
        else:
            alternative = 0.0
        network.add_edge(source, local, alpha * alternative)
        network.add_edge(local, sink, alpha * row[klass])

    for i, player in enumerate(unlabeled):
        neighbors = instance.neighbor_indices[player]
        weights = instance.neighbor_weights[player]
        for neighbor, weight in zip(neighbors, weights):
            other = local_of.get(int(neighbor))
            if other is not None and other > i:
                network.add_undirected_edge(i, other, (1.0 - alpha) * weight)

    _, source_side = network.min_cut_source_side(source, sink)
    return [player for player in unlabeled if local_of[player] in source_side]
