"""The paper's comparison systems, implemented from scratch.

* :func:`solve_metis_hungarian` — MH: multilevel k-way min-cut (METIS
  stand-in) + Hungarian class mapping.
* :func:`solve_uml_lp` — Kleinberg–Tardos LP relaxation (2-approx).
* :func:`solve_uml_greedy` — per-class min-cut greedy (Bracht-style).
* :func:`solve_exact` — branch-and-bound optimum for tiny instances.
* :func:`solve_alpha_expansion` — Boykov–Veksler–Zabih move-making
  (extra comparator beyond the paper's three).
"""

from repro.baselines.alpha_expansion import solve_alpha_expansion
from repro.baselines.hungarian import assignment_cost_of, hungarian
from repro.baselines.ilp import optimal_value, solve_exact
from repro.baselines.kway import KWayResult, kway_partition
from repro.baselines.maxflow import FlowNetwork
from repro.baselines.metis_hungarian import solve_metis_hungarian
from repro.baselines.uml_greedy import solve_uml_greedy
from repro.baselines.uml_lp import lp_lower_bound, solve_uml_lp

__all__ = [
    "FlowNetwork",
    "KWayResult",
    "assignment_cost_of",
    "hungarian",
    "kway_partition",
    "lp_lower_bound",
    "optimal_value",
    "solve_alpha_expansion",
    "solve_exact",
    "solve_metis_hungarian",
    "solve_uml_greedy",
    "solve_uml_lp",
]
