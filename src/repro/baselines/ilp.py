"""Exact RMGP/UML optimum by branch and bound (tiny instances only).

The paper treats the LP value as a stand-in for OPT; for tests we want
the *true* social optimum on small graphs so that PoS ≤ 2 and the PoA
bound of Theorem 2 can be asserted exactly.  This solver enumerates
assignments depth-first with an admissible lower bound and is practical
up to roughly ``k^n ~ 10^7`` (e.g. 12 nodes, 4 classes).
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError

#: Refuse instances whose search space exceeds this many leaves.
MAX_SEARCH_LEAVES = 50_000_000


def solve_exact(
    instance: RMGPInstance,
    max_leaves: int = MAX_SEARCH_LEAVES,
) -> PartitionResult:
    """Find the global minimum of Equation 1 by branch and bound.

    Raises :class:`~repro.errors.ConfigurationError` when ``k ** n``
    exceeds ``max_leaves`` — use the LP lower bound instead at scale.
    """
    n, k = instance.n, instance.k
    if n and k ** n > max_leaves:
        raise ConfigurationError(
            f"exact search space k^n = {k}^{n} exceeds {max_leaves} leaves"
        )
    start = time.perf_counter()

    costs = instance.cost.dense()
    alpha = instance.alpha
    beta = 1.0 - alpha
    min_cost_per_player = costs.min(axis=1) if n else np.zeros(0)

    # Branch on players in decreasing-degree order: high-degree players
    # constrain the most edges, tightening bounds early.
    degrees = instance.degrees()
    order: List[int] = sorted(range(n), key=lambda v: (-degrees[v], v))
    position = {player: i for i, player in enumerate(order)}

    # For each player, the already-placed neighbors (by branch order).
    placed_neighbors: List[List[tuple]] = []
    for player in order:
        earlier = [
            (int(nbr), float(w))
            for nbr, w in zip(
                instance.neighbor_indices[player],
                instance.neighbor_weights[player],
            )
            if position[int(nbr)] < position[player]
        ]
        placed_neighbors.append(earlier)

    # Admissible remaining bound: each unplaced player pays at least his
    # cheapest assignment; social terms can be zero.
    suffix_bound = np.zeros(n + 1)
    for i in range(n - 1, -1, -1):
        suffix_bound[i] = suffix_bound[i + 1] + alpha * min_cost_per_player[order[i]]

    best_value = float("inf")
    best_assignment = np.zeros(n, dtype=np.int64)
    current = np.full(n, -1, dtype=np.int64)
    nodes_explored = 0

    def descend(depth: int, value: float) -> None:
        nonlocal best_value, nodes_explored
        nodes_explored += 1
        if value + suffix_bound[depth] >= best_value - 1e-15:
            return
        if depth == n:
            best_value = value
            best_assignment[:] = current
            return
        player = order[depth]
        # Try classes in increasing marginal-cost order for fast pruning.
        marginals = np.empty(k)
        for p in range(k):
            social = sum(
                w for nbr, w in placed_neighbors[depth] if current[nbr] != p
            )
            marginals[p] = alpha * costs[player, p] + beta * social
        for p in np.argsort(marginals, kind="stable"):
            current[player] = int(p)
            descend(depth + 1, value + float(marginals[p]))
        current[player] = -1

    if n:
        descend(0, 0.0)
    else:
        best_value = 0.0

    elapsed = time.perf_counter() - start
    return make_result(
        solver="OPT",
        instance=instance,
        assignment=best_assignment,
        rounds=[RoundStats(round_index=0, deviations=0, seconds=elapsed)],
        converged=True,
        wall_seconds=elapsed,
        extra={"nodes_explored": nodes_explored, "optimal_value": best_value},
    )


def optimal_value(instance: RMGPInstance, max_leaves: int = MAX_SEARCH_LEAVES) -> float:
    """Convenience wrapper returning only the optimal Equation 1 value."""
    return solve_exact(instance, max_leaves=max_leaves).value.total
