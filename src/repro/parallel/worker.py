"""Worker-process entry point for the shm backend.

Each worker attaches the solve's :class:`~repro.parallel.shm.ShmArena`
once, then loops on its private task queue running chunk kernels against
the shared arrays.  Only chunk *descriptions* (member index arrays or
row ranges) cross the queues — the graph, costs and strategy vector
never leave shared memory.

Results carry raw ``time.perf_counter()`` start/stop stamps.  The
parent's :class:`~repro.obs.clock.MonotonicClock` is the same counter,
system-wide on this platform, so the parent can adopt worker busy
windows into its trace verbatim (the PR 5 straggler analysis then names
a straggler *worker* the way it names a straggler slave).
"""

from __future__ import annotations

import time
import traceback

from repro.parallel import kernels
from repro.parallel.shm import ShmArena

SHUTDOWN = None


def worker_main(
    worker_id: int,
    arena_name: str,
    layout,
    params: dict,
    task_queue,
    result_queue,
) -> None:
    """Attach the arena and serve chunk tasks until a shutdown sentinel."""

    arena = ShmArena.attach(arena_name, layout)
    a = arena.views()
    k = int(params["k"])
    tol = float(params["tol"])
    exact = bool(params.get("exact", False))
    assignment = a["assignment"]
    try:
        while True:
            task = task_queue.get()
            if task is SHUTDOWN:
                break
            kind, epoch, chunk_index, payload = task
            try:
                start = time.perf_counter()
                if kind == "scalar":
                    if exact:
                        players, bests = kernels.exact_scalar_moves(
                            a["indptr"], a["indices"], a["int_cost"],
                            a["int_maxsc"], a["int_refund"], assignment,
                            payload,
                        )
                    else:
                        players, bests = kernels.scalar_moves(
                            a["indptr"], a["indices"], a["scaled_dense"],
                            a["maxsc"], a["refunds"], assignment, payload,
                            tol,
                        )
                elif kind == "batched":
                    if exact:
                        players, bests = kernels.exact_batched_moves(
                            a["indptr"], a["indices"], a["int_cost"],
                            a["int_maxsc"], a["int_refund"], assignment,
                            payload, k,
                        )
                    else:
                        players, bests = kernels.batched_moves(
                            a["indptr"], a["indices"], a["scaled_dense"],
                            a["maxsc"], a["refunds"], assignment, payload,
                            k, tol,
                        )
                elif kind == "table":
                    row_start, row_stop = payload
                    kernels.table_rows(
                        a["indptr"], a["indices"], a["scaled_dense"],
                        a["maxsc"], a["refunds"], assignment, row_start,
                        row_stop, k, a["table"],
                    )
                    players = bests = None
                else:
                    raise ValueError(f"unknown task kind {kind!r}")
                end = time.perf_counter()
            except Exception:
                result_queue.put(
                    ("err", epoch, chunk_index, worker_id,
                     traceback.format_exc())
                )
            else:
                result_queue.put(
                    ("ok", epoch, chunk_index, worker_id, players, bests,
                     start, end)
                )
    finally:
        # Drop views before closing so close() does not hit BufferError.
        a = None
        assignment = None
        arena.close()
