"""Persistent worker-process pool for the shm backend.

One pool lives for the whole solve (the paper's §4.2 "pool of threads",
finally with true concurrency): workers are started once, attach the
arena once, and then every round's color classes are fanned out as chunk
tasks.  Chunk ``j`` always goes to worker ``j % W`` and the parent
reassembles results *in chunk order*, so the merged move list is a
deterministic function of the inputs no matter how workers interleave.

The default start method is ``fork`` where available (cheapest; the
arrays travel via the arena, not via pickling) with a ``REPRO_MP_START``
env override (``fork``/``spawn``/``forkserver``) for debugging.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.shm import ShmArena
from repro.parallel.worker import SHUTDOWN, worker_main

START_METHOD_ENV = "REPRO_MP_START"

_POLL_SECONDS = 5.0


def start_method(override: Optional[str] = None) -> str:
    """Resolve the multiprocessing start method for the pool."""

    choice = override or os.environ.get(START_METHOD_ENV)
    available = mp.get_all_start_methods()
    if choice is not None:
        if choice not in available:
            raise ConfigurationError(
                f"start method {choice!r} not available; have: "
                + ", ".join(available)
            )
        return choice
    return "fork" if "fork" in available else available[0]


@dataclass
class ChunkResult:
    """One completed chunk: movers plus the worker's busy window."""

    chunk_index: int
    worker_id: int
    players: Optional[np.ndarray]
    bests: Optional[np.ndarray]
    start: float
    end: float


class WorkerPool:
    """Fixed set of daemon workers attached to one :class:`ShmArena`."""

    def __init__(
        self,
        arena: ShmArena,
        num_workers: int,
        params: dict,
        method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("worker pool needs num_workers >= 1")
        ctx = mp.get_context(start_method(method))
        self.num_workers = num_workers
        self._tasks = [ctx.SimpleQueue() for _ in range(num_workers)]
        self._results = ctx.Queue()
        self._epoch = 0
        self._procs = []
        for worker_id in range(num_workers):
            proc = ctx.Process(
                target=worker_main,
                args=(
                    worker_id, arena.name, arena.layout, params,
                    self._tasks[worker_id], self._results,
                ),
                daemon=True,
                name=f"repro-shm-worker-{worker_id}",
            )
            proc.start()
            self._procs.append(proc)

    # -- dispatch ----------------------------------------------------------

    def run(self, kind: str, payloads: Sequence) -> List[ChunkResult]:
        """Fan ``payloads`` out and return results in chunk order."""

        epoch = self._epoch
        self._epoch += 1
        for j, payload in enumerate(payloads):
            self._tasks[j % self.num_workers].put((kind, epoch, j, payload))
        collected = {}
        while len(collected) < len(payloads):
            try:
                msg = self._results.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                self._check_alive()
                continue
            tag, msg_epoch, chunk_index = msg[0], msg[1], msg[2]
            if msg_epoch != epoch:
                # Stale result from an epoch a dead dispatch abandoned.
                continue
            if tag == "err":
                raise RuntimeError(
                    f"shm worker {msg[3]} failed:\n{msg[4]}"
                )
            collected[chunk_index] = ChunkResult(
                chunk_index=chunk_index,
                worker_id=msg[3],
                players=msg[4],
                bests=msg[5],
                start=msg[6],
                end=msg[7],
            )
        return [collected[j] for j in range(len(payloads))]

    def _check_alive(self) -> None:
        dead = [
            proc.name
            for proc in self._procs
            if proc.exitcode is not None and proc.exitcode != 0
        ]
        if dead:
            raise RuntimeError(
                "shm worker process(es) died: " + ", ".join(dead)
            )

    # -- teardown ----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop all workers; escalate to terminate if they don't exit."""

        for task_queue in self._tasks:
            try:
                task_queue.put(SHUTDOWN)
            except Exception:
                pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        self._results.close()
        self._results.join_thread()
        for task_queue in self._tasks:
            task_queue.close()
        self._procs = []
