"""Shared-memory segment lifecycle for the shm backend.

One :class:`ShmArena` holds every array a solve shares with its worker
pool — the instance's CSR arrays, the precomputed cost/refund arrays,
the strategy vector, and (for RMGP_gt) the global table — in a single
``multiprocessing.shared_memory`` segment with a 64-byte-aligned offset
table, so a solve maps exactly one segment no matter how many arrays it
ships.

Cleanup is belt and braces, because a leaked ``/dev/shm`` segment
outlives the process that forgot it:

* engines call :meth:`ShmArena.destroy` in ``finally`` — a deadline,
  cancellation, or exception on the solve path still unlinks;
* every owner arena registers in a module-level table reaped by an
  ``atexit`` hook, so even a solve that dies without unwinding (e.g.
  ``sys.exit`` from a signal handler) does not leak;
* ``destroy()`` is idempotent and swallows the teardown races
  (``BufferError`` from a still-live view must not stop the unlink).

Workers attach by name and immediately detach the segment from their
``resource_tracker`` — the child did not create it, and letting the
tracker "clean up" on child exit would destroy the parent's segment
(CPython issue 82300); Python 3.13 grew ``track=False`` for this, the
``unregister`` call is the portable spelling.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SEGMENT_PREFIX = "repro_shm_"

_ALIGN = 64

#: Owner arenas still alive in this process, reaped by the atexit guard.
_LIVE: Dict[str, "ShmArena"] = {}

_atexit_installed = False


def _install_atexit() -> None:
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_reap_live)
        _atexit_installed = True


def _reap_live() -> None:
    for arena in list(_LIVE.values()):
        arena.destroy()


def live_segment_names() -> List[str]:
    """Names of owner segments not yet destroyed (for leak checks)."""

    return sorted(_LIVE)


# Layout entries are (name, dtype string, shape tuple, byte offset) —
# plain picklable types so a layout can ride a spawn-start argument list.
LayoutEntry = Tuple[str, str, Tuple[int, ...], int]


def _build_layout(
    arrays: Dict[str, np.ndarray]
) -> Tuple[List[LayoutEntry], int]:
    layout: List[LayoutEntry] = []
    offset = 0
    for name, arr in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        layout.append((name, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return layout, max(offset, 1)


class ShmArena:
    """A named shared-memory segment holding a dict of numpy arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: Sequence[LayoutEntry],
        owner: bool,
    ) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = shm
        self.name = shm.name
        self.layout = list(layout)
        self.owner = owner
        self._views: Optional[Dict[str, np.ndarray]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "ShmArena":
        """Allocate a segment and copy ``arrays`` into it (owner side)."""

        layout, size = _build_layout(arrays)
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        arena = cls(shm, layout, owner=True)
        views = arena.views()
        for key, arr in arrays.items():
            np.copyto(views[key], arr)
        _LIVE[arena.name] = arena
        _install_atexit()
        return arena

    @classmethod
    def attach(cls, name: str, layout: Sequence[LayoutEntry]) -> "ShmArena":
        """Map an existing segment by name (worker side).

        The attach must not be resource-tracked: the worker never owns
        the segment, and tracking it would either destroy the parent's
        segment on worker exit (spawn: the worker's own tracker unlinks
        it) or cancel the parent's registration (fork: the tracker is
        shared) — CPython issue 82300.  Python 3.13 grew ``track=False``
        for exactly this; on older interpreters the registration is
        suppressed for the duration of the constructor.
        """

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        return cls(shm, layout, owner=False)

    # -- access ------------------------------------------------------------

    def views(self) -> Dict[str, np.ndarray]:
        """Name -> array views into the segment (cached)."""

        if self.shm is None:
            raise ValueError(f"arena {self.name} is closed")
        if self._views is None:
            self._views = {
                name: np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=self.shm.buf,
                    offset=offset,
                )
                for name, dtype, shape, offset in self.layout
            }
        return self._views

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping (both sides). Idempotent."""

        self._views = None
        shm, self.shm = self.shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A still-exported buffer can block the unmap on some
            # interpreter versions; the owner unlinks in destroy()
            # regardless, so nothing persists in /dev/shm.  Either way,
            # outstanding views are dead after close() — the engine
            # copies results out before tearing the arena down.
            pass

    def destroy(self) -> None:
        """Unlink (owner) and close the segment. Idempotent."""

        shm = self.shm
        if shm is not None and self.owner:
            # Unlink before close: shm_unlink works on a live mapping,
            # and this order guarantees the name is gone even if close()
            # hits a BufferError from an outstanding view.
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self.close()
        _LIVE.pop(self.name, None)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.destroy()
        else:
            self.close()
