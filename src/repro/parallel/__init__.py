"""Shared-memory parallel execution backends for the hot solver kernels.

The paper's §4.2 design computes color-class best responses *in
parallel*; CPython's GIL starves the thread pool of
:mod:`repro.core.independent_sets`, so this package provides true
concurrency instead:

* :mod:`repro.parallel.backend` — the ``backend=`` / ``workers=`` knob
  resolution (``pure`` / ``shm`` / ``numba``, ``REPRO_WORKERS``).
* :mod:`repro.parallel.shm` — shared-memory segment lifecycle: the
  instance's CSR arrays, dense costs and the strategy vector are mapped
  once per solve; ``close()``/``unlink()`` run in ``finally`` and an
  ``atexit`` guard reaps anything a crashed solve leaves behind.
* :mod:`repro.parallel.pool` — a persistent worker-process pool that
  color classes are fanned out to.
* :mod:`repro.parallel.kernels` — the chunk kernels themselves, in
  float (byte-identical to each solver's pure path) and Lemma 2
  integer-scaled exact variants, plus numba-jittable loop forms.
* :mod:`repro.parallel.engine` — dispatch: solvers ask
  :func:`make_engine` for an execution engine and stay agnostic of
  which backend runs underneath.

Determinism contract: for every backend the assignment trajectory is
byte-identical to the same solver's pure-python path (pinned by
``tests/parallel/test_backend_conformance.py``); see DESIGN.md §4.5 for
the argument.
"""

from repro.parallel.backend import (
    KNOWN_BACKENDS,
    ResolvedBackend,
    numba_available,
    resolve_backend,
    resolve_workers,
)
from repro.parallel.engine import make_engine
from repro.parallel.kernels import exact_payload
from repro.parallel.shm import ShmArena, live_segment_names

__all__ = [
    "KNOWN_BACKENDS",
    "ResolvedBackend",
    "ShmArena",
    "exact_payload",
    "live_segment_names",
    "make_engine",
    "numba_available",
    "resolve_backend",
    "resolve_workers",
]
