"""Best-response chunk kernels shared by every parallel backend.

Each kernel exists in up to three forms that are *proven interchangeable*
by the conformance suite:

* a numpy form (used by the shm workers and the in-process engines) that
  replicates, operation for operation, the arithmetic of the matching
  pure solver path — ``player_strategy_costs`` for the scalar kernels,
  ``_batch_frontier_round`` for the batched kernel,
  ``build_global_table``/``table_round`` for the table kernels — so the
  produced floats are byte-identical to the pure path;
* a loop form written in numba-compatible Python.  When numba is
  importable the loop is jitted at import time; when it is not, the
  plain-Python function remains (slow but testable), and the ``numba``
  backend falls back to ``pure`` anyway.  The loop forms reproduce the
  numpy forms' accumulation *order* (sequential ``subtract.at`` order
  for the scalar kernel, per-key bincount order for the batched/table
  kernels), which is what makes them byte-identical rather than merely
  close;
* a Lemma 2 integer-scaled exact form: costs are quantized once to
  ``int64`` fixed point (``exact_payload``), after which accumulation is
  associative and *no* ordering — thread, process, or vector — can
  perturb an equilibrium.  Comparisons are strict (no float tolerance).

Why the float forms agree across layouts, briefly (full argument in
DESIGN.md §4.5): ``(1−α)·half_weights`` and ``((1−α)·0.5)·weights`` are
single roundings of the same real product; ``np.bincount`` accumulates
weights in array order and CSR rows occupy contiguous slot ranges, so a
per-row chunk of the scatter sums each (row, class) key in exactly the
order the whole-array scatter does; and slicing a precomputed
``α·C.dense()`` matrix is elementwise identical to scaling a row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import RMGPInstance, concat_ranges
from repro.errors import ConfigurationError

try:  # numba is optional; the loop kernels below work without it
    from numba import njit as _njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - depends on environment
    HAVE_NUMBA = False
    _njit = None


def _maybe_jit(fn):
    if HAVE_NUMBA:  # pragma: no cover - numba absent in CI baseline
        return _njit(cache=True)(fn)
    return fn


# ---------------------------------------------------------------------------
# Shared float arrays
# ---------------------------------------------------------------------------


@dataclass
class KernelArrays:
    """Read-only float inputs every float kernel consumes.

    ``scaled_dense`` is ``α·C`` (the same precomputation
    ``_build_batches`` does once per solve) and ``refunds`` is
    ``(1−α)·half_weights`` — both computed exactly once so every chunk,
    every worker, and the pure path slice the *same* floats.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    half_weights: np.ndarray
    scaled_dense: np.ndarray
    maxsc: np.ndarray
    refunds: np.ndarray
    k: int


def kernel_arrays(instance: RMGPInstance) -> KernelArrays:
    """Materialize the shared float inputs from an instance."""

    alpha = instance.alpha
    return KernelArrays(
        indptr=instance.indptr,
        indices=instance.indices,
        weights=instance.weights,
        half_weights=instance.half_weights,
        scaled_dense=alpha * instance.cost.dense(),
        maxsc=instance.max_social_cost,
        refunds=(1.0 - alpha) * instance.half_weights,
        k=instance.k,
    )


# ---------------------------------------------------------------------------
# Float kernels — numpy forms
# ---------------------------------------------------------------------------


def scalar_moves(
    indptr: np.ndarray,
    indices: np.ndarray,
    scaled_dense: np.ndarray,
    maxsc: np.ndarray,
    refunds: np.ndarray,
    assignment: np.ndarray,
    members: np.ndarray,
    tol: float,
):
    """Per-player best responses for ``members`` against ``assignment``.

    Replicates ``player_strategy_costs`` + ``best_response`` exactly:
    per-member ``subtract.at`` in CSR slot order, first-minimum argmin,
    tie keeps the current class.  Returns ``(players, bests)`` for the
    members that deviate, in ``members`` order.
    """

    out_players = []
    out_bests = []
    for v in members:
        v = int(v)
        costs = scaled_dense[v] + maxsc[v]
        lo, hi = indptr[v], indptr[v + 1]
        if hi > lo:
            np.subtract.at(costs, assignment[indices[lo:hi]], refunds[lo:hi])
        best = int(costs.argmin())
        current = int(assignment[v])
        if costs[best] < costs[current] - tol:
            out_players.append(v)
            out_bests.append(best)
    return (
        np.asarray(out_players, dtype=np.int64),
        np.asarray(out_bests, dtype=np.int64),
    )


def batched_moves(
    indptr: np.ndarray,
    indices: np.ndarray,
    scaled_dense: np.ndarray,
    maxsc: np.ndarray,
    refunds: np.ndarray,
    assignment: np.ndarray,
    members: np.ndarray,
    k: int,
    tol: float,
):
    """Whole-chunk batched best responses (the RMGP_vec arithmetic).

    Replicates ``_batch_frontier_round``'s gather + bincount scatter for
    ``members`` (the dirty subset of a color group).  Chunking is safe:
    bincount keys never mix rows, so each row's refund sum is
    accumulated in the same (CSR slot) order no matter how the group is
    split across workers.
    """

    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    counts = indptr[members + 1] - indptr[members]
    slots = concat_ranges(indptr[members], counts)
    rows = np.arange(members.size, dtype=np.int64)
    row_positions = np.repeat(rows, counts)
    costs = scaled_dense[members] + maxsc[members][:, None]
    if slots.size:
        keys = row_positions * k + assignment[indices[slots]]
        costs -= np.bincount(
            keys, weights=refunds[slots], minlength=members.size * k
        ).reshape(members.size, k)
    current = assignment[members]
    best = costs.argmin(axis=1)
    improves = (costs[rows, best] < costs[rows, current] - tol) & (
        best != current
    )
    return members[improves], best[improves]


def table_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    scaled_dense: np.ndarray,
    maxsc: np.ndarray,
    refunds: np.ndarray,
    assignment: np.ndarray,
    row_start: int,
    row_stop: int,
    k: int,
    out: np.ndarray,
) -> None:
    """Global-table rows ``[row_start, row_stop)`` into ``out`` (full table).

    Byte-identical to the same rows of ``build_global_table``: CSR rows
    occupy contiguous slot ranges, so the per-chunk bincount sums every
    (row, class) key in the same order as the full scatter.
    """

    rows = slice(row_start, row_stop)
    chunk = scaled_dense[rows] + maxsc[rows, None]
    lo, hi = int(indptr[row_start]), int(indptr[row_stop])
    if hi > lo:
        owners = np.repeat(
            np.arange(row_start, row_stop, dtype=np.int64),
            indptr[row_start + 1 : row_stop + 1] - indptr[row_start:row_stop],
        )
        keys = (owners - row_start) * k + assignment[indices[lo:hi]]
        chunk -= np.bincount(
            keys, weights=refunds[lo:hi], minlength=(row_stop - row_start) * k
        ).reshape(row_stop - row_start, k)
    out[rows] = chunk


# ---------------------------------------------------------------------------
# Float kernels — numba-compatible loop forms
# ---------------------------------------------------------------------------


def _scalar_moves_loop(
    indptr, indices, scaled_dense, maxsc, refunds, assignment, members, tol
):
    k = scaled_dense.shape[1]
    out_players = np.empty(members.size, np.int64)
    out_bests = np.empty(members.size, np.int64)
    costs = np.empty(k, np.float64)
    m = 0
    for i in range(members.size):
        v = members[i]
        for j in range(k):
            costs[j] = scaled_dense[v, j] + maxsc[v]
        for s in range(indptr[v], indptr[v + 1]):
            costs[assignment[indices[s]]] -= refunds[s]
        best = 0
        best_cost = costs[0]
        for j in range(1, k):
            if costs[j] < best_cost:
                best_cost = costs[j]
                best = j
        current = assignment[v]
        if best_cost < costs[current] - tol:
            out_players[m] = v
            out_bests[m] = best
            m += 1
    return out_players[:m], out_bests[:m]


def _batched_moves_loop(
    indptr, indices, scaled_dense, maxsc, refunds, assignment, members, tol
):
    # Matches the bincount form: refunds are *summed per class first*
    # (in CSR slot order, like bincount) and subtracted once, not
    # subtracted one by one — sequential subtraction would round
    # differently in the last ulp.
    k = scaled_dense.shape[1]
    out_players = np.empty(members.size, np.int64)
    out_bests = np.empty(members.size, np.int64)
    acc = np.empty(k, np.float64)
    costs = np.empty(k, np.float64)
    m = 0
    for i in range(members.size):
        v = members[i]
        for j in range(k):
            acc[j] = 0.0
        for s in range(indptr[v], indptr[v + 1]):
            acc[assignment[indices[s]]] += refunds[s]
        for j in range(k):
            costs[j] = (scaled_dense[v, j] + maxsc[v]) - acc[j]
        best = 0
        best_cost = costs[0]
        for j in range(1, k):
            if costs[j] < best_cost:
                best_cost = costs[j]
                best = j
        current = assignment[v]
        if best != current and best_cost < costs[current] - tol:
            out_players[m] = v
            out_bests[m] = best
            m += 1
    return out_players[:m], out_bests[:m]


def _table_sweep_loop(
    table, assignment, flags, sweep, indptr, indices, refunds, tol
):
    # The RMGP_gt inner loop (table_round), loop for loop: examine dirty
    # players in sweep order, deviate on strict improvement, push ±½·w
    # to each friend's two affected entries (refunds[s] is bitwise equal
    # to ((1−α)·0.5)·w — same real product, single rounding).
    deviations = 0
    examined = 0
    k = table.shape[1]
    for i in range(sweep.size):
        player = sweep[i]
        if not flags[player]:
            continue
        flags[player] = False
        examined += 1
        current = assignment[player]
        best = 0
        best_cost = table[player, 0]
        for j in range(1, k):
            if table[player, j] < best_cost:
                best_cost = table[player, j]
                best = j
        if best_cost >= table[player, current] - tol:
            continue
        assignment[player] = best
        deviations += 1
        for s in range(indptr[player], indptr[player + 1]):
            friend = indices[s]
            delta = refunds[s]
            table[friend, best] -= delta
            table[friend, current] += delta
            flags[friend] = True
    return deviations, examined


scalar_moves_loop = _maybe_jit(_scalar_moves_loop)
batched_moves_loop = _maybe_jit(_batched_moves_loop)
table_sweep_loop = _maybe_jit(_table_sweep_loop)


# ---------------------------------------------------------------------------
# Lemma 2 integer scaling — exact fixed-point kernels
# ---------------------------------------------------------------------------


@dataclass
class ExactPayload:
    """Integer fixed-point quantization of one instance (Lemma 2).

    ``int_cost[v][p] = rint(α·c(v,p)·scale)`` and
    ``int_refund[e] = rint((1−α)·½·w_e·scale)``; ``int_maxsc`` is the
    *integer* per-player refund sum, so a strategy's cost is an exact
    ``int64`` and accumulation order cannot matter.  Comparisons are
    strict — a player deviates iff some class is cheaper by at least one
    fixed-point unit (1/scale in Equation 3 cost units).
    """

    int_cost: np.ndarray
    int_refund: np.ndarray
    int_maxsc: np.ndarray
    scale: int


def exact_payload(instance: RMGPInstance, scale: int) -> ExactPayload:
    """Quantize ``instance`` at ``scale`` fixed-point units per cost unit."""

    if isinstance(scale, bool) or not isinstance(scale, int) or scale < 1:
        raise ConfigurationError(
            f"exact_scale must be an int >= 1, got {scale!r}"
        )
    alpha = instance.alpha
    float_cost = alpha * instance.cost.dense() * float(scale)
    float_refund = (1.0 - alpha) * instance.half_weights * float(scale)
    float_maxsc = np.zeros(instance.n, dtype=np.float64)
    if float_refund.size:
        np.add.at(float_maxsc, instance.edge_owner, float_refund)
    # Guard BEFORE the int64 cast: a cast or accumulate that wraps would
    # corrupt the very numbers the guard inspects.  Floats cannot wrap,
    # and the 2**62 threshold leaves a full headroom bit against the
    # real 2**63 limit, so float rounding cannot mask an overflow.
    bound = float(np.abs(float_cost).max(initial=0.0)) + float(
        float_maxsc.max(initial=0.0)
    )
    if not np.isfinite(bound) or bound >= 2.0**62:
        raise ConfigurationError(
            f"exact_scale={scale} overflows int64 fixed point for this "
            f"instance (magnitude bound {bound:.3g}); use a smaller scale"
        )
    int_cost = np.rint(float_cost).astype(np.int64)
    int_refund = np.rint(float_refund).astype(np.int64)
    int_maxsc = np.zeros(instance.n, dtype=np.int64)
    if int_refund.size:
        np.add.at(int_maxsc, instance.edge_owner, int_refund)
    return ExactPayload(
        int_cost=int_cost,
        int_refund=int_refund,
        int_maxsc=int_maxsc,
        scale=scale,
    )


def exact_scalar_moves(
    indptr, indices, int_cost, int_maxsc, int_refund, assignment, members
):
    """Integer best responses, one member at a time (order-free exact)."""

    out_players = []
    out_bests = []
    for v in members:
        v = int(v)
        costs = int_cost[v] + int_maxsc[v]
        lo, hi = indptr[v], indptr[v + 1]
        if hi > lo:
            np.subtract.at(costs, assignment[indices[lo:hi]], int_refund[lo:hi])
        best = int(costs.argmin())
        current = int(assignment[v])
        if costs[best] < costs[current]:
            out_players.append(v)
            out_bests.append(best)
    return (
        np.asarray(out_players, dtype=np.int64),
        np.asarray(out_bests, dtype=np.int64),
    )


def exact_batched_moves(
    indptr, indices, int_cost, int_maxsc, int_refund, assignment, members, k
):
    """Whole-chunk integer best responses; bitwise equal to the scalar
    form because int64 accumulation is associative."""

    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    counts = indptr[members + 1] - indptr[members]
    slots = concat_ranges(indptr[members], counts)
    rows = np.arange(members.size, dtype=np.int64)
    costs = int_cost[members] + int_maxsc[members][:, None]
    if slots.size:
        keys = np.repeat(rows, counts) * k + assignment[indices[slots]]
        acc = np.zeros(members.size * k, dtype=np.int64)
        np.add.at(acc, keys, int_refund[slots])
        costs -= acc.reshape(members.size, k)
    current = assignment[members]
    best = costs.argmin(axis=1)
    improves = (costs[rows, best] < costs[rows, current]) & (best != current)
    return members[improves], best[improves]


def _exact_scalar_moves_loop(
    indptr, indices, int_cost, int_maxsc, int_refund, assignment, members
):
    k = int_cost.shape[1]
    out_players = np.empty(members.size, np.int64)
    out_bests = np.empty(members.size, np.int64)
    costs = np.empty(k, np.int64)
    m = 0
    for i in range(members.size):
        v = members[i]
        for j in range(k):
            costs[j] = int_cost[v, j] + int_maxsc[v]
        for s in range(indptr[v], indptr[v + 1]):
            costs[assignment[indices[s]]] -= int_refund[s]
        best = 0
        best_cost = costs[0]
        for j in range(1, k):
            if costs[j] < best_cost:
                best_cost = costs[j]
                best = j
        current = assignment[v]
        if best_cost < costs[current]:
            out_players[m] = v
            out_bests[m] = best
            m += 1
    return out_players[:m], out_bests[:m]


exact_scalar_moves_loop = _maybe_jit(_exact_scalar_moves_loop)
