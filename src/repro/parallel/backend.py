"""Backend/worker knob resolution for the parallel execution engines.

Three backends share the solver surface (see ``core/registry.py``):

``pure``
    The existing single-process numpy kernels. Always available; the
    default.
``shm``
    ``multiprocessing.shared_memory`` worker-process pool
    (:mod:`repro.parallel.engine`). Requires ``workers >= 2`` to do
    anything useful; ``workers=1`` is the documented serial fallback —
    the solve runs the pure path and records why.
``numba``
    Jitted loop kernels. numba is an *optional* dependency: when it is
    not importable the request degrades gracefully to ``pure`` and the
    fallback reason is surfaced in ``PartitionResult.extra``.

Worker-count resolution order: explicit ``workers=`` argument, then the
``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.
Explicit values are validated eagerly (``workers < 1`` is a
:class:`~repro.errors.ConfigurationError`); the environment variable is
only consulted when a value is actually needed, so an exported garbage
value cannot break unrelated pure solves.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

KNOWN_BACKENDS = ("pure", "shm", "numba")

WORKERS_ENV = "REPRO_WORKERS"


def numba_available() -> bool:
    """Return True when numba can be imported in this interpreter."""

    try:
        import numba  # noqa: F401
    except Exception:  # pragma: no cover - depends on environment
        return False
    return True


def _validate_workers(workers: int, source: str) -> int:
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers ({source}) must be an int >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"workers ({source}) must be >= 1, got {workers}"
        )
    return workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument, ``REPRO_WORKERS``, cpu count."""

    if workers is not None:
        return _validate_workers(workers, "argument")
    env = os.environ.get(WORKERS_ENV)
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        return _validate_workers(value, WORKERS_ENV)
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ResolvedBackend:
    """Outcome of backend resolution.

    ``requested`` is what the caller asked for (``None`` means default),
    ``effective`` is what will actually run, ``workers`` is the resolved
    pool size (1 for non-shm backends), and ``reason`` documents any
    fallback so results stay auditable.
    """

    requested: str
    effective: str
    workers: int
    reason: Optional[str] = None

    def info(self) -> dict:
        out = {
            "backend": self.requested,
            "backend_effective": self.effective,
            "workers": self.workers,
        }
        if self.reason is not None:
            out["backend_fallback_reason"] = self.reason
        return out


def resolve_backend(
    backend: Optional[str] = None, workers: Optional[int] = None
) -> ResolvedBackend:
    """Validate and resolve the ``backend=`` / ``workers=`` pair."""

    if workers is not None:
        _validate_workers(workers, "argument")
    if backend is None:
        # workers= without backend= means "parallelize": shm is the only
        # backend a worker count applies to.
        requested = "shm" if workers is not None else "pure"
    else:
        requested = backend
    if requested not in KNOWN_BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known backends: "
            + ", ".join(KNOWN_BACKENDS)
        )
    if requested == "shm":
        count = resolve_workers(workers)
        if count == 1:
            return ResolvedBackend(
                requested="shm",
                effective="pure",
                workers=1,
                reason="workers=1: serial fallback (no pool is cheaper)",
            )
        return ResolvedBackend(requested="shm", effective="shm", workers=count)
    if requested == "numba" and not numba_available():
        return ResolvedBackend(
            requested="numba",
            effective="pure",
            workers=1,
            reason="numba is not importable; running pure kernels",
        )
    return ResolvedBackend(requested=requested, effective=requested, workers=1)
