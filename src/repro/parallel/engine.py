"""Execution engines: the dispatch layer between solvers and backends.

Solvers call :func:`make_engine` with the user's ``backend=`` /
``workers=`` knobs and get back ``(engine, info)``:

* ``engine is None`` — run the existing pure path (backend ``pure`` with
  no exact scaling, or any documented fallback);
* :class:`ShmEngine` — the shared-memory worker pool: arrays are mapped
  once, each call copies only the strategy vector into the segment and
  fans member chunks out to the persistent workers;
* :class:`LocalEngine` — in-process kernels: jitted loops for the
  ``numba`` backend, or the Lemma 2 integer-exact kernels when
  ``exact_scale`` is set on the ``pure`` backend.

``info`` is a plain dict for ``PartitionResult.extra`` recording what
was requested, what actually ran, the worker count, and any fallback
reason — a result can always be audited for which arithmetic produced
it.

Engines must be shut down in a ``finally`` (every integrated solver
does), and the shm arena additionally registers with the atexit guard in
:mod:`repro.parallel.shm`, so deadline-killed or cancelled solves never
leak ``/dev/shm`` segments.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.core.dynamics import DEVIATION_TOLERANCE
from repro.core.instance import RMGPInstance
from repro.obs.context import RemoteSpan
from repro.obs.clock import MonotonicClock
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.parallel import kernels
from repro.parallel.backend import ResolvedBackend, resolve_backend
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ShmArena

_EMPTY = np.empty(0, dtype=np.int64)

#: Span name prefix the straggler analysis groups per-worker work by.
WORKER_SPAN = "worker.compute"


class LocalEngine:
    """In-process engine: jitted loop kernels and/or integer-exact math."""

    def __init__(
        self,
        instance: RMGPInstance,
        kind: str,
        exact: Optional[kernels.ExactPayload] = None,
        tol: float = DEVIATION_TOLERANCE,
    ) -> None:
        self.kind = kind  # "numba" or "exact"
        self.exact = exact
        self.tol = tol
        self._indptr = instance.indptr
        self._indices = instance.indices
        self._k = instance.k
        self._ka = kernels.kernel_arrays(instance) if exact is None else None

    def scalar_moves(self, assignment, members) -> Tuple[np.ndarray, np.ndarray]:
        members = np.ascontiguousarray(members, dtype=np.int64)
        if members.size == 0:
            return _EMPTY, _EMPTY
        if self.exact is not None:
            if kernels.HAVE_NUMBA:  # pragma: no cover - env dependent
                return kernels.exact_scalar_moves_loop(
                    self._indptr, self._indices, self.exact.int_cost,
                    self.exact.int_maxsc, self.exact.int_refund, assignment,
                    members,
                )
            # int64 accumulation is associative: the batched form yields
            # the same integers as the scalar form, only faster.
            return kernels.exact_batched_moves(
                self._indptr, self._indices, self.exact.int_cost,
                self.exact.int_maxsc, self.exact.int_refund, assignment,
                members, self._k,
            )
        ka = self._ka
        return kernels.scalar_moves_loop(
            ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
            assignment, members, self.tol,
        )

    def batched_moves(self, assignment, members) -> Tuple[np.ndarray, np.ndarray]:
        members = np.ascontiguousarray(members, dtype=np.int64)
        if members.size == 0:
            return _EMPTY, _EMPTY
        if self.exact is not None:
            return kernels.exact_batched_moves(
                self._indptr, self._indices, self.exact.int_cost,
                self.exact.int_maxsc, self.exact.int_refund, assignment,
                members, self._k,
            )
        ka = self._ka
        return kernels.batched_moves_loop(
            ka.indptr, ka.indices, ka.scaled_dense, ka.maxsc, ka.refunds,
            assignment, members, self.tol,
        )

    def table_sweep(self, table, assignment, flags, sweep) -> Tuple[int, int]:
        """RMGP_gt inner sweep via the (jitted) loop kernel."""

        ka = self._ka
        deviations, examined = kernels.table_sweep_loop(
            table, assignment, flags, sweep, ka.indptr, ka.indices,
            ka.refunds, self.tol,
        )
        return int(deviations), int(examined)

    def shutdown(self) -> None:
        """Nothing to release — symmetric with :class:`ShmEngine`."""


class ShmEngine:
    """Shared-memory worker-pool engine (the tentpole backend)."""

    kind = "shm"

    def __init__(
        self,
        instance: RMGPInstance,
        workers: int,
        recorder: Optional[Recorder] = None,
        exact: Optional[kernels.ExactPayload] = None,
        with_table: bool = False,
        tol: float = DEVIATION_TOLERANCE,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = workers
        self.exact = exact
        self._rec = recorder if recorder is not None else NULL_RECORDER
        self._raw_clock = isinstance(
            getattr(self._rec, "clock", None), MonotonicClock
        )
        n, k = instance.n, instance.k
        arrays = dict(instance.csr_arrays())
        arrays["assignment"] = np.zeros(n, dtype=np.int64)
        if exact is not None:
            arrays["int_cost"] = exact.int_cost
            arrays["int_refund"] = exact.int_refund
            arrays["int_maxsc"] = exact.int_maxsc
        else:
            ka = kernels.kernel_arrays(instance)
            arrays["scaled_dense"] = ka.scaled_dense
            arrays["maxsc"] = ka.maxsc
            arrays["refunds"] = ka.refunds
        if with_table:
            arrays["table"] = np.zeros((n, k), dtype=np.float64)
        self.arena = ShmArena.create(arrays)
        self._n = n
        self._k = k
        views = self.arena.views()
        self._assignment = views["assignment"]
        self._table = views.get("table")
        params = {"k": k, "tol": tol, "exact": exact is not None}
        try:
            self.pool: Optional[WorkerPool] = WorkerPool(
                self.arena, workers, params, method=start_method
            )
        except BaseException:
            self._release_arena()
            raise

    # -- dispatch ----------------------------------------------------------

    def scalar_moves(self, assignment, members):
        return self._moves("scalar", assignment, members)

    def batched_moves(self, assignment, members):
        return self._moves("batched", assignment, members)

    def _moves(self, kind, assignment, members):
        members = np.ascontiguousarray(members, dtype=np.int64)
        if members.size == 0:
            return _EMPTY, _EMPTY
        np.copyto(self._assignment, assignment)
        chunks = np.array_split(members, min(self.workers, members.size))
        results = self.pool.run(kind, chunks)
        self._note(results, [c.size for c in chunks])
        players = np.concatenate([r.players for r in results])
        bests = np.concatenate([r.bests for r in results])
        return players, bests

    def build_table(self, assignment) -> np.ndarray:
        """Parallel RMGP_gt table build; returns a private copy."""

        if self._table is None:
            raise ValueError("engine was created without a table region")
        np.copyto(self._assignment, assignment)
        n = self._n
        edges = [n * j // self.workers for j in range(self.workers + 1)]
        payloads = [
            (lo, hi) for lo, hi in zip(edges, edges[1:]) if hi > lo
        ]
        if payloads:
            results = self.pool.run("table", payloads)
            self._note(results, [hi - lo for lo, hi in payloads])
        return self._table.copy()

    # -- telemetry ---------------------------------------------------------

    def _note(self, results, sizes) -> None:
        rec = self._rec
        for result in results:
            busy = result.end - result.start
            rec.count("parallel.tasks", 1, worker=result.worker_id)
            rec.count("parallel.busy_seconds", busy, worker=result.worker_id)
        if not rec.enabled:
            return
        parent = rec.current_span
        if parent is None:
            return
        spans = []
        for result, size in zip(results, sizes):
            if self._raw_clock:
                # Worker stamps are time.perf_counter(), the same
                # system-wide counter MonotonicClock reads — adopt the
                # busy window verbatim (offset 0).
                start, end = result.start, result.end
            else:
                # Foreign (e.g. manual) clock: pin a zero-width marker at
                # "now" and keep the measured duration in the attrs.
                start = end = rec.clock()
            attrs = {"chunk": result.chunk_index, "players": size}
            if result.players is not None:
                attrs["moves"] = int(result.players.size)
            if start == end:
                attrs["busy_seconds"] = result.end - result.start
            spans.append(
                RemoteSpan(
                    name=WORKER_SPAN,
                    node=f"worker-{result.worker_id}",
                    start=start,
                    end=end,
                    parent_span_id=parent.span_id,
                    attrs=attrs,
                )
            )
        rec.adopt(spans)

    # -- teardown ----------------------------------------------------------

    def _release_arena(self) -> None:
        self._assignment = None
        self._table = None
        self.arena.destroy()

    def shutdown(self) -> None:
        """Stop workers and unlink the segment. Safe to call twice."""

        pool, self.pool = self.pool, None
        try:
            if pool is not None:
                pool.shutdown()
        finally:
            self._release_arena()


@contextmanager
def engine_scope(engine):
    """``with engine_scope(engine):`` — shutdown in ``finally``.

    Accepts ``None`` so callers can use one code path whether or not a
    backend was requested.
    """

    try:
        yield engine
    finally:
        if engine is not None:
            engine.shutdown()


def make_engine(
    instance: RMGPInstance,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    exact_scale: Optional[int] = None,
    with_table: bool = False,
    tol: float = DEVIATION_TOLERANCE,
) -> Tuple[object, dict]:
    """Resolve knobs and build the engine for one solve.

    Returns ``(engine, info)``; ``engine`` is ``None`` when the plain
    pure-python path should run.  ``info`` always records the requested
    and effective backend (plus worker count, fallback reason, and
    ``exact_scale`` when set) for ``PartitionResult.extra``.
    """

    resolved: ResolvedBackend = resolve_backend(backend, workers)
    payload = (
        kernels.exact_payload(instance, exact_scale)
        if exact_scale is not None
        else None
    )
    info = resolved.info()
    if payload is not None:
        info["exact_scale"] = payload.scale
    if resolved.effective == "shm":
        engine = ShmEngine(
            instance,
            resolved.workers,
            recorder=recorder,
            exact=payload,
            with_table=with_table,
            tol=tol,
        )
    elif resolved.effective == "numba":  # pragma: no cover - env dependent
        engine = LocalEngine(instance, kind="numba", exact=payload, tol=tol)
    elif payload is not None:
        engine = LocalEngine(instance, kind="exact", exact=payload, tol=tol)
    else:
        engine = None
    return engine, info
