"""Deadline and per-round budgets on a pluggable clock.

:class:`RuntimeBudget` is checked once per round boundary: a single
clock read per check, so deterministic clocks (:class:`SteppingClock`,
:class:`~repro.obs.clock.ManualClock`) make deadline behavior exactly
reproducible in tests — no sleeps, no wall-clock races.

Semantics (all observed *before* starting a round, never mid-round):

* ``deadline_seconds`` — total budget for the solve, measured from the
  first check (which the kernels issue before round 0's work begins).
  A round in flight always completes; the anytime property of
  best-response dynamics guarantees the assignment it leaves behind is
  valid and no worse than the round before.
* ``round_budget_seconds`` — two guards in one: stop when the *previous*
  round overran the budget (the next one would too), and — when a
  deadline is also set — stop when the remaining time is smaller than
  one round budget ("don't start a round you cannot finish").
* ``token`` — a :class:`~repro.runtime.token.CancelToken`, polled once
  per check.

A tripped budget yields a :class:`SolveInterrupted` value; the solver
translates it into a ``PartitionResult`` with ``converged=False`` and
``stop_reason`` set — budgets never raise out of a solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.runtime.token import CancelToken


@dataclass(frozen=True)
class SolveInterrupted:
    """Typed description of why and where a solve stopped early.

    Attributes
    ----------
    reason:
        ``"deadline"`` or ``"cancelled"``.
    round_index:
        The round that was *about to start* when the budget tripped;
        rounds ``0 .. round_index - 1`` completed normally.
    elapsed_seconds:
        Elapsed time on the budget's clock at the interrupt.
    """

    reason: str
    round_index: int
    elapsed_seconds: float


class SteppingClock:
    """A clock advancing by a fixed step on every read.

    Budgets read their clock exactly once per check (plus once at
    :meth:`RuntimeBudget.start`), so with ``step=1.0`` every round
    boundary "costs" one simulated second — deadline expiry becomes a
    pure function of the round count, which is what the wall-clock-free
    conformance tests pin.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step < 0:
            raise ConfigurationError(f"step must be non-negative, got {step}")
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self._step
        return now


class RuntimeBudget:
    """Per-solve deadline/cancellation budget.

    One budget instance drives one solve (it pins its start time at the
    first :meth:`start`); sharing an instance across the stages of a
    composite solve (``minpart``'s cancel-and-resolve loop) is
    intentional — the deadline then covers the whole composition.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        round_budget_seconds: Optional[float] = None,
        token: Optional[CancelToken] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        if round_budget_seconds is not None and round_budget_seconds <= 0:
            raise ConfigurationError(
                "round_budget_seconds must be positive, got "
                f"{round_budget_seconds}"
            )
        self.deadline_seconds = deadline_seconds
        self.round_budget_seconds = round_budget_seconds
        self.token = token
        self.clock = clock if clock is not None else time.perf_counter
        self._start: Optional[float] = None
        self._last_check: Optional[float] = None

    def start(self) -> None:
        """Pin the budget's epoch (idempotent; kernels call it on entry)."""
        if self._start is None:
            self._start = self.clock()
            self._last_check = self._start

    def tighten(self, grace_seconds: float) -> None:
        """Cap the *remaining* runtime at ``grace_seconds`` from now.

        The graceful-drain hook: a serving layer that must shut down
        calls ``tighten`` on the budgets of in-flight solves, and the
        next round-boundary :meth:`check` observes the tightened
        deadline — the solve degrades to a valid best-so-far result
        through the normal ``stop_reason="deadline"`` path instead of
        being killed.  An already-sooner deadline is kept (tighten never
        extends); a budget that has not started yet gets
        ``deadline_seconds=grace_seconds`` outright, measured from its
        first check as usual.

        Thread-safe in the only way that matters here: ``check`` reads
        ``deadline_seconds`` once per round boundary, and a float
        attribute store is atomic under the GIL.  Note that tightening a
        started budget reads the clock once, so stateful test clocks
        (:class:`SteppingClock`) advance by one step.
        """
        if grace_seconds <= 0:
            raise ConfigurationError(
                f"grace_seconds must be positive, got {grace_seconds}"
            )
        if self._start is None:
            tightened = float(grace_seconds)
        else:
            elapsed = self.clock() - self._start
            tightened = elapsed + float(grace_seconds)
        if self.deadline_seconds is None or tightened < self.deadline_seconds:
            self.deadline_seconds = tightened

    def check(self, next_round_index: int) -> Optional[SolveInterrupted]:
        """One round-boundary check; returns the interrupt or ``None``.

        Reads the clock exactly once.  The time between two consecutive
        checks is the duration of the round in between — the quantity
        ``round_budget_seconds`` bounds.
        """
        self.start()
        now = self.clock()
        elapsed = now - self._start  # type: ignore[operator]
        last_round = (
            now - self._last_check if self._last_check is not None else 0.0
        )
        self._last_check = now

        if self.token is not None and self.token.cancelled:
            return SolveInterrupted("cancelled", next_round_index, elapsed)
        deadline = self.deadline_seconds
        per_round = self.round_budget_seconds
        if deadline is not None:
            reserve = per_round if per_round is not None else 0.0
            if elapsed >= deadline or elapsed + reserve > deadline:
                return SolveInterrupted("deadline", next_round_index, elapsed)
        if per_round is not None and last_round > per_round:
            return SolveInterrupted("deadline", next_round_index, elapsed)
        return None
