"""Solve checkpoints: everything needed to resume an interrupted solve.

A :class:`SolveCheckpoint` captures, at a round boundary, the complete
dynamic state of a solver: the assignment, the dirty frontier, the round
index, the RNG state, the completed round trace and a ``state`` dict of
solver-specific structures (sweep order, color groups, the global
table, the max-gain heap, ...).

Byte-exactness is the design constraint.  Incrementally-maintained float
state (the RMGP_gt/RMGP_all tables, RMGP_mg's gains) is **not** bitwise
reproducible by rebuilding it from the checkpointed assignment — the
rebuild sums refunds in a different order, and a last-ulp difference is
enough to flip a later argmin and diverge the trajectory.  Checkpoints
therefore serialize those arrays losslessly: numpy buffers travel as
base64 of ``tobytes()`` inside the JSON payload, and JSON floats
round-trip exactly (``json`` emits ``repr``-shortest doubles).  The
pinned conformance tests assert interrupt-then-resume equals an
uninterrupted run byte-for-byte for every registry solver.

File I/O lives in :mod:`repro.core.serialize`
(:func:`~repro.core.serialize.save_checkpoint` /
:func:`~repro.core.serialize.load_checkpoint`); this module defines the
in-memory type and its JSON payload mapping.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.result import RoundStats
from repro.errors import DataError

#: Version of the checkpoint payload layout (independent of the result
#: file format in :mod:`repro.core.serialize`).
CHECKPOINT_VERSION = 1

_NDARRAY_KEY = "__ndarray__"


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Lossless JSON encoding of a numpy array (base64 of the raw buffer)."""
    array = np.ascontiguousarray(array)
    return {
        _NDARRAY_KEY: True,
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`; returns a fresh writable array."""
    try:
        raw = base64.b64decode(payload["data"])
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape(payload["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed array payload: {exc}") from exc


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_NDARRAY_KEY):
            return decode_array(value)
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_rng_state(state: Optional[tuple]) -> Optional[list]:
    """``random.Random.getstate()`` tuple -> JSON-ready nested lists."""
    if state is None:
        return None
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(payload: Optional[list]) -> Optional[tuple]:
    """Inverse of :func:`encode_rng_state` (ready for ``setstate``)."""
    if payload is None:
        return None
    try:
        version, internal, gauss_next = payload
        return (version, tuple(internal), gauss_next)
    except (TypeError, ValueError) as exc:
        raise DataError(f"malformed RNG state: {exc}") from exc


def rounds_to_payload(rounds: List[RoundStats]) -> List[Dict[str, Any]]:
    """Round trace -> JSON-ready list (floats round-trip exactly)."""
    payload = []
    for entry in rounds:
        item: Dict[str, Any] = {
            "round_index": int(entry.round_index),
            "deviations": int(entry.deviations),
            "seconds": float(entry.seconds),
            "players_examined": int(entry.players_examined),
        }
        if entry.potential is not None:
            item["potential"] = float(entry.potential)
        payload.append(item)
    return payload


def rounds_from_payload(payload: List[Dict[str, Any]]) -> List[RoundStats]:
    """Inverse of :func:`rounds_to_payload`."""
    try:
        return [
            RoundStats(
                round_index=int(item["round_index"]),
                deviations=int(item["deviations"]),
                seconds=float(item["seconds"]),
                potential=item.get("potential"),
                players_examined=int(item.get("players_examined", 0)),
            )
            for item in payload
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed round trace: {exc}") from exc


@dataclass
class SolveCheckpoint:
    """Resumable snapshot of one solver at a round boundary.

    Attributes
    ----------
    solver:
        The variant name (``"RMGP_gt"``, ...) — resume refuses a
        checkpoint taken by a different variant (its ``state`` layout
        would not match).
    round_index:
        Rounds completed so far (``0`` = only initialization ran).  For
        ``minpart`` the unit is the outer cancel-and-resolve stage.
    assignment:
        The strategy vector at the boundary — always a valid assignment
        (anytime property).
    frontier:
        Boolean dirty flags of the active-set scheduler; empty for
        solvers without a frontier (``mg``, ``sync``, ``cap``).
    rng_state:
        ``random.Random.getstate()`` of the solver's RNG, or ``None``.
    rounds:
        JSON-ready trace of the completed rounds
        (:func:`rounds_to_payload` layout).
    state:
        Solver-specific resume state; numpy arrays in here are
        serialized losslessly.
    fingerprint:
        Identity of the instance the solve ran on; resume refuses a
        checkpoint whose fingerprint does not match.
    """

    solver: str
    round_index: int
    assignment: np.ndarray
    frontier: np.ndarray
    rng_state: Optional[tuple] = None
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    state: Dict[str, Any] = field(default_factory=dict)
    fingerprint: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def fingerprint_of(instance) -> Dict[str, Any]:
        """Cheap instance identity: sizes and α (not the full data)."""
        return {
            "n": int(instance.n),
            "k": int(instance.k),
            "alpha": float(instance.alpha),
            "csr_slots": int(instance.indices.size),
        }

    def validate_for(self, instance, solver: Optional[str] = None) -> None:
        """Refuse resuming onto the wrong solver or instance."""
        if solver is not None and self.solver != solver:
            raise DataError(
                f"checkpoint was taken by {self.solver!r}, cannot resume "
                f"{solver!r} from it"
            )
        expected = self.fingerprint_of(instance)
        if self.fingerprint != expected:
            raise DataError(
                f"checkpoint fingerprint {self.fingerprint} does not match "
                f"the instance ({expected})"
            )
        instance.validate_assignment(self.assignment)

    def restored_rounds(self) -> List[RoundStats]:
        """The completed round trace as :class:`RoundStats` objects."""
        return rounds_from_payload(self.rounds)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict (see module docstring for the guarantees)."""
        return {
            "checkpoint_version": CHECKPOINT_VERSION,
            "solver": self.solver,
            "round_index": int(self.round_index),
            "assignment": encode_array(
                np.asarray(self.assignment, dtype=np.int64)
            ),
            "frontier": encode_array(np.asarray(self.frontier, dtype=bool)),
            "rng_state": encode_rng_state(self.rng_state),
            "rounds": list(self.rounds),
            "state": _encode_value(self.state),
            "fingerprint": dict(self.fingerprint),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SolveCheckpoint":
        """Inverse of :meth:`to_payload`."""
        version = payload.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise DataError(
                f"checkpoint has version {version}, expected "
                f"{CHECKPOINT_VERSION}"
            )
        try:
            return cls(
                solver=payload["solver"],
                round_index=int(payload["round_index"]),
                assignment=decode_array(payload["assignment"]),
                frontier=decode_array(payload["frontier"]),
                rng_state=decode_rng_state(payload.get("rng_state")),
                rounds=list(payload.get("rounds", [])),
                state=_decode_value(payload.get("state", {})),
                fingerprint=dict(payload.get("fingerprint", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed checkpoint payload: {exc}") from exc
