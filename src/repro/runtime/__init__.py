"""Real-time execution layer: deadlines, cancellation, checkpoint/resume.

The paper's headline claim is *real-time* partitioning: queries arrive
with ``P`` and ``α`` at runtime and must be answered promptly.  Because
best-response dynamics are *anytime* — every move strictly decreases the
exact potential Φ (Eq. 4), so the assignment is valid and monotonically
improving after every round — a solve can be stopped at any round
boundary and still return a useful answer.  This package provides the
machinery every registry solver threads through its round loop:

* :class:`CancelToken` — cooperative cancellation, polled at round
  boundaries (:class:`CountdownToken` is its deterministic test double);
* :class:`RuntimeBudget` — wall-clock deadline and per-round budget on a
  pluggable clock (:class:`SteppingClock` makes deadline tests
  wall-clock-free), producing a typed :class:`SolveInterrupted`;
* :class:`SolveCheckpoint` — assignment + frontier + round index + RNG
  state (+ solver-specific tables), enough to resume a solve and replay
  the exact trajectory byte-for-byte;
* :class:`SolveRuntime` — the per-solve driver the kernels call at round
  boundaries (budget check, periodic checkpoint writes, obs counters).

Interrupted solves return a normal
:class:`~repro.core.result.PartitionResult` with ``converged=False`` and
``stop_reason`` set to ``"deadline"`` or ``"cancelled"`` — they never
raise.
"""

from repro.runtime.budget import RuntimeBudget, SolveInterrupted, SteppingClock
from repro.runtime.checkpoint import SolveCheckpoint
from repro.runtime.executor import SolveRuntime, load_resume
from repro.runtime.token import CancelToken, CountdownToken

__all__ = [
    "CancelToken",
    "CountdownToken",
    "RuntimeBudget",
    "SolveCheckpoint",
    "SolveInterrupted",
    "SolveRuntime",
    "SteppingClock",
    "load_resume",
]
