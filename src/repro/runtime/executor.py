"""The per-solve runtime driver the kernels thread through their loops.

:class:`SolveRuntime` bundles the three real-time concerns — budget
checks, periodic checkpoint writes, and observability — behind two calls
per round boundary, and :func:`SolveRuntime.create` returns ``None``
when no real-time option is set, so the default path costs the kernels a
single ``if runtime is not None`` per round (pinned by the perf gates).

The kernel integration pattern::

    runtime = SolveRuntime.create(
        budget=budget, checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path, recorder=rec,
    )
    checkpoint = load_resume(resume_from, instance, solver_name, rec)
    ...restore assignment/frontier/RNG/state from ``checkpoint``...
    while not converged:
        if runtime is not None and runtime.check(round_index + 1):
            break                      # anytime: keep the current assignment
        ...run one round...
        if runtime is not None:
            runtime.note_round(round_index, make_checkpoint)
    if runtime is not None:
        runtime.finalize(make_checkpoint)

where ``make_checkpoint`` is a zero-argument closure building the
solver's :class:`~repro.runtime.checkpoint.SolveCheckpoint`.  It is only
invoked when a write is actually due, so uninterrupted solves without
``checkpoint_every`` never pay for snapshot construction.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget, SolveInterrupted
from repro.runtime.checkpoint import SolveCheckpoint


class SolveRuntime:
    """Budget + checkpoint driver for one solve (or one composite solve).

    Created once per kernel invocation via :meth:`create`; ``minpart``
    passes one instance through all of its cancel-and-resolve stages so
    the deadline spans the whole composition.
    """

    @classmethod
    def create(
        cls,
        budget: Optional[RuntimeBudget] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        recorder: Optional[Recorder] = None,
    ) -> Optional["SolveRuntime"]:
        """Build a runtime, or ``None`` when no real-time option is set."""
        if budget is None and checkpoint_every is None and checkpoint_path is None:
            return None
        return cls(
            budget=budget,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            recorder=recorder,
        )

    def __init__(
        self,
        budget: Optional[RuntimeBudget] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every requires checkpoint_path"
                )
        self.budget = budget
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.rec = active_recorder(recorder)
        self.interrupt: Optional[SolveInterrupted] = None
        if budget is not None:
            budget.start()

    # -- budget ---------------------------------------------------------
    @property
    def interrupted(self) -> bool:
        return self.interrupt is not None

    @property
    def stop_reason(self) -> Optional[str]:
        """``"deadline"``/``"cancelled"`` once tripped, else ``None``."""
        return self.interrupt.reason if self.interrupt is not None else None

    def check(self, next_round_index: int) -> bool:
        """Round-boundary budget check; True means "stop before this round".

        Once tripped the runtime stays tripped (``minpart`` relies on
        this to unwind its outer stage loop).
        """
        if self.interrupt is not None:
            return True
        if self.budget is None:
            return False
        interrupt = self.budget.check(next_round_index)
        if interrupt is None:
            return False
        self.interrupt = interrupt
        if interrupt.reason == "cancelled":
            self.rec.count("solver.cancellations")
        else:
            self.rec.count("solver.deadline_hits")
        self.rec.event(
            "solver.interrupted",
            reason=interrupt.reason,
            round_index=interrupt.round_index,
            elapsed_seconds=interrupt.elapsed_seconds,
        )
        return True

    # -- checkpoints ----------------------------------------------------
    def note_round(
        self,
        round_index: int,
        make_checkpoint: Callable[[], SolveCheckpoint],
    ) -> None:
        """Periodic checkpointing: write every ``checkpoint_every`` rounds."""
        if (
            self.checkpoint_every is not None
            and round_index >= 1
            and round_index % self.checkpoint_every == 0
        ):
            self.save(make_checkpoint())

    def finalize(
        self, make_checkpoint: Callable[[], SolveCheckpoint]
    ) -> None:
        """Post-loop hook: persist the interrupt point for later resume.

        Writes only when the solve was interrupted *and* a checkpoint
        path is configured — converged solves need no resume point, and
        periodic snapshots (``note_round``) already cover crash
        recovery for long uninterrupted solves.
        """
        if self.interrupt is not None and self.checkpoint_path is not None:
            self.save(make_checkpoint())

    def save(self, checkpoint: SolveCheckpoint) -> None:
        """Write one checkpoint to ``checkpoint_path``."""
        if self.checkpoint_path is None:
            raise ConfigurationError(
                "cannot save a checkpoint without checkpoint_path"
            )
        from repro.core.serialize import save_checkpoint

        with self.rec.span("runtime.checkpoint_write"):
            save_checkpoint(checkpoint, self.checkpoint_path)
        self.rec.count("solver.checkpoint_writes")
        self.rec.event(
            "solver.checkpoint_written",
            path=self.checkpoint_path,
            round_index=checkpoint.round_index,
        )


def load_resume(
    resume_from: Union[None, str, SolveCheckpoint],
    instance,
    solver: str,
    recorder: Optional[Recorder] = None,
) -> Optional[SolveCheckpoint]:
    """Resolve a kernel's ``resume_from`` argument into a checkpoint.

    Accepts a path (loaded via :func:`repro.core.serialize.load_checkpoint`)
    or an in-memory :class:`SolveCheckpoint`; either way the checkpoint is
    validated against the instance and the solver variant before the
    kernel touches it.  Returns ``None`` when ``resume_from`` is ``None``.
    """
    if resume_from is None:
        return None
    rec = active_recorder(recorder)
    if isinstance(resume_from, SolveCheckpoint):
        checkpoint = resume_from
    else:
        from repro.core.serialize import load_checkpoint

        checkpoint = load_checkpoint(resume_from)
    checkpoint.validate_for(instance, solver)
    rec.count("solver.checkpoint_restores")
    rec.event(
        "solver.checkpoint_restored",
        solver=solver,
        round_index=checkpoint.round_index,
    )
    return checkpoint
