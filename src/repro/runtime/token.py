"""Cooperative cancellation tokens.

A solve never kills itself mid-round: the caller hands a
:class:`CancelToken` to the solver (``SolveOptions(cancel_token=...)`` or
``budget=RuntimeBudget(token=...)``) and the round loop polls
``token.cancelled`` at every round boundary.  Any thread may call
:meth:`CancelToken.cancel` — the flag is a ``threading.Event``, so the
pattern is safe for "serve the query on a worker, cancel from the request
handler" deployments.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    ``cancel()`` may be called from any thread, any number of times;
    the solve observes it at its next round boundary and returns its
    best-so-far assignment with ``stop_reason="cancelled"``.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


class CountdownToken(CancelToken):
    """A token that cancels itself after a fixed number of polls.

    The deterministic interrupt source for tests: budgets poll the token
    exactly once per round boundary, so ``CountdownToken(r)`` lets
    exactly ``r`` rounds run and cancels before round ``r + 1`` —
    no wall clock involved.  ``CountdownToken(0)`` cancels at the first
    boundary (before round 1), returning the round-0 initialization
    assignment.
    """

    def __init__(self, polls: int) -> None:
        super().__init__()
        if polls < 0:
            raise ConfigurationError(
                f"polls must be non-negative, got {polls}"
            )
        self._remaining = int(polls)
        self._lock = threading.Lock()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        with self._lock:
            if self._remaining <= 0:
                self._event.set()
                return True
            self._remaining -= 1
        return False
