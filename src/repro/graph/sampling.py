"""Graph down-sampling, including Forest Fire sampling.

Section 6 of the paper reduces Gowalla through Forest Fire sampling
[Leskovec & Faloutsos, KDD'06] to sizes the UML baselines can handle
(|V| up to 300).  :func:`forest_fire_sample` implements the classic
geometric-burning variant; uniform node and edge samplers are included
for completeness and for tests.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Set

from repro.errors import GraphError
from repro.graph.social_graph import NodeId, SocialGraph


def forest_fire_sample(
    graph: SocialGraph,
    target_nodes: int,
    forward_probability: float = 0.7,
    rng: Optional[random.Random] = None,
) -> SocialGraph:
    """Forest Fire sample with ``target_nodes`` nodes.

    Starting from a random ambassador, the fire burns a geometrically
    distributed number of unburned neighbors (mean ``p / (1 - p)`` with
    ``p = forward_probability``), recursing breadth-first.  When the fire
    dies before reaching the target size, a fresh ambassador is drawn.
    The returned graph is the induced subgraph on the burned nodes, which
    preserves the heavy-tailed degree shape of the original.
    """
    if target_nodes <= 0:
        raise GraphError("target_nodes must be positive")
    if target_nodes > graph.num_nodes:
        raise GraphError(
            f"target_nodes={target_nodes} exceeds graph size {graph.num_nodes}"
        )
    if not 0.0 < forward_probability < 1.0:
        raise GraphError("forward_probability must be in (0, 1)")
    rng = rng or random.Random()

    nodes = graph.nodes()
    burned: Set[NodeId] = set()
    burned_order: List[NodeId] = []

    while len(burned) < target_nodes:
        ambassador = nodes[rng.randrange(len(nodes))]
        if ambassador in burned:
            continue
        _burn(graph, ambassador, burned, burned_order, target_nodes,
              forward_probability, rng)

    return graph.subgraph(burned_order)


def _burn(
    graph: SocialGraph,
    ambassador: NodeId,
    burned: Set[NodeId],
    burned_order: List[NodeId],
    target_nodes: int,
    p_forward: float,
    rng: random.Random,
) -> None:
    """Burn outward from ``ambassador`` until the fire dies or target hit."""
    burned.add(ambassador)
    burned_order.append(ambassador)
    frontier = deque([ambassador])
    while frontier and len(burned) < target_nodes:
        node = frontier.popleft()
        unburned = [nbr for nbr in graph.neighbors(node) if nbr not in burned]
        if not unburned:
            continue
        # Geometric number of links to burn, mean p/(1-p).
        num_links = _geometric(p_forward, rng)
        rng.shuffle(unburned)
        for neighbor in unburned[:num_links]:
            if len(burned) >= target_nodes:
                break
            burned.add(neighbor)
            burned_order.append(neighbor)
            frontier.append(neighbor)


def _geometric(p: float, rng: random.Random) -> int:
    """Number of failures before first success for Bernoulli(1-p).

    Equivalently a geometric variate with mean ``p / (1 - p)``, the
    burning fan-out used by Forest Fire.
    """
    count = 0
    while rng.random() < p:
        count += 1
    return count


def random_node_sample(
    graph: SocialGraph, target_nodes: int, rng: Optional[random.Random] = None
) -> SocialGraph:
    """Induced subgraph on ``target_nodes`` uniformly sampled nodes."""
    if target_nodes <= 0:
        raise GraphError("target_nodes must be positive")
    if target_nodes > graph.num_nodes:
        raise GraphError(
            f"target_nodes={target_nodes} exceeds graph size {graph.num_nodes}"
        )
    rng = rng or random.Random()
    chosen = rng.sample(graph.nodes(), target_nodes)
    return graph.subgraph(chosen)


def random_edge_sample(
    graph: SocialGraph, target_edges: int, rng: Optional[random.Random] = None
) -> SocialGraph:
    """Subgraph made of ``target_edges`` uniformly sampled edges."""
    if target_edges <= 0:
        raise GraphError("target_edges must be positive")
    all_edges = list(graph.edges())
    if target_edges > len(all_edges):
        raise GraphError(
            f"target_edges={target_edges} exceeds edge count {len(all_edges)}"
        )
    rng = rng or random.Random()
    chosen = rng.sample(all_edges, target_edges)
    return SocialGraph.from_edges(chosen)
