"""Graph coloring for the independent-strategies optimization (Section 4.2).

RMGP_is partitions the players "in N_g groups such that no two users in the
same group share an edge"; a proper vertex coloring produces exactly such
groups.  The paper applies a polynomial greedy algorithm off-line that uses
at most ``d_max + 1`` colors.  We provide three classical greedy orderings:

* :func:`greedy_coloring` — first-fit in a caller-supplied (or insertion)
  order; the paper's baseline choice.
* :func:`welsh_powell_coloring` — first-fit in decreasing degree order,
  which tends to use fewer colors on social graphs.
* :func:`dsatur_coloring` — Brélaz's saturation-degree heuristic, the
  strongest of the three (exact on bipartite graphs).

All three guarantee at most ``d_max + 1`` colors.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.social_graph import NodeId, SocialGraph

Coloring = Dict[NodeId, int]


def greedy_coloring(
    graph: SocialGraph, order: Optional[Sequence[NodeId]] = None
) -> Coloring:
    """First-fit coloring in ``order`` (default: node insertion order).

    Each node receives the smallest color not used by an already-colored
    neighbor, so at most ``d_max + 1`` colors are produced.
    """
    if order is None:
        order = graph.nodes()
    else:
        order = list(order)
        if set(order) != set(graph.nodes()) or len(order) != graph.num_nodes:
            raise GraphError("order must be a permutation of the graph's nodes")
    colors: Coloring = {}
    for node in order:
        colors[node] = _first_free_color(graph, colors, node)
    return colors


def welsh_powell_coloring(graph: SocialGraph) -> Coloring:
    """First-fit coloring in decreasing-degree order (Welsh–Powell)."""
    return greedy_coloring(graph, graph.degree_ordered_nodes(descending=True))


def dsatur_coloring(graph: SocialGraph) -> Coloring:
    """Brélaz's DSATUR coloring.

    Repeatedly colors the uncolored node with the largest *saturation
    degree* (number of distinct neighbor colors), breaking ties by plain
    degree.  Uses a lazy-deletion heap for ``O((|V| + |E|) log |V|)`` time.
    """
    colors: Coloring = {}
    saturation: Dict[NodeId, set] = {node: set() for node in graph}
    # Heap entries: (-saturation, -degree, sequence, node).  The sequence
    # number makes heterogeneous node ids comparable and keeps ties stable.
    sequence = {node: i for i, node in enumerate(graph)}
    heap: List[tuple] = [
        (0, -graph.degree(node), sequence[node], node) for node in graph
    ]
    heapq.heapify(heap)
    while heap:
        neg_sat, neg_deg, _, node = heapq.heappop(heap)
        if node in colors:
            continue
        if -neg_sat != len(saturation[node]):
            # Stale entry; push the refreshed priority back.
            heapq.heappush(
                heap, (-len(saturation[node]), neg_deg, sequence[node], node)
            )
            continue
        colors[node] = _first_free_color(graph, colors, node)
        for neighbor in graph.neighbors(node):
            if neighbor in colors:
                continue
            if colors[node] not in saturation[neighbor]:
                saturation[neighbor].add(colors[node])
                heapq.heappush(
                    heap,
                    (
                        -len(saturation[neighbor]),
                        -graph.degree(neighbor),
                        sequence[neighbor],
                        neighbor,
                    ),
                )
    return colors


def color_groups(coloring: Coloring) -> List[List[NodeId]]:
    """Convert a coloring into the paper's groups ``G_1 .. G_Ng``.

    Group ``i`` holds every node with color ``i``; within a group nodes
    keep their original relative order.
    """
    if not coloring:
        return []
    num_colors = max(coloring.values()) + 1
    groups: List[List[NodeId]] = [[] for _ in range(num_colors)]
    for node, color in coloring.items():
        groups[color].append(node)
    return groups


def is_proper_coloring(graph: SocialGraph, coloring: Coloring) -> bool:
    """True when every node is colored and no edge is monochromatic."""
    if set(coloring) != set(graph.nodes()):
        return False
    return all(coloring[u] != coloring[v] for u, v, _ in graph.edges())


def num_colors(coloring: Coloring) -> int:
    """Number of distinct colors used."""
    return len(set(coloring.values()))


def _first_free_color(graph: SocialGraph, colors: Coloring, node: NodeId) -> int:
    """Smallest non-negative color unused among colored neighbors."""
    taken = {colors[nbr] for nbr in graph.neighbors(node) if nbr in colors}
    color = 0
    while color in taken:
        color += 1
    return color
