"""Weighted social graph stored in main-memory hash tables.

The paper (Section 6) stores the social network in "two main-memory hash
tables where the user IDs are used as keys.  In the social hash table, for
each user there is an adjacency list of pairs (friend id, edge weight)."
:class:`SocialGraph` reproduces that layout: a dict keyed by user id whose
values are dicts mapping friend id to edge weight.  The companion location
table lives in :mod:`repro.apps.lagp`.

The graph is undirected: an edge ``(u, v, w)`` is visible from both
endpoints.  Directed inputs (e.g. Twitter "follow" edges, mentioned in the
paper's introduction) are supported through
:meth:`SocialGraph.from_directed_edges`, which symmetrizes them, since the
RMGP game only ever consumes the *neighborhood* ``adj(v)`` of a player.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError

NodeId = Hashable
Edge = Tuple[NodeId, NodeId, float]


class SocialGraph:
    """Undirected, weighted social graph over hashable user ids.

    Parameters
    ----------
    nodes:
        Optional iterable of node ids to pre-insert (isolated until edges
        are added).

    Notes
    -----
    Self-loops are rejected: a user cannot be his own friend, and a
    self-loop would distort the social cost of Equation 3.  Edge weights
    must be positive; the paper uses weights to denote "the strength of
    social connections", and a zero/negative strength edge is equivalent
    to no edge at all (and would break the potential-game analysis).
    """

    def __init__(self, nodes: Optional[Iterable[NodeId]] = None) -> None:
        self._adj: Dict[NodeId, Dict[NodeId, float]] = {}
        self._num_edges = 0
        self._total_weight = 0.0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId] | Edge],
        nodes: Optional[Iterable[NodeId]] = None,
        default_weight: float = 1.0,
    ) -> "SocialGraph":
        """Build a graph from ``(u, v)`` or ``(u, v, w)`` tuples.

        Unweighted pairs receive ``default_weight`` (the paper's datasets
        use unit weights).  Duplicate edges keep the *last* weight seen.
        """
        graph = cls(nodes)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                w = default_weight
            else:
                u, v, w = edge  # type: ignore[misc]
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_directed_edges(
        cls,
        edges: Iterable[Edge],
        combine: str = "sum",
    ) -> "SocialGraph":
        """Symmetrize a directed edge list into an undirected graph.

        ``combine`` decides the undirected weight when both ``u -> v`` and
        ``v -> u`` exist: ``"sum"`` adds them, ``"max"``/``"min"`` keep an
        extremum, and ``"mean"`` averages.  A one-directional edge simply
        keeps its weight.
        """
        combiners: Dict[str, Callable[[float, float], float]] = {
            "sum": lambda a, b: a + b,
            "max": max,
            "min": min,
            "mean": lambda a, b: (a + b) / 2.0,
        }
        if combine not in combiners:
            raise GraphError(f"unknown combine mode: {combine!r}")
        merge = combiners[combine]

        seen: Dict[Tuple[NodeId, NodeId], float] = {}
        for u, v, w in edges:
            if u == v:
                raise GraphError(f"self-loop on node {u!r}")
            key = (u, v) if _orderable_lt(u, v) else (v, u)
            seen[key] = merge(seen[key], w) if key in seen else w

        graph = cls()
        for (u, v), w in seen.items():
            graph.add_edge(u, v, w)
        return graph

    def copy(self) -> "SocialGraph":
        """Return a deep copy (adjacency dicts are duplicated)."""
        clone = SocialGraph()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Insert an isolated node; a no-op if it already exists."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Insert (or overwrite) the undirected edge ``(u, v)``.

        Endpoints are created on demand.  Overwriting updates the stored
        total weight so that :meth:`total_edge_weight` stays exact.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r}")
        if weight <= 0:
            raise GraphError(f"edge ({u!r}, {v!r}) has non-positive weight {weight}")
        self.add_node(u)
        self.add_node(v)
        previous = self._adj[u].get(v)
        if previous is None:
            self._num_edges += 1
        else:
            self._total_weight -= previous
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._total_weight += weight

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Delete the edge ``(u, v)``; raises ``GraphError`` if absent."""
        try:
            weight = self._adj[u].pop(v)
            del self._adj[v][u]
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist") from exc
        self._num_edges -= 1
        self._total_weight -= weight

    def remove_node(self, node: NodeId) -> None:
        """Delete a node and all its incident edges."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} does not exist")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of users, |V|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected friendships, |E|."""
        return self._num_edges

    def nodes(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge exactly once as ``(u, v, w)``."""
        visited = set()
        for u, nbrs in self._adj.items():
            visited.add(u)
            for v, w in nbrs.items():
                if v not in visited:
                    yield (u, v, w)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when the undirected edge ``(u, v)`` exists."""
        return v in self._adj.get(u, ())

    def neighbors(self, node: NodeId) -> Dict[NodeId, float]:
        """Adjacency list of ``node``: a dict ``friend id -> weight``.

        This is the paper's ``adj(v)``.  The returned mapping is the live
        internal dict; callers must not mutate it.
        """
        try:
            return self._adj[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} does not exist") from exc

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of edge ``(u, v)``; raises ``GraphError`` if absent."""
        try:
            return self._adj[u][v]
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist") from exc

    def degree(self, node: NodeId) -> int:
        """Number of friends of ``node``."""
        return len(self.neighbors(node))

    def weighted_degree(self, node: NodeId) -> float:
        """Sum of incident edge weights of ``node`` (2·W_v in Section 4.1)."""
        return sum(self.neighbors(node).values())

    def total_edge_weight(self) -> float:
        """Sum of all edge weights, each edge counted once."""
        return self._total_weight

    def average_degree(self) -> float:
        """``deg_avg = 2·|E| / |V|`` (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def average_edge_weight(self) -> float:
        """``w_avg``: mean weight over edges (0.0 when there are none)."""
        if self._num_edges == 0:
            return 0.0
        return self._total_weight / self._num_edges

    def max_degree(self) -> int:
        """Largest degree, ``d_max`` (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[NodeId]) -> "SocialGraph":
        """Induced subgraph on ``nodes``.

        Used for area-of-interest queries where "only the users who
        recently checked-in that area, and the corresponding induced
        sub-graph, are relevant" (Section 1).
        """
        keep = set(nodes)
        missing = keep - self._adj.keys()
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))[:5]}")
        sub = SocialGraph(keep)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v, w)
        return sub

    def relabeled(self) -> Tuple["SocialGraph", Dict[NodeId, int]]:
        """Return a copy with nodes renamed ``0..n-1`` plus the id map."""
        mapping = {node: index for index, node in enumerate(self._adj)}
        clone = SocialGraph(range(len(mapping)))
        for u, v, w in self.edges():
            clone.add_edge(mapping[u], mapping[v], w)
        return clone, mapping

    def degree_ordered_nodes(self, descending: bool = True) -> List[NodeId]:
        """Nodes sorted by degree (ties broken by insertion order).

        Descending order implements the "community leaders first"
        heuristic of Section 3.1 (the ``+o`` variant of Section 6.3).
        """
        order = list(self._adj)
        ranks = {node: i for i, node in enumerate(order)}
        return sorted(order, key=lambda n: (-len(self._adj[n]) if descending else len(self._adj[n]), ranks[n]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocialGraph(|V|={self.num_nodes}, |E|={self.num_edges})"


def _orderable_lt(a: NodeId, b: NodeId) -> bool:
    """Stable "less-than" for possibly heterogeneous node ids."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return str(a) < str(b)
