"""Social-graph substrate: storage, traversal, coloring, sampling, stats."""

from repro.graph.social_graph import SocialGraph
from repro.graph.communities import (
    agreement,
    community_sizes,
    label_propagation,
)
from repro.graph.coloring import (
    color_groups,
    dsatur_coloring,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
    welsh_powell_coloring,
)
from repro.graph.sampling import (
    forest_fire_sample,
    random_edge_sample,
    random_node_sample,
)
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    geometric_social,
    planted_partition,
    uniform_weight_sampler,
    watts_strogatz,
)
from repro.graph.metrics import (
    GraphStats,
    average_clustering,
    cut_weight,
    degree_assortativity,
    degree_histogram,
    local_clustering,
    graph_stats,
    internal_weight,
    modularity,
    partition_balance,
    partition_sizes,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    connected_components,
    dfs_order,
    induced_neighborhood,
    is_connected,
    largest_component,
    shortest_path,
)
from repro.graph.io import (
    read_checkins,
    read_edge_list,
    write_checkins,
    write_edge_list,
)

__all__ = [
    "SocialGraph",
    "GraphStats",
    "agreement",
    "average_clustering",
    "barabasi_albert",
    "community_sizes",
    "degree_assortativity",
    "label_propagation",
    "local_clustering",
    "bfs_distances",
    "bfs_order",
    "color_groups",
    "connected_components",
    "cut_weight",
    "degree_histogram",
    "dfs_order",
    "dsatur_coloring",
    "erdos_renyi",
    "forest_fire_sample",
    "geometric_social",
    "graph_stats",
    "greedy_coloring",
    "induced_neighborhood",
    "internal_weight",
    "is_connected",
    "is_proper_coloring",
    "largest_component",
    "modularity",
    "num_colors",
    "partition_balance",
    "partition_sizes",
    "planted_partition",
    "random_edge_sample",
    "random_node_sample",
    "read_checkins",
    "read_edge_list",
    "shortest_path",
    "uniform_weight_sampler",
    "watts_strogatz",
    "welsh_powell_coloring",
    "write_checkins",
    "write_edge_list",
]
