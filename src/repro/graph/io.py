"""Plain-text readers and writers for graphs and check-in tables.

The on-disk formats mirror the SNAP-style files the paper's datasets ship
in: whitespace-separated edge lists (``u v [w]``) and check-in tables
(``user x y``).  Lines starting with ``#`` are comments.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.errors import DataError
from repro.graph.social_graph import SocialGraph


def read_edge_list(path: str, default_weight: float = 1.0) -> SocialGraph:
    """Load a whitespace-separated ``u v [w]`` edge list.

    Node ids are parsed as integers.  Duplicate edges keep the last
    weight; self-loops raise :class:`~repro.errors.DataError`.
    """
    graph = SocialGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise DataError(f"{path}:{line_number}: expected 'u v [w]', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else default_weight
            except ValueError as exc:
                raise DataError(f"{path}:{line_number}: unparsable edge {line!r}") from exc
            if u == v:
                raise DataError(f"{path}:{line_number}: self-loop on {u}")
            graph.add_edge(u, v, w)
    return graph


def write_edge_list(graph: SocialGraph, path: str, write_weights: bool = True) -> None:
    """Write the graph as a ``u v [w]`` edge list (one edge per line)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# RMGP social graph |V|={graph.num_nodes} |E|={graph.num_edges}\n")
        for u, v, w in graph.edges():
            if write_weights:
                handle.write(f"{u} {v} {w:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")


def read_checkins(path: str) -> Dict[int, Tuple[float, float]]:
    """Load a ``user x y`` check-in table (latest check-in per user)."""
    locations: Dict[int, Tuple[float, float]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise DataError(f"{path}:{line_number}: expected 'user x y', got {line!r}")
            try:
                user = int(parts[0])
                x, y = float(parts[1]), float(parts[2])
            except ValueError as exc:
                raise DataError(f"{path}:{line_number}: unparsable check-in {line!r}") from exc
            locations[user] = (x, y)
    return locations


def write_checkins(locations: Dict[int, Tuple[float, float]], path: str) -> None:
    """Write a ``user x y`` check-in table."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# RMGP check-ins users={len(locations)}\n")
        for user in sorted(locations):
            x, y = locations[user]
            handle.write(f"{user} {x:.10g} {y:.10g}\n")
