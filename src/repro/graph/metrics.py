"""Descriptive statistics and partition diagnostics for social graphs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping

from repro.errors import GraphError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a social graph.

    ``deg_avg`` and ``w_avg`` are the quantities the paper's normalization
    constants depend on (Section 3.3); the rest characterize the degree
    distribution for dataset-matching purposes.
    """

    num_nodes: int
    num_edges: int
    deg_avg: float
    deg_max: int
    deg_min: int
    w_avg: float
    w_total: float
    degree_stddev: float

    def __str__(self) -> str:
        return (
            f"|V|={self.num_nodes} |E|={self.num_edges} "
            f"deg_avg={self.deg_avg:.2f} deg_max={self.deg_max} "
            f"w_avg={self.w_avg:.3f}"
        )


def graph_stats(graph: SocialGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees = [graph.degree(node) for node in graph]
    if degrees:
        deg_avg = sum(degrees) / len(degrees)
        variance = sum((d - deg_avg) ** 2 for d in degrees) / len(degrees)
        deg_max, deg_min = max(degrees), min(degrees)
    else:
        deg_avg = variance = 0.0
        deg_max = deg_min = 0
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        deg_avg=deg_avg,
        deg_max=deg_max,
        deg_min=deg_min,
        w_avg=graph.average_edge_weight(),
        w_total=graph.total_edge_weight(),
        degree_stddev=math.sqrt(variance),
    )


def degree_histogram(graph: SocialGraph) -> Dict[int, int]:
    """Map each occurring degree to its node count."""
    histogram: Dict[int, int] = {}
    for node in graph:
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def cut_weight(graph: SocialGraph, labels: Mapping[NodeId, Hashable]) -> float:
    """Total weight of edges whose endpoints carry different labels.

    This is the paper's *social cost* term (second sum of Equation 1)
    for the assignment ``labels``.
    """
    missing = [node for node in graph if node not in labels]
    if missing:
        raise GraphError(f"unlabeled nodes: {sorted(map(repr, missing))[:5]}")
    return sum(w for u, v, w in graph.edges() if labels[u] != labels[v])


def internal_weight(graph: SocialGraph, labels: Mapping[NodeId, Hashable]) -> float:
    """Total weight of edges kept inside a label class (complement of cut)."""
    return graph.total_edge_weight() - cut_weight(graph, labels)


def partition_sizes(labels: Mapping[NodeId, Hashable]) -> Dict[Hashable, int]:
    """Number of nodes per label."""
    sizes: Dict[Hashable, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def partition_balance(labels: Mapping[NodeId, Hashable], num_classes: int) -> float:
    """Max part size divided by ideal size ``n / k`` (1.0 = perfectly even).

    Standard imbalance metric for k-way partitioners; used to sanity-check
    our METIS replacement.
    """
    if num_classes <= 0:
        raise GraphError("num_classes must be positive")
    if not labels:
        return 0.0
    sizes = partition_sizes(labels)
    ideal = len(labels) / num_classes
    return max(sizes.values()) / ideal


def local_clustering(graph: SocialGraph, node: NodeId) -> float:
    """Local clustering coefficient of ``node``.

    The fraction of a user's friend pairs who are themselves friends —
    high in real check-in networks, one of the properties the synthetic
    generators are checked against.
    """
    neighbors = list(graph.neighbors(node))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbors):
        u_neighbors = graph.neighbors(u)
        for v in neighbors[i + 1 :]:
            if v in u_neighbors:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: SocialGraph) -> float:
    """Mean local clustering coefficient over all nodes."""
    if graph.num_nodes == 0:
        return 0.0
    return sum(local_clustering(graph, node) for node in graph) / graph.num_nodes


def degree_assortativity(graph: SocialGraph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    Positive in most social networks (hubs befriend hubs).  Returns 0.0
    when undefined (no edges or zero variance).
    """
    xs: List[float] = []
    ys: List[float] = []
    for u, v, _ in graph.edges():
        du, dv = float(graph.degree(u)), float(graph.degree(v))
        # Each undirected edge contributes both orientations, making the
        # correlation symmetric.
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def modularity(graph: SocialGraph, labels: Mapping[NodeId, Hashable]) -> float:
    """Newman weighted modularity of the labeling.

    Not used by the RMGP objective itself, but a useful diagnostic to
    check that social pull indeed groups communities together.
    """
    two_m = 2.0 * graph.total_edge_weight()
    if two_m == 0:
        return 0.0
    strength: Dict[NodeId, float] = {
        node: graph.weighted_degree(node) for node in graph
    }
    # Q = internal/m - sum_c (K_c / 2m)^2 for weighted graphs.
    expectation = 0.0
    by_label: Dict[Hashable, List[NodeId]] = {}
    for node in graph:
        by_label.setdefault(labels[node], []).append(node)
    for members in by_label.values():
        total = sum(strength[node] for node in members)
        expectation += total * total
    internal = internal_weight(graph, labels)
    return internal / (two_m / 2.0) - expectation / (two_m * two_m)
