"""Graph traversal primitives used by samplers, partitioners and tests."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import GraphError
from repro.graph.social_graph import NodeId, SocialGraph


def bfs_order(graph: SocialGraph, source: NodeId) -> List[NodeId]:
    """Breadth-first visit order starting at ``source``."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    seen: Set[NodeId] = {source}
    order: List[NodeId] = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order


def bfs_distances(graph: SocialGraph, source: NodeId) -> Dict[NodeId, int]:
    """Unweighted hop distance from ``source`` to every reachable node."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    dist: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def dfs_order(graph: SocialGraph, source: NodeId) -> List[NodeId]:
    """Iterative depth-first visit order starting at ``source``."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    seen: Set[NodeId] = set()
    order: List[NodeId] = []
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reverse for a stable left-to-right expansion order.
        stack.extend(reversed(list(graph.neighbors(node))))
    return order


def connected_components(graph: SocialGraph) -> List[List[NodeId]]:
    """All connected components, each as a list of nodes.

    Components are returned in order of their first node's insertion, and
    each component's nodes are in BFS order from that first node.
    """
    seen: Set[NodeId] = set()
    components: List[List[NodeId]] = []
    for node in graph:
        if node in seen:
            continue
        component = bfs_order(graph, node)
        seen.update(component)
        components.append(component)
    return components


def largest_component(graph: SocialGraph) -> SocialGraph:
    """Induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return SocialGraph()
    biggest = max(components, key=len)
    return graph.subgraph(biggest)


def is_connected(graph: SocialGraph) -> bool:
    """True when the graph has at most one connected component."""
    return len(connected_components(graph)) <= 1


def shortest_path(
    graph: SocialGraph, source: NodeId, target: NodeId
) -> Optional[List[NodeId]]:
    """Unweighted shortest path from ``source`` to ``target``.

    Returns ``None`` when ``target`` is unreachable.
    """
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    if target not in graph:
        raise GraphError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    parent: Dict[NodeId, NodeId] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parent:
                continue
            parent[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def induced_neighborhood(
    graph: SocialGraph, seeds: Iterable[NodeId], hops: int
) -> SocialGraph:
    """Induced subgraph on every node within ``hops`` of any seed."""
    if hops < 0:
        raise GraphError("hops must be non-negative")
    frontier = set(seeds)
    missing = frontier - set(graph.nodes())
    if missing:
        raise GraphError(f"seed nodes not in graph: {sorted(map(repr, missing))[:5]}")
    keep = set(frontier)
    for _ in range(hops):
        next_frontier: Set[NodeId] = set()
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in keep:
                    keep.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    return graph.subgraph(keep)
