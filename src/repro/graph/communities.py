"""Label-propagation community detection.

RMGP's best-response step *is* a cost-biased label propagation: with
``α → 0`` a player simply adopts the class where most of his friends'
edge weight sits.  This module implements the classic unconstrained
algorithm (Raghavan et al.) both as a connectivity-only diagnostic for
the dataset generators and as the bridge the reproduction bands call out
("resembles label propagation"): ``tests/graph/test_communities.py``
checks that low-α RMGP agrees with weighted label propagation on planted
community structure.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import GraphError
from repro.graph.social_graph import NodeId, SocialGraph


def label_propagation(
    graph: SocialGraph,
    max_sweeps: int = 100,
    rng: Optional[random.Random] = None,
    initial_labels: Optional[Dict[NodeId, int]] = None,
) -> Dict[NodeId, int]:
    """Weighted asynchronous label propagation.

    Every node starts in its own community (or ``initial_labels``); each
    sweep visits nodes in random order and adopts the label with maximum
    incident edge weight (ties keep the current label when it is among
    the maximizers, otherwise break uniformly at random).  Stops when a
    sweep changes nothing.
    """
    if max_sweeps <= 0:
        raise GraphError("max_sweeps must be positive")
    rng = rng or random.Random()
    if initial_labels is None:
        labels = {node: index for index, node in enumerate(graph)}
    else:
        missing = [n for n in graph if n not in initial_labels]
        if missing:
            raise GraphError(
                f"initial labels missing nodes: {sorted(map(repr, missing))[:5]}"
            )
        labels = dict(initial_labels)

    nodes = graph.nodes()
    for _ in range(max_sweeps):
        rng.shuffle(nodes)
        changed = 0
        for node in nodes:
            best = _dominant_label(graph, labels, node, rng)
            if best is not None and best != labels[node]:
                labels[node] = best
                changed += 1
        if changed == 0:
            break
    return labels


def _dominant_label(
    graph: SocialGraph,
    labels: Dict[NodeId, int],
    node: NodeId,
    rng: random.Random,
) -> Optional[int]:
    """Label holding the maximum incident weight around ``node``."""
    neighbors = graph.neighbors(node)
    if not neighbors:
        return None
    weight_by_label: Dict[int, float] = {}
    for friend, weight in neighbors.items():
        label = labels[friend]
        weight_by_label[label] = weight_by_label.get(label, 0.0) + weight
    top = max(weight_by_label.values())
    winners = [l for l, w in weight_by_label.items() if w >= top - 1e-12]
    if labels[node] in winners:
        return labels[node]
    return winners[rng.randrange(len(winners))]


def community_sizes(labels: Dict[NodeId, int]) -> List[int]:
    """Community sizes, largest first."""
    counts: Dict[int, int] = {}
    for label in labels.values():
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)


def agreement(
    labels_a: Dict[NodeId, int], labels_b: Dict[NodeId, int]
) -> float:
    """Pairwise co-membership agreement between two labelings (0..1).

    The fraction of node pairs on which the two labelings agree about
    "same community or not" — a label-permutation-invariant similarity
    (Rand index).
    """
    nodes = sorted(labels_a, key=repr)
    if set(labels_a) != set(labels_b):
        raise GraphError("labelings cover different node sets")
    if len(nodes) < 2:
        return 1.0
    same = total = 0
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            total += 1
            together_a = labels_a[u] == labels_a[v]
            together_b = labels_b[u] == labels_b[v]
            if together_a == together_b:
                same += 1
    return same / total
