"""Synthetic social-graph generators.

These supply the random substrates used throughout the tests and, via
:mod:`repro.datasets`, the statistically matched stand-ins for the paper's
Gowalla and Foursquare snapshots.  All generators are deterministic given
an explicit :class:`random.Random`.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph

WeightSampler = Callable[[random.Random], float]


def _unit_weight(_: random.Random) -> float:
    return 1.0


def erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _unit_weight,
) -> SocialGraph:
    """G(n, p) random graph with independently sampled edge weights."""
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must be in [0, 1]")
    rng = rng or random.Random()
    graph = SocialGraph(range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, weight_sampler(rng))
    return graph


def watts_strogatz(
    num_nodes: int,
    neighbors_each_side: int,
    rewire_probability: float,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _unit_weight,
) -> SocialGraph:
    """Small-world ring lattice with random rewiring (Watts–Strogatz)."""
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if neighbors_each_side < 1 or 2 * neighbors_each_side >= num_nodes:
        raise GraphError("neighbors_each_side must satisfy 1 <= k < n/2")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be in [0, 1]")
    rng = rng or random.Random()
    graph = SocialGraph(range(num_nodes))
    for u in range(num_nodes):
        for offset in range(1, neighbors_each_side + 1):
            v = (u + offset) % num_nodes
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, weight_sampler(rng))
    # Rewire each lattice edge's far endpoint with the given probability.
    for u, v, w in list(graph.edges()):
        if rng.random() >= rewire_probability:
            continue
        candidates = [
            t for t in range(num_nodes)
            if t != u and not graph.has_edge(u, t)
        ]
        if not candidates:
            continue
        graph.remove_edge(u, v)
        graph.add_edge(u, candidates[rng.randrange(len(candidates))], w)
    return graph


def barabasi_albert(
    num_nodes: int,
    edges_per_node: int,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _unit_weight,
) -> SocialGraph:
    """Preferential-attachment scale-free graph (Barabási–Albert).

    Social friendship graphs such as Gowalla exhibit heavy-tailed degree
    distributions; this generator reproduces that shape, which matters
    for the degree-ordering heuristic and the coloring-based grouping.
    """
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be >= 1")
    if num_nodes <= edges_per_node:
        raise GraphError("num_nodes must exceed edges_per_node")
    rng = rng or random.Random()
    graph = SocialGraph(range(num_nodes))
    # Seed clique over the first m+1 nodes keeps early attachment sane.
    seed = edges_per_node + 1
    repeated: List[int] = []
    for u in range(seed):
        for v in range(u + 1, seed):
            graph.add_edge(u, v, weight_sampler(rng))
            repeated.extend((u, v))
    for u in range(seed, num_nodes):
        targets: set = set()
        while len(targets) < edges_per_node:
            targets.add(repeated[rng.randrange(len(repeated))])
        for v in targets:
            graph.add_edge(u, v, weight_sampler(rng))
            repeated.extend((u, v))
    return graph


def planted_partition(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _unit_weight,
) -> Tuple[SocialGraph, List[int]]:
    """Planted-partition graph; returns ``(graph, community_of_node)``.

    Dense inside communities (probability ``p_in``) and sparse across
    them (``p_out``) — the regime where RMGP's social term visibly drags
    users away from their individually cheapest class.
    """
    if not community_sizes:
        raise GraphError("community_sizes must be non-empty")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphError("need 0 <= p_out <= p_in <= 1")
    rng = rng or random.Random()
    membership: List[int] = []
    for community, size in enumerate(community_sizes):
        if size <= 0:
            raise GraphError("community sizes must be positive")
        membership.extend([community] * size)
    n = len(membership)
    graph = SocialGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if membership[u] == membership[v] else p_out
            if rng.random() < p:
                graph.add_edge(u, v, weight_sampler(rng))
    return graph, membership


def geometric_social(
    positions: Sequence[Tuple[float, float]],
    radius: float,
    long_range_probability: float = 0.0,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _unit_weight,
) -> SocialGraph:
    """Geo-social graph: connect users within ``radius``, plus shortcuts.

    Models the geographic homophily of check-in networks: most friends
    live nearby, with a few long-range ties (``long_range_probability``
    per node).  Used by the Gowalla-like dataset generator.
    """
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = rng or random.Random()
    n = len(positions)
    graph = SocialGraph(range(n))
    # Grid-bucket neighbor search keeps this O(n * neighbors).
    cell = radius
    buckets: dict = {}
    for i, (x, y) in enumerate(positions):
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(i)
    for i, (x, y) in enumerate(positions):
        cx, cy = int(x // cell), int(y // cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for j in buckets.get((cx + dx, cy + dy), ()):
                    if j <= i:
                        continue
                    px, py = positions[j]
                    if math.hypot(x - px, y - py) <= radius:
                        graph.add_edge(i, j, weight_sampler(rng))
        if long_range_probability and rng.random() < long_range_probability:
            j = rng.randrange(n)
            if j != i and not graph.has_edge(i, j):
                graph.add_edge(i, j, weight_sampler(rng))
    return graph


def uniform_weight_sampler(low: float, high: float) -> WeightSampler:
    """Weight sampler drawing uniformly from ``[low, high]``."""
    if low <= 0 or high < low:
        raise GraphError("need 0 < low <= high")

    def sample(rng: random.Random) -> float:
        return rng.uniform(low, high)

    return sample
