"""RMGP — Real-Time Multi-Criteria Social Graph Partitioning.

A from-scratch reproduction of the SIGMOD 2015 paper "Real-Time
Multi-Criteria Social Graph Partitioning: A Game Theoretic Approach"
(Armenatzoglou, Pham, Ntranos, Papadias, Shahabi).

The package partitions a social network into a set of query-time classes
(events, advertisements, ...) so that users join classes they individually
like *and* that their friends join, by running best-response dynamics of
an exact potential game to a pure Nash equilibrium.

Quick start::

    import repro
    from repro.datasets import gowalla_like

    data = gowalla_like(num_users=2000, num_events=32, seed=7)
    instance = repro.RMGPInstance(
        data.graph, data.event_ids, data.cost_matrix, alpha=0.5
    )
    result = repro.partition(instance, solver="all", seed=7)
    print(result.summary())

or, with normalization and equilibrium certification, through the
:class:`RMGPGame` facade::

    game = RMGPGame(data.graph, data.event_ids, data.cost_matrix, alpha=0.5)
    result = game.solve(method="all", normalize_method="pessimistic", seed=7)

To profile a solve, wrap it in a recorder (``repro.obs``)::

    from repro.obs import recording, summary_tree

    with recording() as rec:
        repro.partition(instance, solver="gt", seed=7)
    print(summary_tree(rec))

Sub-packages
------------
``repro.core``
    The RMGP game: baseline and optimized solvers, normalization,
    equilibrium certificates.
``repro.graph``
    Social-graph substrate (storage, coloring, sampling, generators).
``repro.baselines``
    The paper's comparison systems: Metis+Hungarian, LP-based UML,
    greedy UML, exact ILP.
``repro.apps``
    Location-aware (LAGP) and topic-aware (TAGP) applications.
``repro.datasets``
    Gowalla-like / Foursquare-like synthetic datasets and the paper's
    running example.
``repro.distributed``
    The decentralized game (DG) and fetch-and-execute (FaE) over a
    simulated cluster.
``repro.bench``
    Workloads and reporting used by the figure-by-figure benchmarks.
``repro.runtime``
    Real-time execution layer: deadlines, cooperative cancellation and
    checkpoint/resume for every solver.
"""

from repro.api import SolveOptions, partition
from repro.core import (
    ObjectiveValue,
    PartitionResult,
    RMGPGame,
    RMGPInstance,
    is_nash_equilibrium,
    objective,
    potential,
)
from repro.graph import SocialGraph
from repro.runtime import (
    CancelToken,
    RuntimeBudget,
    SolveCheckpoint,
    SteppingClock,
)

__version__ = "1.0.0"

__all__ = [
    "CancelToken",
    "ObjectiveValue",
    "PartitionResult",
    "RMGPGame",
    "RMGPInstance",
    "RuntimeBudget",
    "SocialGraph",
    "SolveCheckpoint",
    "SolveOptions",
    "SteppingClock",
    "is_nash_equilibrium",
    "objective",
    "partition",
    "potential",
    "__version__",
]
