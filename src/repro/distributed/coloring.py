"""Distributed graph coloring (Section 5: "DG requires that the social
graph has been colored using a distributed graph coloring technique").

Classic speculative coloring: each shard colors its own users greedily
against the colors it currently knows; users at shard boundaries may then
conflict with remote neighbors, so conflict-resolution rounds follow in
which the lower-id endpoint keeps its color and the other recolors.  The
algorithm terminates because every recoloring is triggered by a strictly
ordered conflict, and the result is a proper coloring.

This runs *off-line* (the coloring is query-independent); the returned
:class:`DistributedColoringStats` reports rounds and boundary messages so
the off-line cost can be discussed, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set, Tuple

from repro.distributed.partitioner import shard_of_map
from repro.errors import ProtocolError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass
class DistributedColoringStats:
    """Off-line cost of the distributed coloring."""

    rounds: int
    conflict_messages: int
    num_colors: int


def distributed_coloring(
    graph: SocialGraph,
    shards: Sequence[Sequence[NodeId]],
    max_rounds: int = 1000,
) -> Tuple[Dict[NodeId, int], DistributedColoringStats]:
    """Color ``graph`` shard-locally with conflict-resolution rounds."""
    owner = shard_of_map(shards)
    missing = [node for node in graph if node not in owner]
    if missing:
        raise ProtocolError(f"unsharded users: {sorted(map(repr, missing))[:5]}")

    # Stable per-node priority: shard-local insertion order.
    priority = {node: index for index, node in enumerate(graph)}
    colors: Dict[NodeId, int] = {}

    # Round 1: every shard speculatively colors its own users, blind to
    # remote neighbors colored in the same round.
    for shard in shards:
        for node in shard:
            colors[node] = _smallest_free(graph, colors, node, owner, owner[node])

    rounds = 1
    conflict_messages = 0
    while True:
        conflicts: Set[NodeId] = set()
        for u, v, _ in graph.edges():
            if colors[u] == colors[v] and owner[u] != owner[v]:
                # The higher-priority endpoint keeps its color.
                loser = u if priority[u] > priority[v] else v
                conflicts.add(loser)
                conflict_messages += 1
        if not conflicts:
            break
        rounds += 1
        if rounds > max_rounds:
            raise ProtocolError("distributed coloring did not converge")
        for node in sorted(conflicts, key=priority.__getitem__):
            colors[node] = _smallest_free_full(graph, colors, node)
    return colors, DistributedColoringStats(
        rounds=rounds,
        conflict_messages=conflict_messages,
        num_colors=len(set(colors.values())),
    )


def _smallest_free(
    graph: SocialGraph,
    colors: Dict[NodeId, int],
    node: NodeId,
    owner: Dict[NodeId, int],
    shard: int,
) -> int:
    """Smallest color free among *locally visible* colored neighbors."""
    taken = {
        colors[nbr]
        for nbr in graph.neighbors(node)
        if nbr in colors and owner[nbr] == shard
    }
    color = 0
    while color in taken:
        color += 1
    return color


def _smallest_free_full(
    graph: SocialGraph, colors: Dict[NodeId, int], node: NodeId
) -> int:
    """Smallest color free among *all* colored neighbors (resolution)."""
    taken = {colors[nbr] for nbr in graph.neighbors(node) if nbr in colors}
    color = 0
    while color in taken:
        color += 1
    return color
