"""The decentralized game coordinator (DG — Figure 6, left column).

The master never touches user data: it broadcasts the query, merges the
local strategic vectors into the global one, drives per-color rounds,
redistributes strategy changes and detects termination.  All traffic
flows through a :class:`~repro.distributed.network.SimulatedNetwork`
which produces the byte/transfer-time series of Figures 13 and 14, while
slave compute time is charged as the *maximum* across slaves per phase
(they run in parallel on distinct servers).

Reliability layer: when the network is a
:class:`~repro.distributed.faults.FaultyNetwork`, every exchange runs
through a :class:`ReliableTransport` — per-link sequence numbers, ACK
tracking, bounded retries with exponential backoff + jitter on the
*simulated* clock, duplicate suppression, crash detection with
checkpoint-based recovery, and (optionally) graceful degradation that
re-shards a permanently dead slave's players onto survivors.  On a plain
:class:`SimulatedNetwork` none of this code runs and the protocol is
byte-for-byte identical to the fault-free implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.distributed import messages as msg
from repro.distributed.faults import FaultyNetwork
from repro.distributed.network import SimulatedNetwork
from repro.distributed.query import DGQuery
from repro.distributed.slave import SlaveNode
from repro.errors import ConfigurationError, ProtocolError, SlaveUnreachableError
from repro.graph.social_graph import NodeId
from repro.obs.context import SpanCollector, TraceContext
from repro.obs.recorder import Recorder, active_recorder
from repro.obs.spans import Span, SpanEvent
from repro.runtime.token import CancelToken

#: Safety valve mirroring the centralized solvers.
MAX_DG_ROUNDS = 10_000


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry budget with exponential backoff on simulated time.

    After a failed attempt ``i`` (0-based) the master waits
    ``base_timeout * backoff ** i * (1 + jitter * u)`` simulated seconds
    (``u`` drawn deterministically from the fault plan's stream) before
    retrying; after ``max_attempts`` failures the peer is declared
    unreachable.
    """

    max_attempts: int = 6
    base_timeout: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry budget needs at least one attempt")
        if self.base_timeout <= 0 or self.backoff < 1.0:
            raise ConfigurationError("timeout must be positive, backoff >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def timeout_after(self, attempt_index: int, jitter_u: float = 0.0) -> float:
        """Backoff wait after failed attempt ``attempt_index``."""
        return (
            self.base_timeout
            * self.backoff ** attempt_index
            * (1.0 + self.jitter * jitter_u)
        )


@dataclass
class ChannelState:
    """Per-link reliability bookkeeping (master <-> one slave)."""

    next_seq: int = 0
    #: Highest sequence number confirmed by the peer — M→slave messages
    #: are acked by the slave's next response; slave→M messages ack
    #: themselves on delivery.
    acked_through: int = -1
    delivered: Set[int] = field(default_factory=set)
    duplicates_suppressed: int = 0
    retries: int = 0


class ReliableTransport:
    """Drives exchanges over a :class:`FaultyNetwork` with retries.

    ``on_crash`` is told about newly activated crash events (so the
    coordinator can wipe the slave process); ``on_restart`` performs the
    recovery resync on first contact after a restart and returns the
    extra seconds it cost; ``on_dead`` handles a peer that exhausted the
    retry budget — returning True means "degraded, carry on without it",
    False (or no handler) escalates to :class:`SlaveUnreachableError`.
    """

    def __init__(
        self,
        network: FaultyNetwork,
        policy: RetryPolicy,
        on_crash: Optional[Callable[[str], None]] = None,
        on_restart: Optional[Callable[[str], float]] = None,
        on_dead: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.network = network
        self.policy = policy
        self.on_crash = on_crash
        self.on_restart = on_restart
        self.on_dead = on_dead
        self.channels: Dict[str, ChannelState] = {}
        self.dead: Set[str] = set()
        #: Sink for per-delivery ``net.deliver`` spans; set by the
        #: coordinator only while a recorder traces the run.
        self.collector: Optional[SpanCollector] = None

    def exchange(
        self, messages: Iterable[msg.Message], trace_base: float = 0.0
    ) -> float:
        """Reliable counterpart of ``parallel_exchange``.

        Messages travel concurrently (slowest chain is charged), each
        one retried independently until delivered or the budget runs
        out.  Returns the exchange's wall time on the simulated clock.
        ``trace_base`` anchors per-delivery trace spans on the shared
        simulated timeline (ignored without a collector).
        """
        net = self.network
        net.next_step()
        if self.on_crash:
            for slave_id in net.take_new_crashes():
                self.on_crash(slave_id)
        batch = net.maybe_reorder(
            [m for m in messages if net.peer_of(m) not in self.dead]
        )
        slowest = 0.0
        for message in batch:
            peer = net.peer_of(message)
            if peer in self.dead:  # died earlier in this very batch
                continue
            try:
                slowest = max(slowest, self._deliver(message, peer, trace_base))
            except SlaveUnreachableError:
                if self.on_dead is not None and self.on_dead(peer):
                    self.dead.add(peer)
                    continue
                raise
        net.advance(slowest)
        return slowest

    def _deliver(
        self, message: msg.Message, peer: str, trace_base: float = 0.0
    ) -> float:
        """Deliver one message, retrying on drops and down peers."""
        net, policy = self.network, self.policy
        channel = self.channels.setdefault(peer, ChannelState())
        message = msg.with_seq(message, channel.next_seq)
        channel.next_seq += 1
        ctx = message.trace if self.collector is not None else None
        events: List[SpanEvent] = []
        elapsed = 0.0
        for attempt in range(policy.max_attempts):
            if attempt:
                channel.retries += 1
            fault_mark = len(net.injected)
            outcome = net.attempt(message, attempt, at=net.clock + elapsed)
            elapsed += outcome.seconds
            if ctx is not None:
                # Injected faults (drop/delay/duplicate/unreachable)
                # become point events on the delivery span.
                for fault in net.injected[fault_mark:]:
                    events.append(
                        SpanEvent(
                            name=f"net.{fault.kind}",
                            time=trace_base + elapsed,
                            attrs={"attempt": attempt, "detail": fault.detail},
                        )
                    )
            if outcome.delivered:
                if net.consume_recovery(peer) and self.on_restart:
                    resync_seconds = self.on_restart(peer)
                    elapsed += resync_seconds
                    if ctx is not None:
                        events.append(
                            SpanEvent(
                                name="net.resync",
                                time=trace_base + elapsed,
                                attrs={"peer": peer, "seconds": resync_seconds},
                            )
                        )
                # Idempotence: the receiver keeps delivered seqs, so a
                # duplicated frame is recognized and discarded.
                if outcome.duplicated:
                    channel.duplicates_suppressed += 1
                channel.delivered.add(message.seq)
                # ACK tracking: a slave→M delivery confirms the link up
                # through this seq; M→slave deliveries are confirmed by
                # the slave's next response over the same channel.
                channel.acked_through = max(channel.acked_through, message.seq)
                self._trace_delivery(
                    ctx, message, peer, trace_base, elapsed, attempt + 1,
                    True, events,
                )
                return elapsed
            elapsed += policy.timeout_after(attempt, net.jitter_fraction())
            if ctx is not None and attempt + 1 < policy.max_attempts:
                events.append(
                    SpanEvent(
                        name="net.retry",
                        time=trace_base + elapsed,
                        attrs={"attempt": attempt + 1},
                    )
                )
        self._trace_delivery(
            ctx, message, peer, trace_base, elapsed, policy.max_attempts,
            False, events,
        )
        raise SlaveUnreachableError(
            peer,
            f"slave {peer!r} unreachable after {policy.max_attempts} attempts "
            f"({message.msg_type.value} seq={message.seq})",
        )

    def _trace_delivery(
        self,
        ctx: Optional[TraceContext],
        message: msg.Message,
        peer: str,
        trace_base: float,
        elapsed: float,
        attempts: int,
        delivered: bool,
        events: List[SpanEvent],
    ) -> None:
        """Record one ``net.deliver`` span for a traced delivery."""
        if ctx is None:
            return
        ctx.collector.record(
            "net.deliver",
            node="net",
            start=trace_base,
            end=trace_base + elapsed,
            parent_span_id=ctx.parent_span_id,
            events=events,
            msg_type=message.msg_type.value,
            peer=peer,
            bytes=message.total_bytes,
            attempts=attempts,
            delivered=delivered,
            seq=message.seq,
        )


@dataclass
class DGRoundStats:
    """Per-round cost decomposition (the Figure 14 series)."""

    round_index: int
    deviations: int
    compute_seconds: float
    transfer_seconds: float
    bytes_sent: int

    @property
    def total_seconds(self) -> float:
        """Compute plus transfer — the DG processing time per round."""
        return self.compute_seconds + self.transfer_seconds


@dataclass
class DGResult:
    """Outcome of one decentralized solve."""

    assignment: Dict[NodeId, int]
    rounds: List[DGRoundStats]
    converged: bool
    total_seconds: float
    total_bytes: int
    total_messages: int
    num_participants: int
    cn: float = 1.0
    extra: Dict = field(default_factory=dict)
    #: Why the protocol stopped: ``"converged"``, ``"deadline"`` or
    #: ``"cancelled"`` (mirrors ``PartitionResult.stop_reason``).
    stop_reason: str = "converged"

    @property
    def num_rounds(self) -> int:
        """Best-response rounds (round 0 = initialization excluded)."""
        return sum(1 for r in self.rounds if r.round_index > 0)


class DecentralizedGame:
    """Master node M coordinating the slaves of Figure 6."""

    def __init__(
        self,
        slaves: Sequence[SlaveNode],
        network: Optional[SimulatedNetwork] = None,
        deg_avg: float = 0.0,
        w_avg: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        degrade: bool = True,
        recorder: Optional[Recorder] = None,
    ) -> None:
        """``deg_avg``/``w_avg`` are the query-independent graph statistics
        used for normalization estimates ("available apriori", §3.3).

        ``retry_policy`` governs the reliability layer (only consulted
        when ``network`` is a :class:`FaultyNetwork`); ``degrade``
        selects graceful degradation — re-shard a permanently dead
        slave's players onto survivors — over raising
        :class:`SlaveUnreachableError`.  ``recorder`` receives the
        protocol telemetry (per-round spans, byte/message counters,
        fault events); ``None`` uses the ambient recorder.
        """
        if not slaves:
            raise ProtocolError("need at least one slave node")
        self.slaves = list(slaves)
        self.network = network or SimulatedNetwork()
        self.deg_avg = deg_avg
        self.w_avg = w_avg
        self.retry_policy = retry_policy or RetryPolicy()
        self.degrade = degrade
        self.recorder = recorder
        #: Optional hook called as ``round_listener(round_index, gsv)``
        #: after every completed round — the chaos/property tests use it
        #: to audit the potential Φ across faults.  No-op when unset.
        self.round_listener: Optional[Callable[[int, Dict[NodeId, int]], None]] = None
        self.transport: Optional[ReliableTransport] = None
        #: Measured compute spent rebuilding state after restarts /
        #: adoptions — reported separately so it never perturbs the
        #: deterministic simulated clock.
        self.recovery_compute_seconds = 0.0
        self._slaves_by_id = {s.slave_id: s for s in self.slaves}
        self._live: List[SlaveNode] = []
        self._active: List[SlaveNode] = []
        self._reports: Dict[str, object] = {}
        self._query: Optional[DGQuery] = None
        self._gsv: Optional[Dict[NodeId, int]] = None
        self._cn: float = 1.0
        # Causal-tracing state, populated per run() only when a recorder
        # is attached (the only-when-set rule: with tracing off none of
        # this exists and the protocol is byte-identical to untraced).
        self._collector: Optional[SpanCollector] = None
        self._trace_id: str = ""
        self._trace_offset: float = 0.0
        self._rec: Optional[Recorder] = None
        #: Running position on the simulated timeline (transfer + max
        #: parallel compute) used to anchor remote trace spans.
        self._sim_now: float = 0.0

    # ------------------------------------------------------------------
    def _ctx(self, parent_span: Optional[Span]) -> Optional[TraceContext]:
        """Trace context anchored at the current simulated time."""
        if self._collector is None or parent_span is None:
            return None
        return TraceContext(
            trace_id=self._trace_id,
            parent_span_id=parent_span.span_id,
            sim_time=self._sim_now,
            collector=self._collector,
        )

    def _exchange(
        self,
        messages: Iterable[msg.Message],
        ctx: Optional[TraceContext] = None,
        label: str = "",
    ) -> float:
        """Send one parallel exchange, reliably when faults can fire.

        ``ctx`` (tracing only) is stamped onto every message — zero wire
        bytes — and the exchange is recorded on the simulated timeline:
        an aggregate ``net.exchange`` span on a plain network, per-
        delivery ``net.deliver`` spans through the reliable transport.
        """
        if ctx is not None:
            messages = [msg.with_trace(m, ctx) for m in messages]
        if self.transport is None:
            if ctx is None:
                seconds = self.network.parallel_exchange(messages)
            else:
                bytes_before = self.network.total_bytes()
                msgs_before = self.network.total_messages()
                seconds = self.network.parallel_exchange(messages)
                ctx.record(
                    "net.exchange",
                    node="net",
                    start=self._sim_now,
                    end=self._sim_now + seconds,
                    label=label,
                    bytes=self.network.total_bytes() - bytes_before,
                    messages=self.network.total_messages() - msgs_before,
                )
        else:
            seconds = self.transport.exchange(messages, trace_base=self._sim_now)
        self._sim_now += seconds
        return seconds

    def run(
        self,
        query: DGQuery,
        deadline_seconds: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> DGResult:
        """Execute the full Figure 6 protocol for ``query``.

        ``deadline_seconds`` bounds the *simulated* processing time
        (compute plus transfer — the Figure 14 quantity): the master
        stops launching color phases once the budget is spent and
        returns the current — valid, monotonically improved — GSV with
        ``converged=False`` and ``stop_reason="deadline"``.  The
        remaining budget rides along with every COMPUTE_COLOR message so
        slaves can refuse work on their own; a round with skipped
        (*degraded*) phases never counts as convergence even when it
        reports zero deviations.  ``cancel_token`` is polled at round
        and phase boundaries and stops the protocol the same way with
        ``stop_reason="cancelled"``.
        """
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be positive")
        rec = active_recorder(self.recorder)
        with rec.span(
            "dg.solve", solver="DG", slaves=len(self.slaves), k=query.k
        ):
            result = self._run(query, rec, deadline_seconds, cancel_token)
            rec.count("dg.bytes", result.total_bytes)
            rec.count("dg.messages", result.total_messages)
            if self.transport is not None:
                channels = self.transport.channels.values()
                rec.count(
                    "dg.retries", sum(c.retries for c in channels)
                )
                rec.count(
                    "dg.duplicates_suppressed",
                    sum(c.duplicates_suppressed for c in channels),
                )
                rec.count("dg.dead_slaves", len(self.transport.dead))
                rec.gauge(
                    "dg.recovery_compute_seconds",
                    self.recovery_compute_seconds,
                )
        return result

    @staticmethod
    def _interrupt_reason(
        cancel_token: Optional[CancelToken],
        deadline_seconds: Optional[float],
        sim_elapsed: float,
    ) -> Optional[str]:
        """Real-time stop test at a round/phase boundary (token first)."""
        if cancel_token is not None and cancel_token.cancelled:
            return "cancelled"
        if deadline_seconds is not None and sim_elapsed >= deadline_seconds:
            return "deadline"
        return None

    def _run(
        self,
        query: DGQuery,
        rec: Recorder,
        deadline_seconds: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> DGResult:
        rounds: List[DGRoundStats] = []
        start_bytes = self.network.total_bytes()
        start_msgs = self.network.total_messages()

        self._query = query
        self._gsv = None
        self._cn = 1.0
        self._reports = {}
        self._live = list(self.slaves)
        self._active = []
        self.recovery_compute_seconds = 0.0
        self._rec = rec
        self._sim_now = 0.0
        if rec.enabled:
            # Only-when-set: context exists solely under a recorder, so
            # the untraced protocol runs the exact pre-tracing code.
            self._collector = SpanCollector()
            self._trace_id = rec.new_trace_id()
            clock = getattr(rec, "clock", None)
            self._trace_offset = float(clock()) if callable(clock) else 0.0
        else:
            self._collector = None
            self._trace_id = ""
            self._trace_offset = 0.0
        if isinstance(self.network, FaultyNetwork):
            self.transport = ReliableTransport(
                self.network,
                self.retry_policy,
                on_crash=self._on_crash,
                on_restart=self._recover_slave,
                on_dead=self._absorb_dead_slave if self.degrade else None,
            )
            self.transport.collector = self._collector
        else:
            self.transport = None

        # ---- Round 0: initialization -----------------------------------
        with rec.span("dg.round", round=0, phase="init") as init_span:
            self.network.begin_round(0)
            transfer = self._exchange(
                (
                    msg.init_message(
                        "M", s.slave_id, query.k, query.area is not None
                    )
                    for s in self._live
                ),
                self._ctx(init_span),
                label="init",
            )
            init_ctx = self._ctx(init_span)
            self._reports = {
                s.slave_id: s.initialize(query, ctx=init_ctx)
                for s in self._live
            }
            compute = max(r.compute_seconds for r in self._reports.values())
            self._sim_now += compute
            transfer += self._exchange(
                (
                    msg.lsv_message(
                        s.slave_id,
                        "M",
                        self._reports[s.slave_id].num_participants,
                        len(self._reports[s.slave_id].colors),
                    )
                    for s in self._live
                ),
                self._ctx(init_span),
                label="lsv",
            )

            gsv: Dict[NodeId, int] = {}
            colors: Set[int] = set()
            for slave in self._live:
                report = self._reports[slave.slave_id]
                overlap = gsv.keys() & report.local_strategies.keys()
                if overlap:
                    raise ProtocolError(
                        f"users owned by two slaves: {list(overlap)[:5]}"
                    )
                gsv.update(report.local_strategies)
                colors.update(report.colors)
            if not gsv:
                raise ProtocolError(
                    "no participants inside the area of interest"
                )
            self._gsv = gsv

            cn = self._estimate_cn(
                query, [self._reports[s.slave_id] for s in self._live]
            )
            self._cn = cn

            # Only slaves with participants join the game (Fig. 6 line 6).
            self._active = [
                s for s in self._live
                if self._reports[s.slave_id].num_participants > 0
            ]
            transfer += self._exchange(
                (
                    msg.gsv_message("M", s.slave_id, len(gsv))
                    for s in self._active
                ),
                self._ctx(init_span),
                label="gsv",
            )
            gsv_ctx = self._ctx(init_span)
            gsv_compute = max(
                (s.receive_gsv(gsv, cn, ctx=gsv_ctx) for s in self._active),
                default=0.0,
            )
            compute += gsv_compute
            self._sim_now += gsv_compute
            transfer += self._exchange(
                (msg.ack_message(s.slave_id, "M") for s in self._active),
                self._ctx(init_span),
                label="ack",
            )
            for slave in self._active:
                slave.checkpoint(0)
            ledger0 = self.network.round_ledgers()[-1]
            if init_span is not None:
                init_span.attrs.update(
                    participants=len(gsv),
                    bytes=ledger0.bytes_sent,
                    messages=ledger0.messages,
                    compute_seconds=compute,
                    transfer_seconds=transfer,
                )
        rec.count("dg.rounds", 1)
        rec.observe("dg.round_bytes", ledger0.bytes_sent)
        rounds.append(
            DGRoundStats(
                round_index=0,
                deviations=0,
                compute_seconds=compute,
                transfer_seconds=transfer,
                bytes_sent=ledger0.bytes_sent,
            )
        )
        if self.round_listener:
            self.round_listener(0, dict(gsv))

        # ---- Rounds 1..: per-color best responses ----------------------
        color_order = sorted(colors)
        round_index = 0
        converged = False
        stop_reason: Optional[str] = None
        sim_elapsed = rounds[0].total_seconds
        degraded_rounds = 0
        while not converged:
            stop_reason = self._interrupt_reason(
                cancel_token, deadline_seconds, sim_elapsed
            )
            if stop_reason is not None:
                break
            round_index += 1
            if round_index > MAX_DG_ROUNDS:
                raise ProtocolError(f"DG exceeded {MAX_DG_ROUNDS} rounds")
            with rec.span("dg.round", round=round_index) as round_span:
                self.network.begin_round(round_index)
                round_compute = 0.0
                round_transfer = 0.0
                round_deviations = 0
                degraded = False
                for color in color_order:
                    phase_elapsed = sim_elapsed + round_compute + round_transfer
                    reason = self._interrupt_reason(
                        cancel_token, deadline_seconds, phase_elapsed
                    )
                    if reason is not None:
                        # Budget ran out mid-round: the remaining colors
                        # are skipped, leaving their players dirty — a
                        # degraded round.
                        stop_reason = reason
                        degraded = True
                        break
                    remaining = (
                        None if deadline_seconds is None
                        else deadline_seconds - phase_elapsed
                    )
                    with rec.span(
                        "dg.phase", color=color, round=round_index
                    ) as phase_span:
                        round_transfer += self._exchange(
                            (
                                msg.compute_color_message(
                                    "M", s.slave_id,
                                    with_deadline=deadline_seconds is not None,
                                )
                                for s in self._active
                            ),
                            self._ctx(phase_span),
                            label="compute_color",
                        )
                        compute_ctx = self._ctx(phase_span)
                        computed = []
                        phase_compute = 0.0
                        for slave in list(self._active):
                            changes, seconds = slave.compute_color(
                                color,
                                remaining_seconds=remaining,
                                ctx=compute_ctx,
                            )
                            phase_compute = max(phase_compute, seconds)
                            computed.append((slave, changes))
                        round_compute += phase_compute
                        self._sim_now += phase_compute
                        round_transfer += self._exchange(
                            (
                                msg.strategy_changes_message(
                                    s.slave_id, "M", len(changes)
                                )
                                for s, changes in computed
                            ),
                            self._ctx(phase_span),
                            label="changes_up",
                        )

                        # Changes from a slave that died before its report
                        # got through are discarded — its players
                        # re-deviate later.
                        all_changes: Dict[NodeId, int] = {}
                        for slave, changes in computed:
                            if slave in self._active:
                                all_changes.update(changes)
                        gsv.update(all_changes)
                        round_deviations += len(all_changes)
                        round_transfer += self._exchange(
                            (
                                msg.strategy_changes_message(
                                    "M", s.slave_id, len(all_changes)
                                )
                                for s in self._active
                            ),
                            self._ctx(phase_span),
                            label="changes_down",
                        )
                        apply_ctx = self._ctx(phase_span)
                        apply_compute = max(
                            (
                                s.apply_changes(all_changes, ctx=apply_ctx)
                                for s in self._active
                            ),
                            default=0.0,
                        )
                        round_compute += apply_compute
                        self._sim_now += apply_compute
                        round_transfer += self._exchange(
                            (
                                msg.ack_message(s.slave_id, "M")
                                for s in self._active
                            ),
                            self._ctx(phase_span),
                            label="ack",
                        )
                        if phase_span is not None:
                            phase_span.attrs.update(
                                deviations=len(all_changes),
                                compute_seconds=phase_compute,
                            )
                for slave in self._active:
                    slave.checkpoint(round_index)
                ledger = self.network.round_ledgers()[-1]
                if round_span is not None:
                    round_span.attrs.update(
                        deviations=round_deviations,
                        bytes=ledger.bytes_sent,
                        messages=ledger.messages,
                        compute_seconds=round_compute,
                        transfer_seconds=round_transfer,
                    )
            rec.count("dg.rounds", 1)
            rec.count("dg.moves", round_deviations)
            rec.count("dg.transfer_seconds", round_transfer)
            rec.observe("dg.round_bytes", ledger.bytes_sent)
            rounds.append(
                DGRoundStats(
                    round_index=round_index,
                    deviations=round_deviations,
                    compute_seconds=round_compute,
                    transfer_seconds=round_transfer,
                    bytes_sent=ledger.bytes_sent,
                )
            )
            if self.round_listener:
                self.round_listener(round_index, dict(gsv))
            sim_elapsed += rounds[-1].total_seconds
            if degraded:
                degraded_rounds += 1
            # A degraded round may report zero deviations only because
            # phases were skipped — never count it as convergence.
            converged = round_deviations == 0 and not degraded
            if stop_reason is not None:
                break

        self.network.begin_round(round_index + 1)
        self._exchange(
            (msg.terminate_message("M", s.slave_id) for s in self._active),
            self._ctx(rec.current_span),
            label="terminate",
        )

        if not converged:
            if stop_reason == "deadline":
                rec.count("solver.deadline_hits", 1, solver="DG")
            elif stop_reason == "cancelled":
                rec.count("solver.cancellations", 1, solver="DG")
            rec.event(
                "solver.interrupted", solver="DG", reason=stop_reason,
                round=round_index,
            )

        extra = {
            "num_colors": len(color_order),
            "num_slaves": len(self._active),
            "distance_computations": sum(
                r.distance_computations for r in self._reports.values()
            ),
        }
        if deadline_seconds is not None or cancel_token is not None:
            extra["degraded_rounds"] = degraded_rounds
        if not converged:
            extra["remaining_dirty"] = sum(
                s._active.count()
                for s in self._active
                if s._active is not None
            )
        if self.transport is not None:
            extra["fault_plan"] = self.network.plan.describe()
            extra["recovery_compute_seconds"] = self.recovery_compute_seconds
        if self._collector is not None:
            # Stitch slave- and network-side spans into the master's
            # trace, shifted onto the recorder's clock origin.
            rec.adopt(self._collector.drain(), offset=self._trace_offset)
        return DGResult(
            assignment=dict(gsv),
            rounds=rounds,
            converged=converged,
            total_seconds=sum(r.total_seconds for r in rounds),
            total_bytes=self.network.total_bytes() - start_bytes,
            total_messages=self.network.total_messages() - start_msgs,
            num_participants=len(gsv),
            cn=cn,
            extra=extra,
            stop_reason=stop_reason if stop_reason is not None else "converged",
        )

    # ------------------------------------------------------------------
    # Fault handling: crash wipe, restart recovery, graceful degradation
    # ------------------------------------------------------------------
    def _on_crash(self, slave_id: str) -> None:
        """A scheduled crash fired: the slave process loses its memory."""
        active_recorder(self.recorder).event("dg.crash", slave=slave_id)
        self._slaves_by_id[slave_id].crash()

    def _recover_slave(self, slave_id: str) -> float:
        """Resync a restarted slave; returns the extra *network* seconds.

        The slave restores its strategy vector from its last durable
        checkpoint, re-derives participants and distance rows from the
        shard, and the master re-ships the current GSV (accounted at
        full wire size) so the rebuilt game table matches the
        coordinator exactly.  Only the deterministic wire time feeds the
        simulated clock; the measured rebuild compute time accumulates
        in :attr:`recovery_compute_seconds` (wall-clock measurements
        must never steer the deterministic backoff schedule).
        """
        active_recorder(self.recorder).event("dg.restart", slave=slave_id)
        slave = self._slaves_by_id[slave_id]
        assert isinstance(self.network, FaultyNetwork)
        seconds = 0.0
        if self._gsv is not None:
            seconds += self.network.record_extra(
                msg.gsv_message("M", slave_id, len(self._gsv))
            )
        ctx = (
            self._ctx(self._rec.current_span)
            if self._rec is not None else None
        )
        self.recovery_compute_seconds += slave.resync(
            self._query, self._gsv, self._cn, ctx=ctx
        )
        if self._gsv is None:
            # Crash during round 0, before the GSV existed: the re-run
            # initialization replaces the slave's (lost) LSV report.
            self._reports[slave_id] = slave.initialize(self._query)
        return seconds

    def _absorb_dead_slave(self, slave_id: str) -> bool:
        """Re-shard a permanently dead slave's players onto a survivor.

        Returns True when degradation succeeded (the protocol carries on
        without the dead slave), False when nobody is left to absorb the
        block — the transport then escalates to SlaveUnreachableError.
        """
        pool = self._active or self._live
        survivors = [s for s in pool if s.slave_id != slave_id]
        if not survivors:
            return False
        dead = self._slaves_by_id[slave_id]
        assert isinstance(self.network, FaultyNetwork)

        # FaE-style block transfer: the dead slave's replicated shard is
        # shipped to the survivor and accounted at exact wire size.
        directed_entries = sum(
            len(dead._adjacency[u]) for u in dead.local_users
        )
        shard_bytes = (
            msg.graph_shard_bytes(len(dead.local_users), directed_entries // 2)
            + msg.HEADER_BYTES
        )
        target = min(
            survivors, key=lambda s: (len(s.participants), s.slave_id)
        )
        self.network.bulk_transfer(shard_bytes, "reshard", slave_id)
        target.absorb_shard(dead)
        active_recorder(self.recorder).event(
            "dg.reshard", dead=slave_id, target=target.slave_id,
            bytes=shard_bytes,
        )

        if self._gsv is not None:
            ctx = (
                self._ctx(self._rec.current_span)
                if self._rec is not None else None
            )
            target.resync(self._query, self._gsv, self._cn, ctx=ctx)
        elif self._reports:
            # Death after initialization but before the GSV: regenerate
            # the survivor's report so the merge below sees the adopted
            # players.
            self._reports[target.slave_id] = target.initialize(self._query)

        self._live = [s for s in self._live if s.slave_id != slave_id]
        self._active = [s for s in self._active if s.slave_id != slave_id]
        return True

    # ------------------------------------------------------------------
    def _estimate_cn(self, query: DGQuery, reports) -> float:
        """Master-side C_N estimate from slave-reported distance sums."""
        return estimate_cn_from_reports(query, reports, self.deg_avg, self.w_avg)


def estimate_cn_from_reports(
    query: DGQuery, reports, deg_avg: float, w_avg: float
) -> float:
    """Section 3.3 estimates from slave-aggregated distance statistics.

    ``deg_avg``/``w_avg`` are query-independent graph statistics known to
    the coordinator a priori; the per-query ``dist_min``/``dist_med``
    averages arrive with the slaves' LSV reports.
    """
    if query.normalize is None:
        return 1.0
    total = sum(r.num_participants for r in reports)
    if total == 0 or deg_avg <= 0 or w_avg <= 0:
        return 1.0
    k = query.k
    if query.normalize == "optimistic":
        dist_min = sum(r.sum_min_distance for r in reports) / total
        if dist_min <= 0:
            return 1.0
        return deg_avg * w_avg / (2.0 * dist_min * (k ** 0.5))
    dist_med = sum(r.sum_median_distance for r in reports) / total
    if dist_med <= 0 or k < 2:
        return 1.0
    return deg_avg * (k - 1) * w_avg / (2.0 * dist_med * k)
