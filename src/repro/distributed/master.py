"""The decentralized game coordinator (DG — Figure 6, left column).

The master never touches user data: it broadcasts the query, merges the
local strategic vectors into the global one, drives per-color rounds,
redistributes strategy changes and detects termination.  All traffic
flows through a :class:`~repro.distributed.network.SimulatedNetwork`
which produces the byte/transfer-time series of Figures 13 and 14, while
slave compute time is charged as the *maximum* across slaves per phase
(they run in parallel on distinct servers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.distributed import messages as msg
from repro.distributed.network import SimulatedNetwork
from repro.distributed.query import DGQuery
from repro.distributed.slave import SlaveNode
from repro.errors import ProtocolError
from repro.graph.social_graph import NodeId

#: Safety valve mirroring the centralized solvers.
MAX_DG_ROUNDS = 10_000


@dataclass
class DGRoundStats:
    """Per-round cost decomposition (the Figure 14 series)."""

    round_index: int
    deviations: int
    compute_seconds: float
    transfer_seconds: float
    bytes_sent: int

    @property
    def total_seconds(self) -> float:
        """Compute plus transfer — the DG processing time per round."""
        return self.compute_seconds + self.transfer_seconds


@dataclass
class DGResult:
    """Outcome of one decentralized solve."""

    assignment: Dict[NodeId, int]
    rounds: List[DGRoundStats]
    converged: bool
    total_seconds: float
    total_bytes: int
    total_messages: int
    num_participants: int
    cn: float = 1.0
    extra: Dict = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Best-response rounds (round 0 = initialization excluded)."""
        return sum(1 for r in self.rounds if r.round_index > 0)


class DecentralizedGame:
    """Master node M coordinating the slaves of Figure 6."""

    def __init__(
        self,
        slaves: Sequence[SlaveNode],
        network: Optional[SimulatedNetwork] = None,
        deg_avg: float = 0.0,
        w_avg: float = 0.0,
    ) -> None:
        """``deg_avg``/``w_avg`` are the query-independent graph statistics
        used for normalization estimates ("available apriori", §3.3)."""
        if not slaves:
            raise ProtocolError("need at least one slave node")
        self.slaves = list(slaves)
        self.network = network or SimulatedNetwork()
        self.deg_avg = deg_avg
        self.w_avg = w_avg

    # ------------------------------------------------------------------
    def run(self, query: DGQuery) -> DGResult:
        """Execute the full Figure 6 protocol for ``query``."""
        rounds: List[DGRoundStats] = []
        start_bytes = self.network.total_bytes()
        start_msgs = self.network.total_messages()

        # ---- Round 0: initialization -----------------------------------
        self.network.begin_round(0)
        transfer = self.network.parallel_exchange(
            msg.init_message("M", s.slave_id, query.k, query.area is not None)
            for s in self.slaves
        )
        reports = [slave.initialize(query) for slave in self.slaves]
        compute = max(r.compute_seconds for r in reports)
        transfer += self.network.parallel_exchange(
            msg.lsv_message(
                s.slave_id, "M", r.num_participants, len(r.colors)
            )
            for s, r in zip(self.slaves, reports)
        )

        gsv: Dict[NodeId, int] = {}
        colors: Set[int] = set()
        for report in reports:
            overlap = gsv.keys() & report.local_strategies.keys()
            if overlap:
                raise ProtocolError(f"users owned by two slaves: {list(overlap)[:5]}")
            gsv.update(report.local_strategies)
            colors.update(report.colors)
        if not gsv:
            raise ProtocolError("no participants inside the area of interest")

        cn = self._estimate_cn(query, reports)

        # Only slaves with participants join the game (Figure 6 line 6).
        active = [
            (slave, report)
            for slave, report in zip(self.slaves, reports)
            if report.num_participants > 0
        ]
        transfer += self.network.parallel_exchange(
            msg.gsv_message("M", slave.slave_id, len(gsv)) for slave, _ in active
        )
        compute += max(slave.receive_gsv(gsv, cn) for slave, _ in active)
        transfer += self.network.parallel_exchange(
            msg.ack_message(slave.slave_id, "M") for slave, _ in active
        )
        ledger0 = self.network.round_ledgers()[-1]
        rounds.append(
            DGRoundStats(
                round_index=0,
                deviations=0,
                compute_seconds=compute,
                transfer_seconds=transfer,
                bytes_sent=ledger0.bytes_sent,
            )
        )

        # ---- Rounds 1..: per-color best responses ----------------------
        color_order = sorted(colors)
        round_index = 0
        converged = False
        while not converged:
            round_index += 1
            if round_index > MAX_DG_ROUNDS:
                raise ProtocolError(f"DG exceeded {MAX_DG_ROUNDS} rounds")
            self.network.begin_round(round_index)
            round_compute = 0.0
            round_transfer = 0.0
            round_deviations = 0
            for color in color_order:
                round_transfer += self.network.parallel_exchange(
                    msg.compute_color_message("M", slave.slave_id)
                    for slave, _ in active
                )
                all_changes: Dict[NodeId, int] = {}
                phase_compute = 0.0
                outgoing = []
                for slave, _ in active:
                    changes, seconds = slave.compute_color(color)
                    phase_compute = max(phase_compute, seconds)
                    all_changes.update(changes)
                    outgoing.append(
                        msg.strategy_changes_message(
                            slave.slave_id, "M", len(changes)
                        )
                    )
                round_compute += phase_compute
                round_transfer += self.network.parallel_exchange(outgoing)

                gsv.update(all_changes)
                round_deviations += len(all_changes)
                round_transfer += self.network.parallel_exchange(
                    msg.strategy_changes_message(
                        "M", slave.slave_id, len(all_changes)
                    )
                    for slave, _ in active
                )
                round_compute += max(
                    (slave.apply_changes(all_changes) for slave, _ in active),
                    default=0.0,
                )
                round_transfer += self.network.parallel_exchange(
                    msg.ack_message(slave.slave_id, "M") for slave, _ in active
                )
            ledger = self.network.round_ledgers()[-1]
            rounds.append(
                DGRoundStats(
                    round_index=round_index,
                    deviations=round_deviations,
                    compute_seconds=round_compute,
                    transfer_seconds=round_transfer,
                    bytes_sent=ledger.bytes_sent,
                )
            )
            converged = round_deviations == 0

        self.network.begin_round(round_index + 1)
        self.network.parallel_exchange(
            msg.terminate_message("M", slave.slave_id) for slave, _ in active
        )

        return DGResult(
            assignment=dict(gsv),
            rounds=rounds,
            converged=True,
            total_seconds=sum(r.total_seconds for r in rounds),
            total_bytes=self.network.total_bytes() - start_bytes,
            total_messages=self.network.total_messages() - start_msgs,
            num_participants=len(gsv),
            cn=cn,
            extra={
                "num_colors": len(color_order),
                "num_slaves": len(active),
                "distance_computations": sum(
                    r.distance_computations for r in reports
                ),
            },
        )

    # ------------------------------------------------------------------
    def _estimate_cn(self, query: DGQuery, reports) -> float:
        """Master-side C_N estimate from slave-reported distance sums."""
        return estimate_cn_from_reports(query, reports, self.deg_avg, self.w_avg)


def estimate_cn_from_reports(
    query: DGQuery, reports, deg_avg: float, w_avg: float
) -> float:
    """Section 3.3 estimates from slave-aggregated distance statistics.

    ``deg_avg``/``w_avg`` are query-independent graph statistics known to
    the coordinator a priori; the per-query ``dist_min``/``dist_med``
    averages arrive with the slaves' LSV reports.
    """
    if query.normalize is None:
        return 1.0
    total = sum(r.num_participants for r in reports)
    if total == 0 or deg_avg <= 0 or w_avg <= 0:
        return 1.0
    k = query.k
    if query.normalize == "optimistic":
        dist_min = sum(r.sum_min_distance for r in reports) / total
        if dist_min <= 0:
            return 1.0
        return deg_avg * w_avg / (2.0 * dist_min * (k ** 0.5))
    dist_med = sum(r.sum_median_distance for r in reports) / total
    if dist_med <= 0 or k < 2:
        return 1.0
    return deg_avg * (k - 1) * w_avg / (2.0 * dist_med * k)
