"""Peer-to-peer decentralized game — direct slave-to-slave exchange.

Section 5 notes: "Although we assume that the slaves can only communicate
through M, DG can be easily extended to handle direct data exchange
between slaves."  This module is that extension: after each per-color
compute phase the slaves broadcast their strategy changes directly to
their peers, and the master only (i) issues compute commands, (ii)
receives tiny per-slave deviation *counts* for termination detection, and
(iii) gathers the final assignment once, at the end.

Compared to the relayed protocol this halves the change traffic through
the coordinator (changes travel slave→peer instead of slave→M→slaves) and
removes the master as a store-and-forward bottleneck; the ablation
benchmark compares total bytes and modeled time of both variants.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.distributed import messages as msg
from repro.distributed.faults import FaultyNetwork
from repro.distributed.master import (
    DGResult,
    DGRoundStats,
    MAX_DG_ROUNDS,
    ReliableTransport,
    RetryPolicy,
)
from repro.distributed.network import SimulatedNetwork
from repro.distributed.query import DGQuery
from repro.distributed.slave import SlaveNode
from repro.errors import ConfigurationError, ProtocolError
from repro.graph.social_graph import NodeId

#: Wire size of a per-slave deviation-count report (a single integer).
COUNT_REPORT_BYTES = msg.INT_BYTES


class PeerToPeerGame:
    """DG variant with direct slave-to-slave strategy exchange.

    Message-level faults (drop/delay/duplicate/reorder from a
    :class:`FaultyNetwork`) are retried through the same
    :class:`ReliableTransport` as the relayed coordinator.  Crash
    recovery, however, needs the master's authoritative GSV resend —
    which this protocol deliberately avoids — so fault plans with crash
    events are rejected; use the relayed coordinator for those.
    """

    def __init__(
        self,
        slaves: Sequence[SlaveNode],
        network: Optional[SimulatedNetwork] = None,
        deg_avg: float = 0.0,
        w_avg: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not slaves:
            raise ProtocolError("need at least one slave node")
        self.slaves = list(slaves)
        self.network = network or SimulatedNetwork()
        self.deg_avg = deg_avg
        self.w_avg = w_avg
        self.retry_policy = retry_policy or RetryPolicy()
        self.transport: Optional[ReliableTransport] = None

    def _exchange(self, messages: Iterable[msg.Message]) -> float:
        """Send one parallel exchange, reliably when faults can fire."""
        if self.transport is None:
            return self.network.parallel_exchange(messages)
        return self.transport.exchange(messages)

    def run(self, query: DGQuery) -> DGResult:
        """Execute the peer-to-peer protocol for ``query``."""
        rounds: List[DGRoundStats] = []
        start_bytes = self.network.total_bytes()
        start_msgs = self.network.total_messages()

        if isinstance(self.network, FaultyNetwork):
            if self.network.plan.crashes:
                raise ConfigurationError(
                    "peer protocol does not support crash recovery; "
                    "run crash plans through the relayed coordinator"
                )
            self.transport = ReliableTransport(self.network, self.retry_policy)
        else:
            self.transport = None

        # ---- Round 0: identical initialization to relayed DG ----------
        self.network.begin_round(0)
        transfer = self._exchange(
            msg.init_message("M", s.slave_id, query.k, query.area is not None)
            for s in self.slaves
        )
        reports = [slave.initialize(query) for slave in self.slaves]
        compute = max(r.compute_seconds for r in reports)
        transfer += self._exchange(
            msg.lsv_message(s.slave_id, "M", r.num_participants, len(r.colors))
            for s, r in zip(self.slaves, reports)
        )

        gsv: Dict[NodeId, int] = {}
        colors: Set[int] = set()
        for report in reports:
            overlap = gsv.keys() & report.local_strategies.keys()
            if overlap:
                raise ProtocolError(
                    f"users owned by two slaves: {list(overlap)[:5]}"
                )
            gsv.update(report.local_strategies)
            colors.update(report.colors)
        if not gsv:
            raise ProtocolError("no participants inside the area of interest")

        cn = self._estimate_cn(query, reports)
        active = [
            (slave, report)
            for slave, report in zip(self.slaves, reports)
            if report.num_participants > 0
        ]
        transfer += self._exchange(
            msg.gsv_message("M", slave.slave_id, len(gsv)) for slave, _ in active
        )
        compute += max(slave.receive_gsv(gsv, cn) for slave, _ in active)
        transfer += self._exchange(
            msg.ack_message(slave.slave_id, "M") for slave, _ in active
        )
        ledger0 = self.network.round_ledgers()[-1]
        rounds.append(
            DGRoundStats(
                round_index=0,
                deviations=0,
                compute_seconds=compute,
                transfer_seconds=transfer,
                bytes_sent=ledger0.bytes_sent,
            )
        )

        # ---- Per-color rounds with direct peer broadcast ---------------
        color_order = sorted(colors)
        round_index = 0
        converged = False
        while not converged:
            round_index += 1
            if round_index > MAX_DG_ROUNDS:
                raise ProtocolError(f"peer DG exceeded {MAX_DG_ROUNDS} rounds")
            self.network.begin_round(round_index)
            round_compute = 0.0
            round_transfer = 0.0
            round_deviations = 0
            for color in color_order:
                round_transfer += self._exchange(
                    msg.compute_color_message("M", slave.slave_id)
                    for slave, _ in active
                )
                per_slave_changes = []
                phase_compute = 0.0
                for slave, _ in active:
                    changes, seconds = slave.compute_color(color)
                    phase_compute = max(phase_compute, seconds)
                    per_slave_changes.append(changes)
                round_compute += phase_compute

                # Direct broadcast: each slave ships its changes to every
                # peer (not back through M).
                peer_messages = []
                for (source, _), changes in zip(active, per_slave_changes):
                    for target, _ in active:
                        if target is source:
                            continue
                        peer_messages.append(
                            msg.strategy_changes_message(
                                source.slave_id, target.slave_id, len(changes)
                            )
                        )
                round_transfer += self._exchange(peer_messages)

                all_changes: Dict[NodeId, int] = {}
                for changes in per_slave_changes:
                    all_changes.update(changes)
                gsv.update(all_changes)
                round_deviations += len(all_changes)
                round_compute += max(
                    (slave.apply_changes(all_changes) for slave, _ in active),
                    default=0.0,
                )
                # Tiny count reports let M detect termination.
                round_transfer += self._exchange(
                    msg.Message(
                        msg.MessageType.ACK,
                        slave.slave_id,
                        "M",
                        COUNT_REPORT_BYTES,
                    )
                    for slave, _ in active
                )
            ledger = self.network.round_ledgers()[-1]
            rounds.append(
                DGRoundStats(
                    round_index=round_index,
                    deviations=round_deviations,
                    compute_seconds=round_compute,
                    transfer_seconds=round_transfer,
                    bytes_sent=ledger.bytes_sent,
                )
            )
            converged = round_deviations == 0

        # ---- Final gather: slaves report their local assignments ------
        self.network.begin_round(round_index + 1)
        self._exchange(
            msg.lsv_message(
                slave.slave_id, "M", len(slave.participants), 0
            )
            for slave, _ in active
        )
        final: Dict[NodeId, int] = {}
        for slave, _ in active:
            final.update(slave.local_assignment())

        return DGResult(
            assignment=final,
            rounds=rounds,
            converged=True,
            total_seconds=sum(r.total_seconds for r in rounds),
            total_bytes=self.network.total_bytes() - start_bytes,
            total_messages=self.network.total_messages() - start_msgs,
            num_participants=len(final),
            cn=cn,
            extra={
                "protocol": "peer-to-peer",
                "num_colors": len(color_order),
                "num_slaves": len(active),
            },
        )

    def _estimate_cn(self, query: DGQuery, reports) -> float:
        """Same estimate as the relayed coordinator."""
        from repro.distributed.master import estimate_cn_from_reports

        return estimate_cn_from_reports(query, reports, self.deg_avg, self.w_avg)
