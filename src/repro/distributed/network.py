"""Simulated cluster network with byte and latency accounting.

The paper's decentralized experiments run on "three identical servers
... that communicate using an 100Mbps Ethernet connection".  We have one
machine, so the network is replaced by a cost model: every protocol
message is accounted with its exact wire size (see
:mod:`repro.distributed.messages`) and converted to transfer time as

    seconds = latency + bytes * 8 / (bandwidth_mbps * 10^6)

A per-round ledger accumulates bytes, message counts and transfer time —
the series of Figure 14.  Exchanges that happen in parallel (the master
talking to all slaves at once) can be recorded through
:meth:`SimulatedNetwork.parallel_exchange`, which charges the *maximum*
time across the concurrent transfers but the *sum* of their bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.distributed.messages import Message
from repro.errors import ConfigurationError

DEFAULT_BANDWIDTH_MBPS = 100.0
DEFAULT_LATENCY_SECONDS = 0.0005


@dataclass
class RoundLedger:
    """Traffic accumulated during one protocol round.

    ``faults`` stays empty on a plain :class:`SimulatedNetwork`; a
    :class:`~repro.distributed.faults.FaultyNetwork` appends one
    :class:`~repro.distributed.faults.InjectedFault` record per injected
    fault so chaos runs can be audited round by round.
    """

    round_index: int
    bytes_sent: int = 0
    messages: int = 0
    transfer_seconds: float = 0.0
    faults: List = field(default_factory=list)


class SimulatedNetwork:
    """Accounts messages between the master and slave nodes."""

    def __init__(
        self,
        bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS,
        latency_seconds: float = DEFAULT_LATENCY_SECONDS,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if latency_seconds < 0:
            raise ConfigurationError("latency must be non-negative")
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_seconds = float(latency_seconds)
        self._rounds: Dict[int, RoundLedger] = {}
        self._current_round = 0

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        """Switch accounting to ``round_index`` (0 = initialization)."""
        self._current_round = round_index
        self._rounds.setdefault(round_index, RoundLedger(round_index))

    def transfer_seconds(self, num_bytes: int) -> float:
        """Cost-model time to move ``num_bytes`` over one link."""
        return self.latency_seconds + num_bytes * 8.0 / (self.bandwidth_mbps * 1e6)

    def send(self, message: Message) -> float:
        """Account one sequential message; returns its transfer time."""
        ledger = self._rounds.setdefault(
            self._current_round, RoundLedger(self._current_round)
        )
        seconds = self.transfer_seconds(message.total_bytes)
        ledger.bytes_sent += message.total_bytes
        ledger.messages += 1
        ledger.transfer_seconds += seconds
        return seconds

    def parallel_exchange(self, messages: Iterable[Message]) -> float:
        """Account messages sent concurrently (master fan-out/fan-in).

        Bytes and counts add up; the charged time is the slowest
        individual transfer, modeling simultaneous links.
        """
        ledger = self._rounds.setdefault(
            self._current_round, RoundLedger(self._current_round)
        )
        slowest = 0.0
        for message in messages:
            seconds = self.transfer_seconds(message.total_bytes)
            ledger.bytes_sent += message.total_bytes
            ledger.messages += 1
            slowest = max(slowest, seconds)
        ledger.transfer_seconds += slowest
        return slowest

    # ------------------------------------------------------------------
    def round_ledgers(self) -> List[RoundLedger]:
        """Ledgers in round order (only rounds that saw traffic)."""
        return [self._rounds[r] for r in sorted(self._rounds)]

    def total_bytes(self) -> int:
        """All bytes moved over the network."""
        return sum(l.bytes_sent for l in self._rounds.values())

    def total_transfer_seconds(self) -> float:
        """All simulated transfer time."""
        return sum(l.transfer_seconds for l in self._rounds.values())

    def total_messages(self) -> int:
        """All messages exchanged."""
        return sum(l.messages for l in self._rounds.values())
