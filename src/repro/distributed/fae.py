"""FaE — fetch-and-execute (Section 5, the DG comparison point).

"One could perform RMGP on a distributed social graph by fetching the
data over the network through the API to a master processing unit and
executing the algorithm locally."  FaE therefore:

1. transfers every remote shard (users, check-ins, adjacency lists) to
   the processing server — a query-independent bulk move accounted at
   exact wire size over the simulated 100 Mbps link (the gray bars of
   Figure 13), and
2. runs the best centralized algorithm (RMGP_all) locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.apps.spatial import Point, distance_matrix
from repro.core.combined import _solve_all as solve_all
from repro.core.instance import RMGPInstance
from repro.core.normalization import normalize
from repro.core.result import PartitionResult
from repro.distributed.messages import HEADER_BYTES, graph_shard_bytes
from repro.distributed.network import SimulatedNetwork
from repro.distributed.query import DGQuery
from repro.errors import ProtocolError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass
class FaEResult:
    """Outcome of a fetch-and-execute run, split as in Figure 13."""

    partition: PartitionResult
    transfer_seconds: float
    execution_seconds: float
    transfer_bytes: int
    extra: Dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Transfer plus local execution (the full Figure 13 column)."""
        return self.transfer_seconds + self.execution_seconds


def run_fae(
    graph: SocialGraph,
    checkins: Dict[NodeId, Point],
    shards: Sequence[Sequence[NodeId]],
    query: DGQuery,
    network: Optional[SimulatedNetwork] = None,
    local_shard: int = -1,
    seed: Optional[int] = None,
) -> FaEResult:
    """Fetch all remote shards, then solve the query locally.

    ``local_shard`` marks a shard already resident at the processing
    server (no transfer); the default ``-1`` means the server starts
    empty — the paper's setup, where a third server receives everything.
    """
    network = network or SimulatedNetwork()

    # ---- Phase 1: bulk transfer (query-independent) -------------------
    network.begin_round(0)
    transfer_seconds = 0.0
    transfer_bytes = 0
    shard_sets = [set(s) for s in shards]
    for index, shard in enumerate(shard_sets):
        if index == local_shard:
            continue
        internal_edges = 0
        for user in shard:
            internal_edges += len(graph.neighbors(user))
        # Adjacency lists ship as stored, one list per user; the count
        # above already totals directed entries, so halve the edge term.
        size = graph_shard_bytes(len(shard), internal_edges // 2) + HEADER_BYTES
        transfer_seconds += network.transfer_seconds(size)
        transfer_bytes += size

    # ---- Phase 2: local execution --------------------------------------
    start = time.perf_counter()
    if query.area is None:
        participants = graph.nodes()
    else:
        participants = [
            user for user in graph if query.area.contains(checkins[user])
        ]
    if not participants:
        raise ProtocolError("no participants inside the area of interest")
    subgraph = graph if query.area is None else graph.subgraph(participants)

    user_points = [checkins[u] for u in subgraph.nodes()]
    event_points = [e.location for e in query.events]
    cost = distance_matrix(user_points, event_points)
    instance = RMGPInstance(
        subgraph,
        classes=[e.event_id for e in query.events],
        cost=cost,
        alpha=query.alpha,
    )
    cn = 1.0
    if query.normalize is not None:
        instance, estimate = normalize(instance, query.normalize)
        cn = estimate.cn
    partition = solve_all(instance, init=query.init, seed=seed)
    execution_seconds = time.perf_counter() - start

    return FaEResult(
        partition=partition,
        transfer_seconds=transfer_seconds,
        execution_seconds=execution_seconds,
        transfer_bytes=transfer_bytes,
        extra={"cn": cn, "num_participants": len(participants)},
    )
