"""Query object shared by the decentralized game and fetch-and-execute."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.lagp import Event
from repro.apps.spatial import Rectangle
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DGQuery:
    """One decentralized LAGP query (Figure 6's ``q``).

    Attributes
    ----------
    events:
        The query-time classes with their locations.
    alpha:
        Preference parameter of Equation 1.
    area:
        Optional area of interest; only users checked-in inside it (and
        their induced subgraph) participate.
    init:
        Strategy initialization method sent to the slaves (``"closest"``
        or ``"random"``).
    normalize:
        ``None`` or ``"pessimistic"``/``"optimistic"`` — the master
        estimates ``C_N`` from slave-reported distance statistics and
        query-independent graph statistics (Section 3.3).
    seed:
        Seeds random initialization (when ``init="random"``).
    """

    events: List[Event]
    alpha: float = 0.5
    area: Optional[Rectangle] = None
    init: str = "closest"
    normalize: Optional[str] = "pessimistic"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.events:
            raise ConfigurationError("query needs at least one event")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.init not in ("closest", "random"):
            raise ConfigurationError(f"unknown init {self.init!r}")
        if self.normalize not in (None, "pessimistic", "optimistic"):
            raise ConfigurationError(f"unknown normalize {self.normalize!r}")

    @property
    def k(self) -> int:
        """Number of classes."""
        return len(self.events)
