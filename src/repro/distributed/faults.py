"""Deterministic fault injection for the simulated cluster.

The decentralized protocol of Figure 6 assumes a perfectly reliable
network and immortal slaves.  This module supplies the adversary: a
seeded, fully deterministic :class:`FaultPlan` describing which faults to
inject, and a :class:`FaultyNetwork` — a drop-in
:class:`~repro.distributed.network.SimulatedNetwork` subclass — that
applies the plan at delivery time.  Supported faults:

* **drop** — a delivery attempt is lost (its bytes still burn bandwidth,
  modeling the wasted transmission); capped per message by
  ``max_consecutive_drops`` so every message is eventually deliverable
  within a finite retry budget,
* **delay** — a delivery arrives late (extra transfer seconds),
* **duplicate** — a delivery arrives twice (second copy accounted on the
  wire, then deduplicated by sequence number at the receiver),
* **reorder** — a parallel exchange processes its messages in a
  deterministically shuffled order,
* **crash/restart** — a slave dies at a scheduled ``(round, step)``
  point and stays down for ``downtime`` simulated seconds
  (``math.inf`` = permanently dead).

Every injected fault is recorded both globally (:attr:`FaultyNetwork
.injected`) and in the per-round ledger
(:attr:`~repro.distributed.network.RoundLedger.faults`).

Determinism contract: all randomness flows from one ``random.Random``
stream seeded by :attr:`FaultPlan.seed` and consumed in protocol order —
the protocol itself is lockstep and deterministic, so the same seed
produces the identical fault schedule, byte ledger, and final
assignment.  The :class:`FaultPlan` is an immutable config; each
:class:`FaultyNetwork` derives its own stream from it, so one plan can
be replayed any number of times.  A plain :class:`SimulatedNetwork` (or
an empty plan) leaves the protocol byte-for-byte identical to the
fault-free implementation.

There is no wall-clock anywhere: timeouts, backoff and crash downtime
all live on the network's simulated :attr:`~FaultyNetwork.clock`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributed.messages import Message
from repro.distributed.network import RoundLedger, SimulatedNetwork
from repro.errors import ConfigurationError

#: Coordinator node id — deliveries are keyed on the *other* endpoint.
MASTER_ID = "M"


@dataclass(frozen=True)
class CrashEvent:
    """Kill ``slave_id`` at exchange ``step`` of round ``round_index``.

    ``step`` counts parallel exchanges within the round (0-based); the
    slave stays down for ``downtime`` simulated seconds after the crash
    (``math.inf`` marks a permanent death, exercising the degradation
    path).
    """

    slave_id: str
    round_index: int
    step: int = 0
    downtime: float = math.inf

    def __post_init__(self) -> None:
        if self.round_index < 0 or self.step < 0:
            raise ConfigurationError("crash (round, step) must be non-negative")
        if self.downtime <= 0:
            raise ConfigurationError("crash downtime must be positive")

    @property
    def permanent(self) -> bool:
        """Whether the slave never restarts."""
        return math.isinf(self.downtime)


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded description of the faults to inject."""

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_seconds: float = 0.01
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    #: Hard cap on consecutive drops of one message, guaranteeing
    #: delivery within ``max_consecutive_drops + 1`` attempts.  Raise it
    #: past the retry budget to simulate a black-holed link.
    max_consecutive_drops: int = 2
    crashes: Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.max_delay_seconds < 0:
            raise ConfigurationError("max_delay_seconds must be non-negative")
        if self.max_consecutive_drops < 0:
            raise ConfigurationError("max_consecutive_drops must be non-negative")
        # Tuples keep the plan hashable/replayable even when callers
        # pass a list of crash events.
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def message_faults_enabled(self) -> bool:
        """Whether any per-delivery fault can fire."""
        return (
            self.drop_rate > 0
            or self.delay_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
        )

    def describe(self) -> str:
        """One-line human-readable summary (for logs and runbooks)."""
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name}={rate:g}")
        for crash in self.crashes:
            when = "forever" if crash.permanent else f"{crash.downtime:g}s"
            parts.append(
                f"crash({crash.slave_id}@r{crash.round_index}.s{crash.step},{when})"
            )
        return "FaultPlan(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired, as recorded in the ledgers."""

    round_index: int
    step: int
    kind: str  # drop | delay | duplicate | reorder | crash | unreachable | recovery | reshard
    target: str
    msg_type: str = ""
    attempt: int = 0
    detail: float = 0.0


@dataclass
class DeliveryOutcome:
    """Result of one delivery attempt through the faulty network."""

    delivered: bool
    seconds: float
    duplicated: bool = False


@dataclass
class _CrashWindow:
    """An activated crash: ``[start, start + downtime)`` on the clock."""

    event: CrashEvent
    start: float

    def down_at(self, at: float) -> bool:
        return self.start <= at < self.start + self.event.downtime


class FaultyNetwork(SimulatedNetwork):
    """A :class:`SimulatedNetwork` that injects a :class:`FaultPlan`.

    The fault-aware coordinator drives deliveries through
    :meth:`attempt` (one accounted transmission, possibly faulted)
    instead of :meth:`parallel_exchange`; plain sends still work and are
    never faulted, so passing a ``FaultyNetwork`` with an empty plan is
    byte-identical to a plain network.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        *args,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.plan = plan or FaultPlan()
        self.clock = 0.0
        self.injected: List[InjectedFault] = []
        self._rng = random.Random(self.plan.seed)
        self._step = -1
        self._windows: Dict[str, _CrashWindow] = {}
        self._pending_crashes: List[str] = []
        self._pending_recovery: set = set()
        self._fired_crashes: set = set()

    # -- round/step bookkeeping ----------------------------------------
    def begin_round(self, round_index: int) -> None:
        super().begin_round(round_index)
        self._step = -1

    @property
    def step(self) -> int:
        """Current exchange index within the round (−1 before the first)."""
        return self._step

    def next_step(self) -> None:
        """Advance to the next exchange; activate scheduled crashes."""
        self._step += 1
        for event in self.plan.crashes:
            key = (event.slave_id, event.round_index, event.step)
            if key in self._fired_crashes:
                continue
            if event.round_index == self._current_round and event.step == self._step:
                self._fired_crashes.add(key)
                self._windows[event.slave_id] = _CrashWindow(event, self.clock)
                self._pending_crashes.append(event.slave_id)
                if not event.permanent:
                    self._pending_recovery.add(event.slave_id)
                self._record("crash", event.slave_id, detail=event.downtime)

    def take_new_crashes(self) -> List[str]:
        """Slaves whose crash just activated (state wipe due); clears."""
        crashed, self._pending_crashes = self._pending_crashes, []
        return crashed

    def slave_down(self, slave_id: str, at: Optional[float] = None) -> bool:
        """Whether ``slave_id`` is inside a crash window at clock ``at``."""
        window = self._windows.get(slave_id)
        if window is None:
            return False
        return window.down_at(self.clock if at is None else at)

    def needs_recovery(self, slave_id: str) -> bool:
        """Whether the slave restarted and awaits a state resync."""
        return slave_id in self._pending_recovery

    def consume_recovery(self, slave_id: str) -> bool:
        """Pop the restarted-flag; True exactly once per restart."""
        if slave_id in self._pending_recovery:
            self._pending_recovery.discard(slave_id)
            self._record("recovery", slave_id)
            return True
        return False

    # -- delivery ------------------------------------------------------
    @staticmethod
    def peer_of(message: Message) -> str:
        """The non-master endpoint of a message (retry/crash target)."""
        return message.recipient if message.recipient != MASTER_ID else message.sender

    def attempt(self, message: Message, attempt_index: int, at: float) -> DeliveryOutcome:
        """One delivery attempt at simulated time ``at``.

        Bytes are always charged (a dropped frame still crossed the
        sender's NIC); the caller folds the returned seconds into the
        exchange's parallel max and adds timeout/backoff on failure.
        """
        ledger = self._ledger()
        ledger.bytes_sent += message.total_bytes
        ledger.messages += 1
        seconds = self.transfer_seconds(message.total_bytes)
        peer = self.peer_of(message)

        if self.slave_down(peer, at):
            self._record(
                "unreachable", peer, message, attempt_index, detail=at
            )
            return DeliveryOutcome(False, seconds)

        plan = self.plan
        dropped = (
            self._rng.random() < plan.drop_rate
            and attempt_index < plan.max_consecutive_drops
        )
        delayed = self._rng.random() < plan.delay_rate
        duplicated = self._rng.random() < plan.duplicate_rate
        if dropped:
            self._record("drop", peer, message, attempt_index)
            return DeliveryOutcome(False, seconds)
        if delayed:
            extra = self._rng.uniform(0.0, plan.max_delay_seconds)
            seconds += extra
            self._record("delay", peer, message, attempt_index, detail=extra)
        if duplicated:
            # The spurious copy burns wire bytes; the receiver's
            # sequence-number dedup discards it.
            ledger.bytes_sent += message.total_bytes
            ledger.messages += 1
            self._record("duplicate", peer, message, attempt_index)
        return DeliveryOutcome(True, seconds, duplicated)

    def maybe_reorder(self, batch: List[Message]) -> List[Message]:
        """Deterministically shuffle an exchange batch, per the plan."""
        if len(batch) < 2 or self.plan.reorder_rate <= 0:
            return batch
        if self._rng.random() >= self.plan.reorder_rate:
            return batch
        order = list(range(len(batch)))
        self._rng.shuffle(order)
        self._record("reorder", "*", detail=float(len(batch)))
        return [batch[i] for i in order]

    def jitter_fraction(self) -> float:
        """Deterministic jitter sample in [0, 1) for backoff timeouts."""
        return self._rng.random()

    # -- time & bulk accounting ----------------------------------------
    def advance(self, seconds: float) -> None:
        """Charge exchange wall time to the ledger and the clock."""
        self._ledger().transfer_seconds += seconds
        self.clock += seconds

    def record_extra(self, message: Message) -> float:
        """Account an out-of-band message (e.g. recovery GSV resend).

        Bytes and count land in the ledger; the returned seconds are
        folded into the caller's elapsed time (never faulted — recovery
        rides on the just-reestablished link).
        """
        ledger = self._ledger()
        ledger.bytes_sent += message.total_bytes
        ledger.messages += 1
        return self.transfer_seconds(message.total_bytes)

    def bulk_transfer(self, num_bytes: int, kind: str, target: str) -> float:
        """Account a bulk side-channel move (FaE-style re-sharding)."""
        ledger = self._ledger()
        ledger.bytes_sent += num_bytes
        ledger.messages += 1
        seconds = self.transfer_seconds(num_bytes)
        ledger.transfer_seconds += seconds
        self.clock += seconds
        self._record(kind, target, detail=float(num_bytes))
        return seconds

    # -- fault ledger --------------------------------------------------
    def _ledger(self) -> RoundLedger:
        return self._rounds.setdefault(
            self._current_round, RoundLedger(self._current_round)
        )

    def _record(
        self,
        kind: str,
        target: str,
        message: Optional[Message] = None,
        attempt: int = 0,
        detail: float = 0.0,
    ) -> None:
        fault = InjectedFault(
            round_index=self._current_round,
            step=self._step,
            kind=kind,
            target=target,
            msg_type=message.msg_type.value if message else "",
            attempt=attempt,
            detail=detail,
        )
        self.injected.append(fault)
        self._ledger().faults.append(fault)

    def faults_by_kind(self) -> Dict[str, int]:
        """Histogram of injected fault kinds (for tests and reports)."""
        counts: Dict[str, int] = {}
        for fault in self.injected:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts
