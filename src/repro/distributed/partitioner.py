"""Distributing users across slave nodes.

"The partitioning scheme used for assigning the data to the slaves is
orthogonal to our problem" (Section 5) — so we provide the three obvious
schemes: hash (what TAO-style systems do), contiguous range, and an
edge-locality-aware scheme built on our k-way partitioner (fewer
cross-shard friendships, hence fewer remote strategy reads).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.kway import kway_partition
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId, SocialGraph


def hash_partition(users: Sequence[NodeId], num_shards: int) -> List[List[NodeId]]:
    """Assign users to shards by a stable hash of their id."""
    _check_shards(num_shards, len(users))
    shards: List[List[NodeId]] = [[] for _ in range(num_shards)]
    for user in users:
        shards[hash(user) % num_shards].append(user)
    return shards


def range_partition(users: Sequence[NodeId], num_shards: int) -> List[List[NodeId]]:
    """Contiguous, equally sized ranges in the given user order."""
    _check_shards(num_shards, len(users))
    users = list(users)
    per_shard, remainder = divmod(len(users), num_shards)
    shards: List[List[NodeId]] = []
    start = 0
    for shard in range(num_shards):
        size = per_shard + (1 if shard < remainder else 0)
        shards.append(users[start : start + size])
        start += size
    return shards


def locality_partition(
    graph: SocialGraph, num_shards: int, seed: int = 0
) -> List[List[NodeId]]:
    """Edge-locality-aware sharding via the multilevel k-way partitioner."""
    _check_shards(num_shards, graph.num_nodes)
    result = kway_partition(graph, num_shards, seed=seed)
    return result.members()


def shard_of_map(shards: Sequence[Sequence[NodeId]]) -> Dict[NodeId, int]:
    """Invert a shard list into ``user -> shard index``."""
    owner: Dict[NodeId, int] = {}
    for index, shard in enumerate(shards):
        for user in shard:
            if user in owner:
                raise ConfigurationError(f"user {user!r} assigned to two shards")
            owner[user] = index
    return owner


def cross_shard_edges(graph: SocialGraph, shards: Sequence[Sequence[NodeId]]) -> int:
    """Number of friendships crossing shard boundaries (diagnostics)."""
    owner = shard_of_map(shards)
    return sum(1 for u, v, _ in graph.edges() if owner[u] != owner[v])


def _check_shards(num_shards: int, num_users: int) -> None:
    if num_shards <= 0:
        raise ConfigurationError("num_shards must be positive")
    if num_users and num_shards > num_users:
        raise ConfigurationError(
            f"num_shards={num_shards} exceeds user count {num_users}"
        )
