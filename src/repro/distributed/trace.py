"""Message-level protocol tracing for the simulated cluster.

Wraps a :class:`~repro.distributed.network.SimulatedNetwork` so every
message is recorded with its round, type, endpoints and size — the raw
material for protocol debugging, the byte ledgers of Figure 14, and the
per-message-type breakdowns the ablation study reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.distributed.faults import DeliveryOutcome, FaultyNetwork
from repro.distributed.messages import Message, MessageType
from repro.distributed.network import SimulatedNetwork


@dataclass(frozen=True)
class TracedMessage:
    """One recorded protocol message (or delivery attempt).

    ``attempt``/``delivered`` stay at their defaults on a fault-free
    trace; a :class:`FaultTracingNetwork` records one entry per delivery
    attempt, so retransmissions of one logical message show up as
    successive attempts of the same ``seq``.
    """

    round_index: int
    msg_type: MessageType
    sender: str
    recipient: str
    total_bytes: int
    attempt: int = 0
    delivered: bool = True
    seq: int = -1


class TracingNetwork(SimulatedNetwork):
    """A :class:`SimulatedNetwork` that also logs every message.

    Drop-in replacement: pass it as the ``network`` of a cluster or an
    FaE run, then inspect :attr:`trace` or the breakdown helpers.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace: List[TracedMessage] = []
        self._round = 0

    def begin_round(self, round_index: int) -> None:
        self._round = round_index
        super().begin_round(round_index)

    def send(self, message: Message) -> float:
        self._record(message)
        return super().send(message)

    def parallel_exchange(self, messages: Iterable[Message]) -> float:
        materialized = list(messages)
        for message in materialized:
            self._record(message)
        return super().parallel_exchange(materialized)

    def _record(self, message: Message) -> None:
        self.trace.append(
            TracedMessage(
                round_index=self._round,
                msg_type=message.msg_type,
                sender=message.sender,
                recipient=message.recipient,
                total_bytes=message.total_bytes,
            )
        )

    # ------------------------------------------------------------------
    def bytes_by_type(self) -> Dict[MessageType, int]:
        """Total bytes per message type."""
        totals: Dict[MessageType, int] = {}
        for entry in self.trace:
            totals[entry.msg_type] = (
                totals.get(entry.msg_type, 0) + entry.total_bytes
            )
        return totals

    def messages_by_endpoint(self) -> Dict[Tuple[str, str], int]:
        """Message counts per (sender, recipient) pair."""
        counts: Dict[Tuple[str, str], int] = {}
        for entry in self.trace:
            key = (entry.sender, entry.recipient)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def round_trace(self, round_index: int) -> List[TracedMessage]:
        """Messages of one round, in send order."""
        return [e for e in self.trace if e.round_index == round_index]

    def format_summary(self, top: int = 10) -> str:
        """Human-readable per-type and per-endpoint summary."""
        lines = ["protocol trace summary:"]
        for msg_type, total in sorted(
            self.bytes_by_type().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {msg_type.value:18s} {total:12,d} bytes")
        lines.append("busiest links:")
        for (sender, recipient), count in sorted(
            self.messages_by_endpoint().items(), key=lambda kv: -kv[1]
        )[:top]:
            lines.append(f"  {sender} -> {recipient}: {count} messages")
        return "\n".join(lines)


class FaultTracingNetwork(FaultyNetwork):
    """A :class:`FaultyNetwork` that logs every delivery attempt.

    The trace shows retransmissions explicitly: a message that needed
    three attempts appears three times with the same ``seq`` and
    ``attempt`` 0..2, the first two with ``delivered=False`` — raw
    material for debugging a chaos run next to the injected-fault
    ledger.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace: List[TracedMessage] = []

    def attempt(self, message: Message, attempt_index: int, at: float) -> DeliveryOutcome:
        outcome = super().attempt(message, attempt_index, at)
        self.trace.append(
            TracedMessage(
                round_index=self._current_round,
                msg_type=message.msg_type,
                sender=message.sender,
                recipient=message.recipient,
                total_bytes=message.total_bytes,
                attempt=attempt_index,
                delivered=outcome.delivered,
                seq=message.seq,
            )
        )
        return outcome

    def dropped_attempts(self) -> List[TracedMessage]:
        """Attempts that never arrived (drops and down peers)."""
        return [entry for entry in self.trace if not entry.delivered]
