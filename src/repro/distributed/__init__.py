"""Decentralized RMGP: the DG framework, FaE, and the simulated cluster."""

from repro.distributed.cluster import Cluster, build_cluster
from repro.distributed.coloring import (
    DistributedColoringStats,
    distributed_coloring,
)
from repro.distributed.fae import FaEResult, run_fae
from repro.distributed.faults import (
    CrashEvent,
    DeliveryOutcome,
    FaultPlan,
    FaultyNetwork,
    InjectedFault,
)
from repro.distributed.master import (
    ChannelState,
    DecentralizedGame,
    DGResult,
    DGRoundStats,
    ReliableTransport,
    RetryPolicy,
    estimate_cn_from_reports,
)
from repro.distributed.peer import PeerToPeerGame
from repro.distributed.messages import (
    Message,
    MessageType,
    graph_shard_bytes,
)
from repro.distributed.network import RoundLedger, SimulatedNetwork
from repro.distributed.partitioner import (
    cross_shard_edges,
    hash_partition,
    locality_partition,
    range_partition,
    shard_of_map,
)
from repro.distributed.query import DGQuery
from repro.distributed.slave import SlaveInitReport, SlaveNode
from repro.distributed.trace import (
    FaultTracingNetwork,
    TracedMessage,
    TracingNetwork,
)

__all__ = [
    "ChannelState",
    "Cluster",
    "CrashEvent",
    "DGQuery",
    "DGResult",
    "DGRoundStats",
    "DecentralizedGame",
    "DeliveryOutcome",
    "DistributedColoringStats",
    "FaEResult",
    "FaultPlan",
    "FaultTracingNetwork",
    "FaultyNetwork",
    "InjectedFault",
    "Message",
    "MessageType",
    "PeerToPeerGame",
    "ReliableTransport",
    "RetryPolicy",
    "estimate_cn_from_reports",
    "RoundLedger",
    "SimulatedNetwork",
    "SlaveInitReport",
    "SlaveNode",
    "TracedMessage",
    "TracingNetwork",
    "build_cluster",
    "cross_shard_edges",
    "distributed_coloring",
    "graph_shard_bytes",
    "hash_partition",
    "locality_partition",
    "range_partition",
    "run_fae",
    "shard_of_map",
]
