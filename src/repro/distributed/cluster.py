"""Convenience wiring: dataset -> shards -> slaves -> master.

The paper's testbed distributes Foursquare over two slave servers with a
third acting as master; :func:`build_cluster` reproduces that topology
(with any slave count) from a :class:`~repro.datasets.base.GeoSocialDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datasets.base import GeoSocialDataset
from repro.distributed.coloring import distributed_coloring
from repro.distributed.faults import FaultPlan, FaultyNetwork
from repro.distributed.master import DecentralizedGame, RetryPolicy
from repro.distributed.network import SimulatedNetwork
from repro.distributed.peer import PeerToPeerGame
from repro.distributed.partitioner import hash_partition
from repro.distributed.slave import SlaveNode
from repro.errors import ConfigurationError
from repro.graph.coloring import greedy_coloring
from repro.graph.social_graph import NodeId


@dataclass
class Cluster:
    """A simulated deployment: master, slaves, network and sharding."""

    game: "DecentralizedGame | PeerToPeerGame"
    slaves: List[SlaveNode]
    shards: List[List[NodeId]]
    coloring: Dict[NodeId, int]
    network: SimulatedNetwork


def build_cluster(
    dataset: GeoSocialDataset,
    num_slaves: int = 2,
    network: Optional[SimulatedNetwork] = None,
    shards: Optional[Sequence[Sequence[NodeId]]] = None,
    use_distributed_coloring: bool = True,
    protocol: str = "relayed",
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    degrade: bool = True,
) -> Cluster:
    """Assemble a simulated cluster over ``dataset``.

    ``shards`` overrides the default hash partitioning.  The coloring is
    computed off-line — via the distributed algorithm by default (as the
    paper requires), or centrally with ``use_distributed_coloring=False``.
    ``protocol`` selects the coordinator: ``"relayed"`` (Figure 6,
    everything flows through M) or ``"peer"`` (direct slave-to-slave
    change broadcast, Section 5's suggested extension).

    ``fault_plan`` builds the cluster over a
    :class:`~repro.distributed.faults.FaultyNetwork` injecting that plan;
    ``retry_policy`` tunes the reliability layer and ``degrade`` chooses
    between re-sharding dead slaves onto survivors (True) and raising
    :class:`~repro.errors.SlaveUnreachableError` (False).
    """
    if num_slaves <= 0:
        raise ConfigurationError("num_slaves must be positive")
    if protocol not in ("relayed", "peer"):
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    if fault_plan is not None:
        if network is not None:
            raise ConfigurationError(
                "pass either a prebuilt network or a fault_plan, not both"
            )
        network = FaultyNetwork(fault_plan)
    users = dataset.graph.nodes()
    if shards is None:
        shards = hash_partition(users, num_slaves)
    else:
        shards = [list(s) for s in shards]
        covered = set()
        for shard in shards:
            covered.update(shard)
        if covered != set(users):
            raise ConfigurationError("shards must cover every user exactly")

    if use_distributed_coloring:
        coloring, _stats = distributed_coloring(dataset.graph, shards)
    else:
        coloring = greedy_coloring(dataset.graph)

    network = network or SimulatedNetwork()
    slaves = [
        SlaveNode(
            slave_id=f"slave-{index}",
            graph=dataset.graph,
            local_users=shard,
            checkins=dataset.checkins,
            coloring=coloring,
        )
        for index, shard in enumerate(shards)
    ]
    if protocol == "relayed":
        game: "DecentralizedGame | PeerToPeerGame" = DecentralizedGame(
            slaves,
            network=network,
            deg_avg=dataset.graph.average_degree(),
            w_avg=dataset.graph.average_edge_weight(),
            retry_policy=retry_policy,
            degrade=degrade,
        )
    else:
        game = PeerToPeerGame(
            slaves,
            network=network,
            deg_avg=dataset.graph.average_degree(),
            w_avg=dataset.graph.average_edge_weight(),
            retry_policy=retry_policy,
        )
    return Cluster(
        game=game,
        slaves=slaves,
        shards=[list(s) for s in shards],
        coloring=coloring,
        network=network,
    )
