"""Message types of the decentralized game protocol (Figure 6).

Every payload knows its serialized size in bytes so the simulated network
(:mod:`repro.distributed.network`) can account transfer volumes exactly —
the quantity plotted on the right axis of Figure 14.  Sizes use a compact
binary encoding: 4-byte integers for ids/classes/colors, 8-byte floats
for coordinates and parameters, plus a fixed per-message header.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import TraceContext

HEADER_BYTES = 24
INT_BYTES = 4
FLOAT_BYTES = 8


class MessageType(Enum):
    """Protocol step the message belongs to."""

    INIT = "init"
    LOCAL_STRATEGIES = "lsv"
    GLOBAL_STRATEGIES = "gsv"
    ACK = "ack"
    COMPUTE_COLOR = "compute_color"
    STRATEGY_CHANGES = "strategy_changes"
    TERMINATE = "terminate"


@dataclass(frozen=True)
class Message:
    """One protocol message with its byte-accounted payload.

    ``seq`` is the per-link sequence number stamped by the reliability
    layer (see :class:`~repro.distributed.master.ReliableTransport`); it
    rides inside the fixed :data:`HEADER_BYTES` header, so stamping it
    never changes a message's wire size.  ``-1`` means unsequenced (the
    fault-free fast path never stamps).

    ``trace`` is the causal :class:`~repro.obs.context.TraceContext`
    stamped by the master **only when a recorder is attached** — like
    ``seq`` it rides in the fixed header and never contributes wire
    bytes, so byte ledgers are identical with tracing on or off.
    """

    msg_type: MessageType
    sender: str
    recipient: str
    payload_bytes: int
    seq: int = -1
    trace: "Optional[TraceContext]" = None

    @property
    def total_bytes(self) -> int:
        """Wire size: header plus payload."""
        return HEADER_BYTES + self.payload_bytes


def with_seq(message: Message, seq: int) -> Message:
    """Copy of ``message`` stamped with sequence number ``seq``."""
    return replace(message, seq=seq)


def with_trace(message: Message, ctx: "TraceContext") -> Message:
    """Copy of ``message`` carrying trace context ``ctx`` (0 wire bytes)."""
    return replace(message, trace=ctx)


def init_message(
    sender: str,
    recipient: str,
    num_events: int,
    has_area: bool,
) -> Message:
    """M -> slave: the query (events, α, area, init method).

    Events ship as id + (x, y); the area adds four floats; α and the
    init-method flag one float and one int.
    """
    payload = num_events * (INT_BYTES + 2 * FLOAT_BYTES)
    payload += FLOAT_BYTES + INT_BYTES
    if has_area:
        payload += 4 * FLOAT_BYTES
    return Message(MessageType.INIT, sender, recipient, payload)


def lsv_message(sender: str, recipient: str, num_players: int, num_colors: int) -> Message:
    """Slave -> M: local strategic vector plus the distinct local colors."""
    payload = num_players * (INT_BYTES + INT_BYTES) + num_colors * INT_BYTES
    return Message(MessageType.LOCAL_STRATEGIES, sender, recipient, payload)


def gsv_message(sender: str, recipient: str, num_players: int) -> Message:
    """M -> slave: the full global strategic vector (round 0 peak)."""
    payload = num_players * (INT_BYTES + INT_BYTES)
    return Message(MessageType.GLOBAL_STRATEGIES, sender, recipient, payload)


def ack_message(sender: str, recipient: str) -> Message:
    """Empty acknowledgment."""
    return Message(MessageType.ACK, sender, recipient, 0)


def compute_color_message(
    sender: str, recipient: str, with_deadline: bool = False
) -> Message:
    """M -> slave: "compute best responses for color c" (one int).

    Under a real-time deadline the remaining budget rides along as one
    extra float so slaves can refuse work on their own; without a
    deadline the wire size is unchanged, keeping fault-free ledgers
    byte-identical to the pre-deadline protocol.
    """
    payload = INT_BYTES
    if with_deadline:
        payload += FLOAT_BYTES
    return Message(MessageType.COMPUTE_COLOR, sender, recipient, payload)


def strategy_changes_message(
    sender: str, recipient: str, num_changes: int
) -> Message:
    """Deviations as ``(user id, new class)`` pairs, both directions."""
    payload = num_changes * (INT_BYTES + INT_BYTES)
    return Message(MessageType.STRATEGY_CHANGES, sender, recipient, payload)


def terminate_message(sender: str, recipient: str) -> Message:
    """M -> slave: the game ended."""
    return Message(MessageType.TERMINATE, sender, recipient, 0)


def graph_shard_bytes(num_users: int, num_edges: int) -> int:
    """Wire size of shipping a graph shard (FaE's bulk transfer).

    Per user: id + last check-in coordinates; per adjacency entry:
    friend id + weight.  Each undirected edge appears in two adjacency
    lists, hence the factor 2.
    """
    return (
        num_users * (INT_BYTES + 2 * FLOAT_BYTES)
        + 2 * num_edges * (INT_BYTES + FLOAT_BYTES)
    )
