"""Slave node of the decentralized game (Figure 6, right column).

A slave owns a shard of users: their last check-ins and their full
adjacency lists (which may reference users living on other slaves — the
remote strategies arrive via the global strategic vector).  Per query the
slave:

1. determines its local participants (area filter),
2. computes their distance rows — the expensive part of round 0 ("more
   than 2.2 billion computations of euclidean distances", Section 6.4),
3. initializes local strategies and reports the LSV,
4. on each ``compute color c`` command, returns the best-response
   deviations of its *dirty* local players of that color (a local
   RMGP_gt step over the shared dirty-frontier scheduler,
   :class:`repro.core.dynamics.ActiveSet`), and
5. applies redistributed strategy changes to its local table copies —
   one vectorized fancy-index update per change via pre-built watcher
   arrays — marking each touched watcher dirty for the next round.

Fault tolerance (see :mod:`repro.distributed.faults`): the shard data
(users, adjacency, check-ins, coloring) is durable — it survives a
:meth:`SlaveNode.crash`, which wipes only the volatile per-query state.
After every round the slave saves a :meth:`SlaveNode.checkpoint` of its
local strategy vector to durable storage; a restarted slave runs
:meth:`SlaveNode.resync` to re-derive the volatile state from the
checkpoint plus the master's authoritative GSV.  When a slave dies
permanently, a survivor takes over its block via
:meth:`SlaveNode.absorb_shard` (the FaE-style transfer the master
accounts in the byte ledger).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.apps.spatial import Point
from repro.core import dynamics
from repro.core.dynamics import DEVIATION_TOLERANCE
from repro.distributed.query import DGQuery
from repro.errors import ProtocolError
from repro.graph.social_graph import NodeId, SocialGraph
from repro.obs.context import TraceContext


@dataclass
class SlaveInitReport:
    """What a slave reports after initialization (the LSV message)."""

    local_strategies: Dict[NodeId, int]
    colors: Set[int]
    sum_min_distance: float
    sum_median_distance: float
    num_participants: int
    compute_seconds: float
    distance_computations: int


class SlaveNode:
    """One slave server holding a shard of the social graph."""

    def __init__(
        self,
        slave_id: str,
        graph: SocialGraph,
        local_users: Sequence[NodeId],
        checkins: Dict[NodeId, Point],
        coloring: Dict[NodeId, int],
    ) -> None:
        self.slave_id = slave_id
        self.local_users = list(local_users)
        self._adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            user: dict(graph.neighbors(user)) for user in self.local_users
        }
        self._checkins = {user: checkins[user] for user in self.local_users}
        self._coloring = coloring

        # Per-query state, populated by initialize()/receive_gsv().
        self._query: Optional[DGQuery] = None
        self._participants: List[NodeId] = []
        self._local_index: Dict[NodeId, int] = {}
        self._table: Optional[np.ndarray] = None
        self._raw_rows: Optional[np.ndarray] = None
        self._assignment: Dict[NodeId, int] = {}
        self._active: Optional[dynamics.ActiveSet] = None
        self._gsv: Dict[NodeId, int] = {}
        # friend -> (local row indices, edge weights) as numpy arrays, so
        # one redistributed change is one vectorized table update.
        self._watchers: Dict[NodeId, Tuple[np.ndarray, np.ndarray]] = {}
        self._max_social: Optional[np.ndarray] = None
        self._by_color: Dict[int, List[int]] = {}
        self._cn: float = 1.0

        # Fault-tolerance state: the checkpoint lives on durable storage
        # (it survives crash()), ``crashed`` marks a down process.
        self._checkpoint: Optional[Dict] = None
        self.crashed = False

    # ------------------------------------------------------------------
    # Figure 6 lines 2-5: local initialization and the LSV
    # ------------------------------------------------------------------
    def initialize(
        self, query: DGQuery, ctx: Optional[TraceContext] = None
    ) -> SlaveInitReport:
        """Select participants, compute distance rows, init strategies.

        ``ctx`` (set only while a recorder traces the run) records the
        initialization as a ``slave.init`` span on the shared simulated
        timeline, causally under the master's round-0 span.
        """
        start = time.perf_counter()
        self._query = query
        rng = random.Random(query.seed)

        if query.area is None:
            self._participants = list(self.local_users)
        else:
            self._participants = [
                user
                for user in self.local_users
                if query.area.contains(self._checkins[user])
            ]
        self._local_index = {u: i for i, u in enumerate(self._participants)}
        self._by_color = {}
        for i, user in enumerate(self._participants):
            self._by_color.setdefault(self._coloring[user], []).append(i)

        n, k = len(self._participants), query.k
        rows = np.empty((n, k), dtype=np.float64)
        for i, user in enumerate(self._participants):
            ux, uy = self._checkins[user]
            for j, event in enumerate(query.events):
                ex, ey = event.location
                rows[i, j] = math.hypot(ux - ex, uy - ey)
        self._raw_rows = rows

        if query.init == "closest" and n:
            strategies = rows.argmin(axis=1)
        else:
            strategies = np.fromiter(
                (rng.randrange(k) for _ in range(n)), dtype=np.int64, count=n
            )
        self._assignment = {
            user: int(strategies[i]) for i, user in enumerate(self._participants)
        }

        elapsed = time.perf_counter() - start
        if ctx is not None:
            ctx.record(
                "slave.init",
                node=self.slave_id,
                start=ctx.sim_time,
                end=ctx.sim_time + elapsed,
                participants=n,
                distance_computations=n * k,
            )
        return SlaveInitReport(
            local_strategies=dict(self._assignment),
            colors={self._coloring[u] for u in self._participants},
            sum_min_distance=float(rows.min(axis=1).sum()) if n else 0.0,
            sum_median_distance=float(np.median(rows, axis=1).sum()) if n else 0.0,
            num_participants=n,
            compute_seconds=elapsed,
            distance_computations=n * k,
        )

    # ------------------------------------------------------------------
    # Figure 6 lines 10-13: store the GSV and build the global table
    # ------------------------------------------------------------------
    def receive_gsv(
        self,
        gsv: Dict[NodeId, int],
        cn: float = 1.0,
        ctx: Optional[TraceContext] = None,
    ) -> float:
        """Store the global strategic vector; build the local RMGP_gt state.

        ``cn`` is the master-estimated normalization constant scaling the
        assignment costs (1.0 = no normalization).  Returns the compute
        time spent (for the master's parallel accounting).  ``ctx``
        records the table build as a ``slave.build_table`` span.
        """
        if self._query is None or self._raw_rows is None:
            raise ProtocolError(f"slave {self.slave_id}: GSV before INIT")
        start = time.perf_counter()
        self._gsv = dict(gsv)
        self._cn = cn
        query = self._query
        alpha = query.alpha
        n = len(self._participants)

        # Restrict adjacency to participating friends in one scan: build
        # the reverse "watchers" map (as numpy arrays, so later strategy
        # changes are one vectorized update each) and collect every
        # refund's linearized (row, friend's class) key for one bincount
        # scatter over the table below.
        participating = self._gsv  # every participant appears in the GSV
        k = query.k
        watcher_rows: Dict[NodeId, List[int]] = {}
        watcher_weights: Dict[NodeId, List[float]] = {}
        refund_keys: List[int] = []
        refund_weights: List[float] = []
        self._max_social = np.zeros(n, dtype=np.float64)
        for i, user in enumerate(self._participants):
            for friend, weight in self._adjacency[user].items():
                strategy = participating.get(friend)
                if strategy is None:
                    continue
                watcher_rows.setdefault(friend, []).append(i)
                watcher_weights.setdefault(friend, []).append(weight)
                refund_keys.append(i * k + strategy)
                refund_weights.append(weight)
                self._max_social[i] += 0.5 * weight
        self._max_social *= 1.0 - alpha
        self._watchers = {
            friend: (
                np.asarray(rows_, dtype=np.int64),
                np.asarray(watcher_weights[friend], dtype=np.float64),
            )
            for friend, rows_ in watcher_rows.items()
        }

        # The slaves run the RMGP_all recipe (Section 6.4): the global
        # table is restricted by strategy elimination — classes whose
        # scaled assignment cost exceeds the valid region VR_v can never
        # be best responses and are pinned to +inf.
        scaled = cn * self._raw_rows
        table = alpha * scaled.copy()
        table += self._max_social[:, None]
        if n:
            ratio = (1.0 - alpha) / alpha
            bounds = (
                scaled.min(axis=1)
                + ratio * (self._max_social / (1.0 - alpha))
            )
            table[scaled > bounds[:, None] + 1e-12] = np.inf
        if refund_keys:
            refunds = (1.0 - alpha) * 0.5 * np.asarray(
                refund_weights, dtype=np.float64
            )
            table -= np.bincount(
                np.asarray(refund_keys, dtype=np.int64),
                weights=refunds,
                minlength=n * k,
            ).reshape(n, k)
        self._table = table

        current = np.fromiter(
            (self._assignment[u] for u in self._participants),
            dtype=np.int64,
            count=n,
        )
        if n:
            own = table[np.arange(n), current]
            happy = own <= table.min(axis=1) + DEVIATION_TOLERANCE
            self._active = dynamics.ActiveSet(n, dirty=~happy)
        else:
            self._active = dynamics.ActiveSet(0)
        elapsed = time.perf_counter() - start
        if ctx is not None:
            ctx.record(
                "slave.build_table",
                node=self.slave_id,
                start=ctx.sim_time,
                end=ctx.sim_time + elapsed,
                participants=n,
                initial_dirty=int(self._active.count()),
            )
        return elapsed

    # ------------------------------------------------------------------
    # Figure 6 lines 17-19: best responses for one color
    # ------------------------------------------------------------------
    def compute_color(
        self,
        color: int,
        remaining_seconds: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Tuple[Dict[NodeId, int], float]:
        """Deviations of local dirty players with ``color``.

        Returns ``(changes, compute seconds)``.  Changes are *not*
        applied locally yet — they come back via the master's
        redistribution, exactly as in Figure 6.  A dirty player whose
        best response turns out to be his current strategy is cleared
        here; a deviating player stays dirty until his change comes back
        through :meth:`apply_changes`.

        ``remaining_seconds`` is the master's remaining real-time budget
        (shipped with the COMPUTE_COLOR message).  A slave whose budget
        has run out skips the sweep entirely — a *degraded* phase: no
        dirty flag is cleared, so the skipped players are retried by a
        later round or a resumed solve.
        """
        if self._table is None or self._active is None:
            raise ProtocolError(f"slave {self.slave_id}: compute before GSV")
        if remaining_seconds is not None and remaining_seconds <= 0.0:
            if ctx is not None:
                ctx.record(
                    "slave.compute",
                    node=self.slave_id,
                    start=ctx.sim_time,
                    end=ctx.sim_time,
                    color=color,
                    examined=0,
                    changes=0,
                    skipped=True,
                )
            return {}, 0.0
        start = time.perf_counter()
        changes: Dict[NodeId, int] = {}
        examined = 0
        flags = self._active.flags
        for i in self._by_color.get(color, ()):
            if not flags[i]:
                continue
            examined += 1
            user = self._participants[i]
            row = self._table[i]
            current = self._assignment[user]
            best = int(row.argmin())
            if row[best] < row[current] - DEVIATION_TOLERANCE:
                changes[user] = best
            else:
                flags[i] = False
        elapsed = time.perf_counter() - start
        if ctx is not None:
            ctx.record(
                "slave.compute",
                node=self.slave_id,
                start=ctx.sim_time,
                end=ctx.sim_time + elapsed,
                color=color,
                examined=examined,
                changes=len(changes),
            )
        return changes, elapsed

    # ------------------------------------------------------------------
    # Figure 6 lines 22-24: apply redistributed changes
    # ------------------------------------------------------------------
    def apply_changes(
        self,
        changes: Dict[NodeId, int],
        ctx: Optional[TraceContext] = None,
    ) -> float:
        """Update the local GSV, tables and dirty frontier; returns seconds.

        Each change is one vectorized fancy-index update over the
        watcher arrays (exactly two entries of every watcher's row move
        by ``½·w``).  Watchers are *marked dirty* rather than having
        their happiness recomputed eagerly — the next ``compute_color``
        performs the exact argmin test anyway, so the emitted change
        messages are identical and the per-change work stays O(degree).
        """
        if self._table is None or self._active is None:
            raise ProtocolError(f"slave {self.slave_id}: apply before GSV")
        start = time.perf_counter()
        alpha = self._query.alpha if self._query else 0.5
        half = (1.0 - alpha) * 0.5
        for user, new_class in changes.items():
            old_class = self._gsv.get(user)
            if old_class is None:
                raise ProtocolError(
                    f"slave {self.slave_id}: change for non-participant {user!r}"
                )
            self._gsv[user] = new_class
            if user in self._local_index:
                local = self._local_index[user]
                self._assignment[user] = new_class
                self._active.clear([local])
            watchers = self._watchers.get(user)
            if watchers is not None:
                locals_, weights = watchers
                deltas = half * weights
                self._table[locals_, new_class] -= deltas
                self._table[locals_, old_class] += deltas
                self._active.mark(locals_)
        elapsed = time.perf_counter() - start
        if ctx is not None:
            ctx.record(
                "slave.apply",
                node=self.slave_id,
                start=ctx.sim_time,
                end=ctx.sim_time + elapsed,
                changes=len(changes),
            )
        return elapsed

    # ------------------------------------------------------------------
    # Fault tolerance: checkpoint / crash / resync / shard adoption
    # ------------------------------------------------------------------
    def checkpoint(self, round_index: int) -> None:
        """Persist the local strategy vector to durable storage.

        Lightweight by design — strategies and the normalization
        constant only; tables and distance rows are re-derivable from
        the shard data plus the master's GSV on restart.
        """
        self._checkpoint = {
            "round": round_index,
            "assignment": dict(self._assignment),
            "cn": self._cn,
        }

    @property
    def last_checkpoint_round(self) -> Optional[int]:
        """Round of the newest durable checkpoint (None = never saved)."""
        return self._checkpoint["round"] if self._checkpoint else None

    def crash(self) -> None:
        """Kill the process: volatile per-query state is lost.

        The shard data (users, adjacency, check-ins, coloring) and the
        last checkpoint live on disk and survive.
        """
        self.crashed = True
        self._query = None
        self._participants = []
        self._local_index = {}
        self._table = None
        self._raw_rows = None
        self._assignment = {}
        self._active = None
        self._gsv = {}
        self._watchers = {}
        self._max_social = None
        self._by_color = {}

    def resync(
        self,
        query: DGQuery,
        gsv: Optional[Dict[NodeId, int]],
        cn: float = 1.0,
        ctx: Optional[TraceContext] = None,
    ) -> float:
        """Rebuild volatile state after a restart (or shard adoption).

        Recomputes participants and distance rows from the durable
        shard, resumes strategies from the last checkpoint, then lets
        the master's authoritative ``gsv`` override them before the
        local game table is rebuilt — so a recovered slave is exactly
        consistent with the coordinator.  Returns compute seconds.
        """
        start = time.perf_counter()
        self.crashed = False
        self.initialize(query)
        if self._checkpoint:
            for user, strategy in self._checkpoint["assignment"].items():
                if user in self._local_index:
                    self._assignment[user] = strategy
        seconds = time.perf_counter() - start
        if gsv is not None:
            for user in self._participants:
                if user in gsv:
                    self._assignment[user] = gsv[user]
            seconds += self.receive_gsv(gsv, cn)
        if ctx is not None:
            ctx.record(
                "slave.resync",
                node=self.slave_id,
                start=ctx.sim_time,
                end=ctx.sim_time + seconds,
                participants=len(self._participants),
                from_checkpoint=(
                    self._checkpoint["round"] if self._checkpoint else None
                ),
            )
        return seconds

    def absorb_shard(self, dead: "SlaveNode") -> None:
        """Take ownership of a permanently dead slave's shard.

        Copies the durable block (users, adjacency, check-ins, colors);
        the caller accounts the FaE-style wire transfer and triggers
        :meth:`resync` to fold the adopted players into the query state.
        """
        for user in dead.local_users:
            if user in self._adjacency:
                raise ProtocolError(
                    f"slave {self.slave_id}: already owns user {user!r}"
                )
            self.local_users.append(user)
            self._adjacency[user] = dict(dead._adjacency[user])
            self._checkins[user] = dead._checkins[user]
            self._coloring[user] = dead._coloring[user]

    # ------------------------------------------------------------------
    @property
    def participants(self) -> List[NodeId]:
        """Local users taking part in the current query."""
        return list(self._participants)

    def local_assignment(self) -> Dict[NodeId, int]:
        """Current strategies of the local participants."""
        return dict(self._assignment)
