"""Spatial primitives: points, distances, and a uniform grid index.

LAGP queries need (i) user-to-event distances (the assignment cost),
(ii) nearest-event lookups (the ``closest`` initialization heuristic) and
(iii) area-of-interest filters ("only the users who recently checked-in
that area ... are relevant", Section 1).  A simple uniform grid gives
all three with predictable performance at the paper's scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

Point = Tuple[float, float]

EARTH_RADIUS_KM = 6371.0088


def euclidean(a: Point, b: Point) -> float:
    """Plain Euclidean distance (the paper's LAGP cost, Figure 1)."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def haversine_km(a: Point, b: Point) -> float:
    """Great-circle distance in kilometers for ``(lat, lon)`` degrees.

    Real check-in datasets (Gowalla, Foursquare) store geographic
    coordinates; this is the appropriate metric there.
    """
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def distance_matrix(
    users: Sequence[Point],
    events: Sequence[Point],
    metric: str = "euclidean",
) -> np.ndarray:
    """Dense ``|users| x |events|`` distance matrix.

    ``metric`` is ``"euclidean"`` (vectorized) or ``"haversine"``.
    This is the assignment-cost matrix of a LAGP query; the paper notes
    that for Foursquare with k=1024 this step alone involves billions of
    distance computations (Section 6.4).
    """
    if metric == "euclidean":
        if not users or not events:
            return np.zeros((len(users), len(events)))
        u = np.asarray(users, dtype=np.float64)
        e = np.asarray(events, dtype=np.float64)
        diff = u[:, None, :] - e[None, :, :]
        return np.sqrt((diff * diff).sum(axis=2))
    if metric == "haversine":
        matrix = np.empty((len(users), len(events)), dtype=np.float64)
        for i, user in enumerate(users):
            for j, event in enumerate(events):
                matrix[i, j] = haversine_km(user, event)
        return matrix
    raise ConfigurationError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class Rectangle:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ConfigurationError("rectangle has negative extent")

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside (borders included)."""
        return (
            self.x_min <= point[0] <= self.x_max
            and self.y_min <= point[1] <= self.y_max
        )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min


class GridIndex:
    """Uniform grid over 2-d points supporting range and k-NN queries."""

    def __init__(self, points: Dict, cell_size: float) -> None:
        """Index ``points`` (id -> (x, y)) with square cells of ``cell_size``."""
        if cell_size <= 0:
            raise ConfigurationError("cell_size must be positive")
        self._points = dict(points)
        self._cell = float(cell_size)
        self._buckets: Dict[Tuple[int, int], List] = {}
        for pid, (x, y) in self._points.items():
            self._buckets.setdefault(self._key(x, y), []).append(pid)

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self._cell)), int(math.floor(y / self._cell)))

    def __len__(self) -> int:
        return len(self._points)

    def location(self, pid) -> Point:
        """Indexed position of ``pid``."""
        return self._points[pid]

    def range_query(self, rect: Rectangle) -> List:
        """Ids of all points inside ``rect``."""
        x0, _ = self._key(rect.x_min, rect.y_min)
        y0 = int(math.floor(rect.y_min / self._cell))
        x1 = int(math.floor(rect.x_max / self._cell))
        y1 = int(math.floor(rect.y_max / self._cell))
        found = []
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                for pid in self._buckets.get((cx, cy), ()):
                    if rect.contains(self._points[pid]):
                        found.append(pid)
        return found

    def nearest(self, point: Point, count: int = 1) -> List:
        """The ``count`` indexed points closest to ``point`` (Euclidean).

        Expands the search ring by ring; exact because a candidate at
        distance ``d`` rules out any cell farther than ``d`` away.
        """
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if not self._points:
            return []
        count = min(count, len(self._points))
        cx, cy = self._key(point[0], point[1])
        # No occupied bucket lies beyond this many rings from the query,
        # so reaching it guarantees every point has been examined.
        last_ring = max(
            max(abs(bx - cx), abs(by - cy)) for bx, by in self._buckets
        )
        best: List[Tuple[float, object]] = []
        ring = 0
        while True:
            candidates = []
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue
                    candidates.extend(self._buckets.get((cx + dx, cy + dy), ()))
            for pid in candidates:
                best.append((euclidean(point, self._points[pid]), pid))
            best.sort(key=lambda pair: pair[0])
            best = best[: count * 4]
            if ring >= last_ring:
                return [pid for _, pid in best[:count]]
            # Safe to stop early once the k-th best is closer than the
            # nearest unexplored ring's boundary.
            if len(best) >= count and best[count - 1][0] <= ring * self._cell:
                return [pid for _, pid in best[:count]]
            ring += 1
