"""LAGP — Location-Aware Graph Partitioning (Example 1, Section 6).

A geo-social network promotes upcoming events: each event is a class,
the assignment cost of a user is his distance (or travel time) to the
event, and RMGP recommends to every user an event that is nearby *and*
recommended to several of his friends.

:class:`LAGPTask` holds the long-lived state — the social graph, the
location hash table of last check-ins (Section 6's second hash table) and
the event catalog — and answers repeated real-time queries that may
restrict the audience to an area of interest, change the event subset,
``α``, or the algorithm variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.apps.spatial import GridIndex, Point, Rectangle, distance_matrix
from repro.core.game import RMGPGame
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass(frozen=True)
class Event:
    """An event/venue a user can be recommended to attend."""

    event_id: Hashable
    location: Point
    name: str = ""

    def __str__(self) -> str:
        label = self.name or str(self.event_id)
        return f"{label}@({self.location[0]:.3g}, {self.location[1]:.3g})"


@dataclass
class LAGPResult:
    """Answer to one LAGP query.

    ``recommendation`` maps each participating user to the recommended
    :class:`Event`; ``partition`` is the underlying solver output with
    costs and round trace.
    """

    recommendation: Dict[NodeId, Event]
    partition: PartitionResult
    participants: List[NodeId]
    events: List[Event]

    def attendees(self) -> Dict[Hashable, List[NodeId]]:
        """Users grouped by recommended event id."""
        groups: Dict[Hashable, List[NodeId]] = {e.event_id: [] for e in self.events}
        for user, event in self.recommendation.items():
            groups[event.event_id].append(user)
        return groups


class LAGPTask:
    """Long-lived LAGP state answering repeated real-time queries."""

    def __init__(
        self,
        graph: SocialGraph,
        checkins: Dict[NodeId, Point],
        events: Sequence[Event],
        metric: str = "euclidean",
        grid_cell: Optional[float] = None,
    ) -> None:
        missing = [node for node in graph if node not in checkins]
        if missing:
            raise ConfigurationError(
                f"users without check-ins: {sorted(map(repr, missing))[:5]}"
            )
        if not events:
            raise ConfigurationError("need at least one event")
        ids = [e.event_id for e in events]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("event ids must be distinct")
        self.graph = graph
        self.checkins = dict(checkins)
        self.events = list(events)
        self.metric = metric
        if grid_cell is None:
            grid_cell = _default_cell(self.checkins)
        self.user_index = GridIndex(
            {node: checkins[node] for node in graph}, grid_cell
        )

    # ------------------------------------------------------------------
    def check_in(self, user: NodeId, location: Point) -> None:
        """Update a user's last check-in (locations "may be updated
        through check-ins", Section 1).  Rebuilding the grid lazily per
        query keeps updates O(1)."""
        if user not in self.graph:
            raise ConfigurationError(f"unknown user {user!r}")
        self.checkins[user] = location
        self.user_index = None  # type: ignore[assignment]

    def participants_in(self, area: Optional[Rectangle]) -> List[NodeId]:
        """Users participating in a query: all, or those inside ``area``."""
        if area is None:
            return self.graph.nodes()
        if self.user_index is None:
            self.user_index = GridIndex(
                {node: self.checkins[node] for node in self.graph},
                _default_cell(self.checkins),
            )
        return self.user_index.range_query(area)

    def build_game(
        self,
        area: Optional[Rectangle] = None,
        events: Optional[Sequence[Event]] = None,
        alpha: float = 0.5,
    ) -> "Tuple[RMGPGame, List[NodeId], List[Event]]":
        """Construct the RMGP game for one query without solving it."""
        chosen_events = list(events) if events is not None else self.events
        if not chosen_events:
            raise ConfigurationError("query needs at least one event")
        participants = self.participants_in(area)
        if not participants:
            raise ConfigurationError("no users inside the area of interest")
        subgraph = (
            self.graph if area is None else self.graph.subgraph(participants)
        )
        user_points = [self.checkins[u] for u in subgraph.nodes()]
        event_points = [e.location for e in chosen_events]
        cost = distance_matrix(user_points, event_points, self.metric)
        game = RMGPGame(
            subgraph,
            classes=[e.event_id for e in chosen_events],
            cost=cost,
            alpha=alpha,
        )
        return game, subgraph.nodes(), chosen_events

    def query(
        self,
        area: Optional[Rectangle] = None,
        events: Optional[Sequence[Event]] = None,
        alpha: float = 0.5,
        method: str = "all",
        normalize_method: Optional[str] = "pessimistic",
        **solver_kwargs,
    ) -> LAGPResult:
        """Answer one LAGP query end to end.

        Defaults follow the paper's final experimental configuration:
        RMGP_all with pessimistic normalization.
        """
        game, participants, chosen_events = self.build_game(area, events, alpha)
        partition = game.solve(
            method=method, normalize_method=normalize_method, **solver_kwargs
        )
        by_id = {e.event_id: e for e in chosen_events}
        recommendation = {
            user: by_id[label] for user, label in partition.labels.items()
        }
        return LAGPResult(
            recommendation=recommendation,
            partition=partition,
            participants=participants,
            events=chosen_events,
        )


def _default_cell(checkins: Dict[NodeId, Point]) -> float:
    """Grid cell targeting ~1 point per cell on uniform data."""
    if not checkins:
        return 1.0
    xs = [p[0] for p in checkins.values()]
    ys = [p[1] for p in checkins.values()]
    extent = max(max(xs) - min(xs), max(ys) - min(ys))
    if extent <= 0:
        return 1.0
    return max(extent / max(1.0, len(checkins) ** 0.5), extent * 1e-6)
