"""From-scratch tf-idf vectorization and cosine (dis)similarity.

TAGP (Example 2) measures the assignment cost of a user to an
advertisement with "some (dis-)similarity measure (e.g., tf-idf) between
his current discussions and the advertisement topic".  This module
provides the standard tf-idf pipeline used by
:mod:`repro.apps.tagp`: tokenize, build a vocabulary with smoothed
inverse document frequencies, embed documents as sparse vectors, and
compare them by cosine similarity.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError

_TOKEN_RE = re.compile(r"[a-z0-9]+")

SparseVector = Dict[str, float]


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of ``text``."""
    return _TOKEN_RE.findall(text.lower())


def term_frequencies(tokens: Sequence[str]) -> Dict[str, float]:
    """Relative term frequencies of a token list (empty dict if empty)."""
    if not tokens:
        return {}
    counts: Dict[str, int] = {}
    for token in tokens:
        counts[token] = counts.get(token, 0) + 1
    total = float(len(tokens))
    return {term: count / total for term, count in counts.items()}


@dataclass
class TfIdfModel:
    """A fitted vocabulary with smoothed idf weights.

    ``idf(t) = ln((1 + N) / (1 + df(t))) + 1`` — the standard smoothed
    form that never zeroes out a term entirely.
    """

    idf: Dict[str, float]
    num_documents: int

    def transform(self, text: str) -> SparseVector:
        """Embed ``text``; out-of-vocabulary terms are dropped."""
        tf = term_frequencies(tokenize(text))
        return {
            term: frequency * self.idf[term]
            for term, frequency in tf.items()
            if term in self.idf
        }


def fit_tfidf(documents: Iterable[str]) -> TfIdfModel:
    """Fit a :class:`TfIdfModel` on a corpus of raw strings."""
    documents = list(documents)
    if not documents:
        raise ConfigurationError("tf-idf needs at least one document")
    document_frequency: Dict[str, int] = {}
    for document in documents:
        for term in set(tokenize(document)):
            document_frequency[term] = document_frequency.get(term, 0) + 1
    n = len(documents)
    idf = {
        term: math.log((1.0 + n) / (1.0 + df)) + 1.0
        for term, df in document_frequency.items()
    }
    return TfIdfModel(idf=idf, num_documents=n)


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity in ``[0, 1]`` for non-negative vectors."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(term, 0.0) for term, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def cosine_dissimilarity(a: SparseVector, b: SparseVector) -> float:
    """``1 − cosine`` — a cost in ``[0, 1]`` (0 = identical topics)."""
    return 1.0 - cosine_similarity(a, b)
