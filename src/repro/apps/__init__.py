"""Applications of RMGP: LAGP, TAGP, spatial index, multi-criteria costs."""

from repro.apps.evaluation import (
    SatisfactionReport,
    UserSatisfaction,
    attendance_gini,
    distance_percentiles,
    satisfaction_report,
    user_satisfaction,
)
from repro.apps.lagp import Event, LAGPResult, LAGPTask
from repro.apps.multicriteria import (
    Criterion,
    combine_criteria,
    criterion_breakdown,
    min_max_rescaled,
)
from repro.apps.streaming import (
    EpochStats,
    StreamingRecommender,
    simulate_stream,
)
from repro.apps.spatial import (
    GridIndex,
    Point,
    Rectangle,
    distance_matrix,
    euclidean,
    haversine_km,
)
from repro.apps.tagp import (
    Advertisement,
    DiscussionThread,
    TAGPTask,
    co_participation_graph,
    user_documents,
)
from repro.apps.tfidf import (
    TfIdfModel,
    cosine_dissimilarity,
    cosine_similarity,
    fit_tfidf,
    term_frequencies,
    tokenize,
)

__all__ = [
    "Advertisement",
    "Criterion",
    "DiscussionThread",
    "EpochStats",
    "Event",
    "StreamingRecommender",
    "simulate_stream",
    "GridIndex",
    "LAGPResult",
    "LAGPTask",
    "Point",
    "Rectangle",
    "SatisfactionReport",
    "TAGPTask",
    "UserSatisfaction",
    "attendance_gini",
    "distance_percentiles",
    "satisfaction_report",
    "user_satisfaction",
    "TfIdfModel",
    "co_participation_graph",
    "combine_criteria",
    "cosine_dissimilarity",
    "cosine_similarity",
    "criterion_breakdown",
    "distance_matrix",
    "euclidean",
    "fit_tfidf",
    "haversine_km",
    "min_max_rescaled",
    "term_frequencies",
    "tokenize",
    "user_documents",
]
