"""Streaming LAGP — the paper's motivating online scenario, end to end.

Section 1 frames RMGP as an on-line process: "locations of users may be
updated through check-ins, while new events may appear frequently.
Therefore, RMGP recommendations should be efficiently generated in order
to accommodate the fast-pace changes", and Section 3.1 recommends seeding
each execution with the previous solution (e.g. "sending location-based
advertisements every hour").

:class:`StreamingRecommender` operationalizes that loop on top of the
incremental engine (:class:`repro.core.incremental.IncrementalRMGP`):

* ``observe_checkin(user, location)`` — ingest a check-in; the user's
  distance row is recomputed and only his neighborhood is marked dirty;
* ``tick()`` — close the current epoch: re-converge (warm, localized) and
  emit fresh recommendations, with per-epoch statistics;
* :func:`simulate_stream` — drive the recommender with a synthetic
  check-in stream and compare against cold re-solves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.apps.lagp import Event
from repro.apps.spatial import Point
from repro.core.incremental import IncrementalRMGP
from repro.core.instance import RMGPInstance
from repro.core.normalization import normalize
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass
class EpochStats:
    """What one ``tick()`` did."""

    epoch: int
    checkins_ingested: int
    deviations: int
    rounds: int
    objective_total: float
    users_reassigned: int


class StreamingRecommender:
    """Hourly-advertisement style online RMGP service."""

    def __init__(
        self,
        graph: SocialGraph,
        checkins: Dict[NodeId, Point],
        events: Sequence[Event],
        alpha: float = 0.5,
        normalize_method: Optional[str] = "pessimistic",
        seed: Optional[int] = None,
    ) -> None:
        if not events:
            raise ConfigurationError("need at least one event")
        missing = [u for u in graph if u not in checkins]
        if missing:
            raise ConfigurationError(
                f"users without check-ins: {sorted(map(repr, missing))[:5]}"
            )
        self.events = list(events)
        self.checkins = dict(checkins)
        self._event_points = [e.location for e in self.events]

        cost = self._distance_matrix(graph)
        instance = RMGPInstance(
            graph, [e.event_id for e in self.events], cost, alpha=alpha
        )
        self.cn = 1.0
        if normalize_method is not None:
            instance, estimate = normalize(instance, normalize_method)
            self.cn = estimate.cn
        self.engine = IncrementalRMGP(instance, init="closest", seed=seed)

        self._epoch = 0
        self._pending = 0
        self._previous = self.engine.assignment.copy()
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    def observe_checkin(self, user: NodeId, location: Point) -> None:
        """Ingest one check-in; the user's cost row updates immediately."""
        if user not in self.engine.instance.index_of:
            raise ConfigurationError(f"unknown user {user!r}")
        self.checkins[user] = location
        row = np.array(
            [
                math.hypot(location[0] - ex, location[1] - ey)
                for ex, ey in self._event_points
            ]
        )
        self.engine.update_player_costs(user, self.cn * row)
        self._pending += 1

    def observe_friendship(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Ingest a new friendship (weight overwrites an existing edge)."""
        self.engine.add_edge(u, v, weight)
        self._pending += 1

    def tick(self) -> EpochStats:
        """Close the epoch: re-converge and emit statistics."""
        self._epoch += 1
        result = self.engine.resolve()
        value = self.engine.current_value()
        reassigned = int(
            (self.engine.assignment != self._previous).sum()
        )
        stats = EpochStats(
            epoch=self._epoch,
            checkins_ingested=self._pending,
            deviations=result.total_deviations,
            rounds=result.num_rounds,
            objective_total=value.total,
            users_reassigned=reassigned,
        )
        self.history.append(stats)
        self._previous = self.engine.assignment.copy()
        self._pending = 0
        return stats

    def recommendations(self) -> Dict[NodeId, Hashable]:
        """Current recommendation per user (event ids)."""
        instance = self.engine.instance
        return {
            instance.node_ids[i]: instance.classes[
                int(self.engine.assignment[i])
            ]
            for i in range(instance.n)
        }

    # ------------------------------------------------------------------
    def _distance_matrix(self, graph: SocialGraph) -> np.ndarray:
        users = graph.nodes()
        matrix = np.empty((len(users), len(self.events)))
        for i, user in enumerate(users):
            ux, uy = self.checkins[user]
            for j, (ex, ey) in enumerate(self._event_points):
                matrix[i, j] = math.hypot(ux - ex, uy - ey)
        return matrix


def simulate_stream(
    recommender: StreamingRecommender,
    epochs: int,
    checkins_per_epoch: int,
    movement_km: float = 20.0,
    seed: Optional[int] = None,
) -> List[EpochStats]:
    """Drive a recommender with random user movements for ``epochs``."""
    if epochs <= 0 or checkins_per_epoch < 0:
        raise ConfigurationError("epochs must be positive, rate non-negative")
    rng = random.Random(seed)
    users = list(recommender.checkins)
    stats = []
    for _ in range(epochs):
        for _ in range(checkins_per_epoch):
            user = users[rng.randrange(len(users))]
            x, y = recommender.checkins[user]
            recommender.observe_checkin(
                user,
                (x + rng.gauss(0.0, movement_km), y + rng.gauss(0.0, movement_km)),
            )
        stats.append(recommender.tick())
    return stats
