"""Recommendation-quality metrics for LAGP/TAGP solutions.

The paper's motivation for the game-theoretic formulation is that its
recommendations "are likely to be followed by the users" — users are
individually satisfied, not sacrificed to a global optimum.  These
metrics make that claim measurable for any solution:

* :func:`user_satisfaction` — per-user regret-style scores: how much
  worse (in assignment cost) is the recommended class than the user's
  individually best one, and how many of his friends join him.
* :func:`attendance_gini` — inequality of class audiences.
* :func:`distance_percentiles` — the distribution of realized
  assignment costs (travel distances in LAGP).
* :func:`satisfaction_report` — one bundle of all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.instance import RMGPInstance
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class UserSatisfaction:
    """Per-user view of a recommendation."""

    player: int
    assignment_cost: float
    min_assignment_cost: float
    friends_total: int
    friends_together: int

    @property
    def detour_ratio(self) -> float:
        """Realized vs minimum assignment cost (1.0 = at the optimum).

        Infinite when the user's cheapest class costs 0 but he was sent
        elsewhere at positive cost.
        """
        if self.min_assignment_cost > 0:
            return self.assignment_cost / self.min_assignment_cost
        return 1.0 if self.assignment_cost == 0 else float("inf")

    @property
    def social_fraction(self) -> float:
        """Fraction of friends sharing the user's class (1.0 if no friends)."""
        if self.friends_total == 0:
            return 1.0
        return self.friends_together / self.friends_total


def user_satisfaction(
    instance: RMGPInstance, assignment: np.ndarray
) -> List[UserSatisfaction]:
    """Per-user satisfaction scores for ``assignment``."""
    instance.validate_assignment(assignment)
    assignment = np.asarray(assignment)
    scores = []
    for player in range(instance.n):
        row = instance.cost.row(player)
        klass = int(assignment[player])
        idx = instance.neighbor_indices[player]
        together = int((assignment[idx] == klass).sum()) if idx.size else 0
        scores.append(
            UserSatisfaction(
                player=player,
                assignment_cost=float(row[klass]),
                min_assignment_cost=float(row.min()),
                friends_total=int(idx.size),
                friends_together=together,
            )
        )
    return scores


def attendance_gini(assignment: np.ndarray, num_classes: int) -> float:
    """Gini coefficient of per-class audience sizes (0 = perfectly even).

    Includes empty classes: promoting k events and filling 3 is unequal.
    """
    if num_classes <= 0:
        raise ConfigurationError("num_classes must be positive")
    loads = np.bincount(np.asarray(assignment), minlength=num_classes).astype(
        np.float64
    )
    if loads.sum() == 0:
        return 0.0
    loads.sort()
    n = len(loads)
    ranks = np.arange(1, n + 1)
    return float(
        (2.0 * (ranks * loads).sum()) / (n * loads.sum()) - (n + 1.0) / n
    )


def distance_percentiles(
    instance: RMGPInstance,
    assignment: np.ndarray,
    percentiles: Sequence[float] = (50, 90, 99),
) -> Dict[float, float]:
    """Percentiles of the realized per-user assignment costs."""
    instance.validate_assignment(assignment)
    costs = np.array(
        [
            instance.cost.cost(v, int(assignment[v]))
            for v in range(instance.n)
        ]
    )
    if costs.size == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(costs, p)) for p in percentiles}


@dataclass(frozen=True)
class SatisfactionReport:
    """Aggregate recommendation-quality summary."""

    mean_detour_ratio: float
    users_at_cheapest: int
    mean_social_fraction: float
    isolated_users: int
    attendance_gini: float
    median_cost: float

    def __str__(self) -> str:
        return (
            f"detour x{self.mean_detour_ratio:.2f}, "
            f"{self.users_at_cheapest} at cheapest class, "
            f"{100 * self.mean_social_fraction:.0f}% friends together, "
            f"gini={self.attendance_gini:.2f}"
        )


def satisfaction_report(
    instance: RMGPInstance, assignment: np.ndarray
) -> SatisfactionReport:
    """Bundle all quality metrics for one solution."""
    scores = user_satisfaction(instance, assignment)
    finite_detours = [
        s.detour_ratio for s in scores if np.isfinite(s.detour_ratio)
    ]
    return SatisfactionReport(
        mean_detour_ratio=(
            float(np.mean(finite_detours)) if finite_detours else 1.0
        ),
        users_at_cheapest=sum(
            1
            for s in scores
            if s.assignment_cost <= s.min_assignment_cost + 1e-12
        ),
        mean_social_fraction=(
            float(np.mean([s.social_fraction for s in scores]))
            if scores
            else 1.0
        ),
        isolated_users=sum(1 for s in scores if s.friends_total == 0),
        attendance_gini=attendance_gini(assignment, instance.k),
        median_cost=distance_percentiles(instance, assignment, (50,))[50],
    )
