"""TAGP — Topic-Aware Graph Partitioning (Example 2).

An on-line discussion forum places one advertisement per user so as to
maximize word-of-mouth: each advertisement is a class, the assignment
cost is the tf-idf cosine *dissimilarity* between a user's discussions
and the advertisement topic, and the social weight between two users is
the number of discussion threads they co-participated in.

:class:`TAGPTask` builds the co-participation graph and the dissimilarity
cost matrix from raw thread data, then delegates to the core game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.apps.tfidf import TfIdfModel, cosine_dissimilarity, fit_tfidf
from repro.core.game import RMGPGame
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId, SocialGraph


@dataclass(frozen=True)
class Advertisement:
    """An advertisement with its topic text."""

    ad_id: Hashable
    topic: str


@dataclass(frozen=True)
class DiscussionThread:
    """One forum thread: its text and the users who participated."""

    thread_id: Hashable
    text: str
    participants: Sequence[NodeId]


def co_participation_graph(threads: Sequence[DiscussionThread]) -> SocialGraph:
    """Social graph weighted by the number of common threads.

    Two users share an edge of weight ``t`` when they co-participated in
    ``t`` threads — the paper's TAGP connectivity measure.
    """
    graph = SocialGraph()
    for thread in threads:
        participants = list(dict.fromkeys(thread.participants))
        for user in participants:
            graph.add_node(user)
        for i, u in enumerate(participants):
            for v in participants[i + 1 :]:
                if graph.has_edge(u, v):
                    graph.add_edge(u, v, graph.weight(u, v) + 1.0)
                else:
                    graph.add_edge(u, v, 1.0)
    return graph


def user_documents(threads: Sequence[DiscussionThread]) -> Dict[NodeId, str]:
    """Concatenate each user's thread texts into one profile document."""
    profiles: Dict[NodeId, List[str]] = {}
    for thread in threads:
        for user in set(thread.participants):
            profiles.setdefault(user, []).append(thread.text)
    return {user: " ".join(texts) for user, texts in profiles.items()}


class TAGPTask:
    """Long-lived TAGP state answering repeated advertisement queries."""

    def __init__(self, threads: Sequence[DiscussionThread]) -> None:
        if not threads:
            raise ConfigurationError("need at least one discussion thread")
        self.threads = list(threads)
        self.graph = co_participation_graph(self.threads)
        self._profiles = user_documents(self.threads)
        self.model: TfIdfModel = fit_tfidf(
            [t.text for t in self.threads]
        )
        self._user_vectors = {
            user: self.model.transform(text)
            for user, text in self._profiles.items()
        }

    def cost_matrix(self, ads: Sequence[Advertisement]) -> np.ndarray:
        """Dissimilarity matrix: users (graph order) x advertisements."""
        if not ads:
            raise ConfigurationError("need at least one advertisement")
        ad_vectors = [self.model.transform(ad.topic) for ad in ads]
        matrix = np.empty((self.graph.num_nodes, len(ads)), dtype=np.float64)
        for i, user in enumerate(self.graph.nodes()):
            vector = self._user_vectors[user]
            for j, ad_vector in enumerate(ad_vectors):
                matrix[i, j] = cosine_dissimilarity(vector, ad_vector)
        return matrix

    def build_game(
        self, ads: Sequence[Advertisement], alpha: float = 0.5
    ) -> RMGPGame:
        """Construct the RMGP game for an advertisement campaign."""
        ids = [ad.ad_id for ad in ads]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("advertisement ids must be distinct")
        return RMGPGame(self.graph, ids, self.cost_matrix(ads), alpha=alpha)

    def place_advertisements(
        self,
        ads: Sequence[Advertisement],
        alpha: float = 0.5,
        method: str = "all",
        normalize_method: Optional[str] = "pessimistic",
        **solver_kwargs,
    ) -> "tuple[Dict[NodeId, Advertisement], PartitionResult]":
        """Assign one advertisement to every user.

        Normalization matters here in the opposite direction from LAGP:
        dissimilarities live in [0, 1] while co-participation weights can
        reach the thousands (Section 3.3), so the social term would
        otherwise drown the topical fit.
        """
        game = self.build_game(ads, alpha)
        partition = game.solve(
            method=method, normalize_method=normalize_method, **solver_kwargs
        )
        by_id = {ad.ad_id: ad for ad in ads}
        placement = {
            user: by_id[label] for user, label in partition.labels.items()
        }
        return placement, partition
