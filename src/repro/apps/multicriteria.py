"""Multi-criteria assignment costs (Section 1).

"A combination of multiple criteria can also be supported ... the
assignment cost could be a linear combination (or any other scoring
function) of the distance and the preference of user v to event s_k."

:func:`combine_criteria` builds such costs from named criteria, with
optional per-criterion min-max rescaling so that meters and cosine
dissimilarities can be mixed meaningfully *before* the global
normalization of Section 3.3 is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.costs import CombinedCost, CostProvider, MatrixCost, as_cost_provider
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Criterion:
    """One named cost criterion with its mixing weight."""

    name: str
    cost: "np.ndarray | CostProvider"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigurationError(f"criterion {self.name!r} has negative weight")


def min_max_rescaled(matrix: np.ndarray) -> np.ndarray:
    """Rescale a cost matrix to ``[0, 1]`` (constant matrices become 0).

    Applied per criterion so that no single unit system dominates the
    linear combination.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    low = matrix.min() if matrix.size else 0.0
    high = matrix.max() if matrix.size else 0.0
    if high <= low:
        return np.zeros_like(matrix)
    return (matrix - low) / (high - low)


def combine_criteria(
    criteria: Sequence[Criterion],
    rescale: bool = True,
) -> CostProvider:
    """Build the combined cost provider ``Σ_i weight_i · cost_i``.

    With ``rescale=True`` every matrix criterion is min-max rescaled to
    [0, 1] first; provider-backed criteria are used as-is (rescaling
    requires materialization — materialize explicitly if needed).
    """
    if not criteria:
        raise ConfigurationError("need at least one criterion")
    providers = []
    weights = []
    for criterion in criteria:
        cost = criterion.cost
        if rescale and isinstance(cost, np.ndarray):
            provider: CostProvider = MatrixCost(min_max_rescaled(cost))
        else:
            provider = as_cost_provider(cost)
        providers.append(provider)
        weights.append(criterion.weight)
    if sum(weights) <= 0:
        raise ConfigurationError("at least one criterion weight must be positive")
    return CombinedCost(providers, weights)


def criterion_breakdown(
    criteria: Sequence[Criterion],
    assignment: np.ndarray,
    rescale: bool = True,
) -> Dict[str, float]:
    """Per-criterion total cost of an assignment (diagnostics).

    Reports each criterion's contribution in the same (possibly
    rescaled) units used by :func:`combine_criteria`.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    breakdown: Dict[str, float] = {}
    for criterion in criteria:
        cost = criterion.cost
        if isinstance(cost, np.ndarray):
            matrix = min_max_rescaled(cost) if rescale else np.asarray(cost)
            total = float(matrix[np.arange(len(assignment)), assignment].sum())
        else:
            provider = as_cost_provider(cost)
            total = float(
                sum(
                    provider.cost(v, int(assignment[v]))
                    for v in range(len(assignment))
                )
            )
        breakdown[criterion.name] = criterion.weight * total
    return breakdown
