"""Deprecated ``solve_*`` entry points, consolidated in one module.

Before the unified :func:`repro.partition` API (PR 3), every algorithm
variant had its own module-level entry point (``solve_baseline``,
``solve_global_table``, ...).  Those names keep working — imported from
their historical module, from :mod:`repro.core`, or from here — but all
ten are now thin shims built by one helper: they emit a single
:class:`DeprecationWarning` and forward verbatim to the registry
implementation, so a shimmed call is byte-identical to
``repro.partition(instance, solver=...)`` under the same seed.

Scheduled for removal in 2.0 — see the migration table in
``docs/API.md``.  This module imports nothing from :mod:`repro.core` at
module level (the registry is resolved lazily at call time), so the
solver modules can re-export their legacy name from here without an
import cycle.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

__all__ = [
    "solve_all",
    "solve_baseline",
    "solve_capacitated",
    "solve_global_table",
    "solve_independent_sets",
    "solve_max_gain",
    "solve_simultaneous",
    "solve_strategy_elimination",
    "solve_vectorized",
    "solve_with_minimums",
]


def deprecated_shim(
    name: str, solver: str, hint: str = ""
) -> Callable[..., Any]:
    """Build one legacy entry-point shim.

    The shim warns (``stacklevel=2`` — the caller's line, not this
    module) and forwards every argument untouched to the registry
    implementation, so defaults, keyword handling and results are
    exactly the implementation's own.
    """

    def shim(instance: Any, *args: Any, **kwargs: Any) -> Any:
        warnings.warn(
            f"{name}() is deprecated; use "
            f"repro.partition(instance, solver={solver!r}, {hint}...)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.registry import SOLVERS

        return SOLVERS[solver](instance, *args, **kwargs)

    shim.__name__ = name
    shim.__qualname__ = name
    shim.__doc__ = (
        f"Deprecated alias — use ``repro.partition(instance, "
        f"solver={solver!r}, {hint}...)``."
    )
    return shim


solve_baseline = deprecated_shim("solve_baseline", "b")
solve_strategy_elimination = deprecated_shim(
    "solve_strategy_elimination", "se"
)
solve_independent_sets = deprecated_shim("solve_independent_sets", "is")
solve_global_table = deprecated_shim("solve_global_table", "gt")
solve_all = deprecated_shim("solve_all", "all")
solve_vectorized = deprecated_shim("solve_vectorized", "vec")
solve_max_gain = deprecated_shim("solve_max_gain", "mg")
solve_simultaneous = deprecated_shim("solve_simultaneous", "sync")
solve_capacitated = deprecated_shim(
    "solve_capacitated", "cap", hint="capacities=..., "
)
solve_with_minimums = deprecated_shim(
    "solve_with_minimums", "minpart", hint="min_participants=..., "
)
