"""RMGP_mg — max-gain (best-improvement) best-response dynamics.

The round-robin schedule of Figure 3 is one point in a design space;
another classic is *best-improvement* dynamics: always let the player
with the **largest available cost reduction** move next.  For exact
potential games this converges for the same reason (every move decreases
``Φ`` by the mover's gain), and each move takes the largest step
available, which often reduces the number of *moves* at the price of
maintaining a priority structure.

The implementation keeps the global table of RMGP_gt plus a max-heap of
per-player gains with lazy invalidation; it is included as an ablation
point (moves vs. wall time against the paper's schedules), not as a
replacement for them.
"""

from __future__ import annotations

import heapq
import random
import warnings
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.global_table import build_global_table
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConvergenceError
from repro.obs.recorder import Recorder, active_recorder


def _solve_max_gain(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_moves: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> PartitionResult:
    """Run max-gain dynamics to a pure Nash equilibrium.

    ``max_moves`` bounds the total number of deviations (default
    ``n * k * 1000``, a generous multiple of anything observed); the
    result records every move in one round entry per *batch* of 1000
    moves so the usual round accounting stays meaningful.

    ``players_examined`` counts heap pops (gain re-evaluations), the
    real unit of work of best-improvement dynamics — there is no
    full-sweep round here.  Round 0's count is the heap build, which
    evaluates every player's gain once.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    with rec.span("solve", solver="RMGP_mg", n=instance.n, k=instance.k):
        with rec.span("round", round=0, phase="init"):
            assignment = dynamics.initial_assignment(
                instance, init, rng, warm_start
            )
            with rec.span("build_table"):
                table = build_global_table(instance, assignment)
            if max_moves is None:
                max_moves = max(1000, instance.n * instance.k * 1000)

            tol = dynamics.DEVIATION_TOLERANCE
            half = (1.0 - instance.alpha) * 0.5

            def gain_of(player: int) -> float:
                row = table[player]
                return float(row[assignment[player]] - row.min())

            # Max-heap entries: (-gain, player).  Lazy invalidation: an
            # entry is acted on only if its gain still matches the
            # player's current gain.
            heap: List[tuple] = []
            for player in range(instance.n):
                gain = gain_of(player)
                if gain > tol:
                    heapq.heappush(heap, (-gain, player))

        rounds: List[RoundStats] = [
            RoundStats(0, 0, clock.lap(), players_examined=instance.n)
        ]
        moves = 0
        batch_moves = 0
        batch_examined = 0

        def flush_batch() -> None:
            nonlocal batch_moves, batch_examined
            rec.round_end(
                None, "RMGP_mg", len(rounds),
                deviations=batch_moves,
                examined=batch_examined,
                cost_evaluations=batch_examined,
                frontier_fn=lambda: len(heap),
            )
            rounds.append(
                RoundStats(
                    round_index=len(rounds),
                    deviations=batch_moves,
                    seconds=clock.lap(),
                    players_examined=batch_examined,
                )
            )
            batch_moves = 0
            batch_examined = 0

        while heap:
            negative_gain, player = heapq.heappop(heap)
            batch_examined += 1
            current_gain = gain_of(player)
            if current_gain <= tol:
                continue
            if abs(-negative_gain - current_gain) > 1e-12:
                heapq.heappush(heap, (-current_gain, player))
                continue
            current = int(assignment[player])
            best = int(table[player].argmin())
            assignment[player] = best
            moves += 1
            batch_moves += 1
            if moves > max_moves:
                raise ConvergenceError(f"RMGP_mg exceeded {max_moves} moves")
            idx = instance.neighbor_indices[player]
            wts = instance.neighbor_weights[player]
            for friend, weight in zip(idx, wts):
                delta = half * weight
                table[friend, best] -= delta
                table[friend, current] += delta
                friend_gain = gain_of(int(friend))
                if friend_gain > tol:
                    heapq.heappush(heap, (-friend_gain, int(friend)))
            if batch_moves >= 1000:
                flush_batch()
        if batch_moves or batch_examined or len(rounds) == 1:
            flush_batch()

    return make_result(
        solver="RMGP_mg",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=True,
        wall_seconds=clock.total(),
        extra={"total_moves": moves},
    )


def solve_max_gain(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_moves: Optional[int] = None,
) -> PartitionResult:
    """Deprecated alias — use ``repro.partition(instance, solver="mg")``."""
    warnings.warn(
        "solve_max_gain() is deprecated; use "
        "repro.partition(instance, solver='mg', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_max_gain(
        instance,
        init=init,
        seed=seed,
        warm_start=warm_start,
        max_moves=max_moves,
    )
