"""RMGP_mg — max-gain (best-improvement) best-response dynamics.

The round-robin schedule of Figure 3 is one point in a design space;
another classic is *best-improvement* dynamics: always let the player
with the **largest available cost reduction** move next.  For exact
potential games this converges for the same reason (every move decreases
``Φ`` by the mover's gain), and each move takes the largest step
available, which often reduces the number of *moves* at the price of
maintaining a priority structure.

The implementation keeps the global table of RMGP_gt plus a max-heap of
per-player gains with lazy invalidation; it is included as an ablation
point (moves vs. wall time against the paper's schedules), not as a
replacement for them.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.global_table import build_global_table
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConvergenceError
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def _solve_max_gain(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_moves: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run max-gain dynamics to a pure Nash equilibrium.

    ``max_moves`` bounds the total number of deviations (default
    ``n * k * 1000``, a generous multiple of anything observed); the
    result records every move in one round entry per *batch* of 1000
    moves so the usual round accounting stays meaningful.

    ``players_examined`` counts heap pops (gain re-evaluations), the
    real unit of work of best-improvement dynamics — there is no
    full-sweep round here.  Round 0's count is the heap build, which
    evaluates every player's gain once.

    The real-time layer treats a *batch* as the round unit: budget
    checks and checkpoints happen only at batch boundaries, keeping the
    hot pop-and-move loop free of per-move overhead.  Checkpoints
    serialize the table and the heap list verbatim (entry order is the
    binary-heap layout), so a resume pops in the exact same sequence.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_mg", rec)
    with rec.span("solve", solver="RMGP_mg", n=instance.n, k=instance.k):
        if max_moves is None:
            max_moves = max(1000, instance.n * instance.k * 1000)
        tol = dynamics.DEVIATION_TOLERANCE
        half = (1.0 - instance.alpha) * 0.5

        if restored is not None:
            assignment = restored.assignment
            table = restored.state["table"]

            def gain_of(player: int) -> float:
                row = table[player]
                return float(row[assignment[player]] - row.min())

            heap: List[tuple] = [
                (float(key), int(player))
                for key, player in zip(
                    restored.state["heap_keys"],
                    restored.state["heap_players"],
                )
            ]
            moves = int(restored.state["moves"])
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
        else:
            with rec.span("round", round=0, phase="init"):
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                with rec.span("build_table"):
                    table = build_global_table(instance, assignment)

                def gain_of(player: int) -> float:
                    row = table[player]
                    return float(row[assignment[player]] - row.min())

                # Max-heap entries: (-gain, player).  Lazy invalidation:
                # an entry is acted on only if its gain still matches the
                # player's current gain.
                heap = []
                for player in range(instance.n):
                    gain = gain_of(player)
                    if gain > tol:
                        heapq.heappush(heap, (-gain, player))

            rounds = [
                RoundStats(0, 0, clock.lap(), players_examined=instance.n)
            ]
            moves = 0
        batch_moves = 0
        batch_examined = 0

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_mg",
                round_index=len(rounds) - 1,
                assignment=assignment.copy(),
                frontier=np.zeros(0, dtype=bool),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={
                    "table": table.copy(),
                    "heap_keys": np.array(
                        [entry[0] for entry in heap], dtype=np.float64
                    ),
                    "heap_players": np.array(
                        [entry[1] for entry in heap], dtype=np.int64
                    ),
                    "moves": moves,
                },
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        def flush_batch() -> None:
            nonlocal batch_moves, batch_examined
            rec.round_end(
                None, "RMGP_mg", len(rounds),
                deviations=batch_moves,
                examined=batch_examined,
                cost_evaluations=batch_examined,
                frontier_fn=lambda: len(heap),
            )
            rounds.append(
                RoundStats(
                    round_index=len(rounds),
                    deviations=batch_moves,
                    seconds=clock.lap(),
                    players_examined=batch_examined,
                )
            )
            batch_moves = 0
            batch_examined = 0

        interrupted = False
        while heap:
            # One budget check per batch boundary (both counters reset
            # only at a flush), never per heap pop.
            if (
                runtime is not None
                and batch_moves == 0
                and batch_examined == 0
                and runtime.check(len(rounds))
            ):
                interrupted = True
                break
            negative_gain, player = heapq.heappop(heap)
            batch_examined += 1
            current_gain = gain_of(player)
            if current_gain <= tol:
                continue
            if abs(-negative_gain - current_gain) > 1e-12:
                heapq.heappush(heap, (-current_gain, player))
                continue
            current = int(assignment[player])
            best = int(table[player].argmin())
            assignment[player] = best
            moves += 1
            batch_moves += 1
            if moves > max_moves:
                raise ConvergenceError(f"RMGP_mg exceeded {max_moves} moves")
            idx = instance.neighbor_indices[player]
            wts = instance.neighbor_weights[player]
            for friend, weight in zip(idx, wts):
                delta = half * weight
                table[friend, best] -= delta
                table[friend, current] += delta
                friend_gain = gain_of(int(friend))
                if friend_gain > tol:
                    heapq.heappush(heap, (-friend_gain, int(friend)))
            if batch_moves >= 1000:
                flush_batch()
                if runtime is not None:
                    runtime.note_round(len(rounds) - 1, make_checkpoint)
        if not interrupted and (
            batch_moves or batch_examined or len(rounds) == 1
        ):
            flush_batch()
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {"total_moves": moves}
    if interrupted:
        extra["remaining_frontier"] = len(heap)
    return make_result(
        solver="RMGP_mg",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=not interrupted,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_max_gain  # noqa: E402
