"""JSON persistence for solutions.

Real-time pipelines warm-start each query from the previous answer
(Section 3.1); that answer has to live somewhere between executions.
These helpers persist a :class:`~repro.core.result.PartitionResult` (or a
bare assignment) to a stable, versioned JSON layout and load it back —
including enough metadata to refuse files that do not match the instance
they are applied to.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError, DataError

FORMAT_VERSION = 1


def save_result(result: PartitionResult, path: str) -> None:
    """Write a solver result (assignment + diagnostics) as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "solver": result.solver,
        "converged": result.converged,
        "wall_seconds": result.wall_seconds,
        "value": {
            "assignment_cost": result.value.assignment_cost,
            "social_cost": result.value.social_cost,
            "alpha": result.value.alpha,
        },
        "labels": {repr(user): repr(label) for user, label in result.labels.items()},
        "assignment": result.assignment.tolist(),
        "rounds": [
            {
                "round_index": r.round_index,
                "deviations": r.deviations,
                "seconds": r.seconds,
            }
            for r in result.rounds
        ],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_assignment(path: str, instance: Optional[RMGPInstance] = None) -> np.ndarray:
    """Load a saved assignment; validate against ``instance`` if given.

    Returns the index-space strategy vector, ready for ``warm_start=``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"cannot read result file {path!r}: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise DataError(
            f"{path!r} has format version {payload.get('format_version')}, "
            f"expected {FORMAT_VERSION}"
        )
    try:
        assignment = np.asarray(payload["assignment"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"{path!r} has a malformed assignment") from exc
    if instance is not None:
        try:
            instance.validate_assignment(assignment)
        except ConfigurationError as exc:
            raise DataError(
                f"{path!r} does not fit the instance: {exc}"
            ) from exc
    return assignment


def load_labels(path: str) -> Dict[str, str]:
    """Load the human-readable ``repr(user) -> repr(label)`` mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    labels = payload.get("labels")
    if not isinstance(labels, dict):
        raise DataError(f"{path!r} has no labels section")
    return labels


# ----------------------------------------------------------------------
# Solve checkpoints (repro.runtime)
# ----------------------------------------------------------------------
#: File-format version wrapping a checkpoint payload
#: (:data:`repro.runtime.checkpoint.CHECKPOINT_VERSION` versions the
#: payload itself).
CHECKPOINT_FORMAT_VERSION = 1


def save_checkpoint(checkpoint, path: str) -> None:
    """Persist a :class:`~repro.runtime.checkpoint.SolveCheckpoint`.

    The write is atomic (temp file + ``os.replace``) so a crash mid-write
    never corrupts the previous checkpoint — the whole point of periodic
    checkpointing is surviving exactly that crash.
    """
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "checkpoint": checkpoint.to_payload(),
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp_path, path)


def load_checkpoint(path: str):
    """Load a checkpoint written by :func:`save_checkpoint`."""
    from repro.runtime.checkpoint import SolveCheckpoint

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"cannot read checkpoint file {path!r}: {exc}") from exc
    if payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        raise DataError(
            f"{path!r} has format version {payload.get('format_version')}, "
            f"expected {CHECKPOINT_FORMAT_VERSION}"
        )
    body = payload.get("checkpoint")
    if not isinstance(body, dict):
        raise DataError(f"{path!r} has no checkpoint section")
    return SolveCheckpoint.from_payload(body)
