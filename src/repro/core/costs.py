"""Assignment-cost providers for RMGP instances.

The RMGP objective (Equation 1) charges each user ``v`` an *assignment
cost* ``c(v, s_v)`` for the class he joins.  The paper keeps ``c``
abstract — distance for LAGP, text dissimilarity for TAGP, or any
combination (Section 1).  This module defines the provider interface the
solvers consume and the standard implementations:

* :class:`MatrixCost` — a dense, pre-computed ``n x k`` matrix (the paper
  pre-computes all distances for the UML baselines).
* :class:`FunctionCost` — rows computed on demand from a callback, for
  query-time costs too large to materialize.
* :class:`ScaledCost` — multiplies another provider by the normalization
  constant ``C_N`` (Section 3.3).
* :class:`CombinedCost` — weighted sum of several criteria (multi-criteria
  assignment costs, Section 1).

Providers are indexed by *player index* (``0..n-1``) and *class index*
(``0..k-1``); the mapping from user ids and class labels to indices lives
in :class:`repro.core.instance.RMGPInstance`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DataError


class CostProvider:
    """Interface: per-player rows of the assignment-cost matrix."""

    #: number of classes, k
    num_classes: int
    #: number of players, n
    num_players: int

    def row(self, player: int) -> np.ndarray:
        """Costs of assigning ``player`` to each of the ``k`` classes.

        Must return a float64 array of length ``num_classes``.  Callers
        may mutate the returned array, so implementations must not hand
        out internal storage.
        """
        raise NotImplementedError

    def cost(self, player: int, klass: int) -> float:
        """Single entry ``c(player, klass)``."""
        return float(self.row(player)[klass])

    def dense(self) -> np.ndarray:
        """Materialize the full ``n x k`` matrix (used by LP baselines)."""
        if self.num_players == 0:
            return np.empty((0, self.num_classes), dtype=np.float64)
        return np.vstack([self.row(v) for v in range(self.num_players)])


class MatrixCost(CostProvider):
    """Cost provider backed by a dense ``n x k`` numpy matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ConfigurationError("cost matrix must be 2-dimensional")
        if matrix.size and matrix.min() < 0:
            raise ConfigurationError("assignment costs must be non-negative")
        if not np.isfinite(matrix).all():
            raise ConfigurationError("assignment costs must be finite")
        self._matrix = matrix
        self.num_players = matrix.shape[0]
        self.num_classes = matrix.shape[1]

    def row(self, player: int) -> np.ndarray:
        return self._matrix[player].copy()

    def cost(self, player: int, klass: int) -> float:
        return float(self._matrix[player, klass])

    def dense(self) -> np.ndarray:
        return self._matrix.copy()


class FunctionCost(CostProvider):
    """Cost provider computing rows on demand from a callback.

    Parameters
    ----------
    row_fn:
        ``row_fn(player) -> array of length k``.  Called once per player
        per use; wrap expensive callbacks in :meth:`materialized` when
        the matrix fits in memory.
    num_players, num_classes:
        Dimensions (the callback cannot be introspected).
    """

    def __init__(
        self,
        row_fn: Callable[[int], Sequence[float]],
        num_players: int,
        num_classes: int,
    ) -> None:
        if num_players < 0 or num_classes <= 0:
            raise ConfigurationError("need num_players >= 0 and num_classes > 0")
        self._row_fn = row_fn
        self.num_players = num_players
        self.num_classes = num_classes

    def row(self, player: int) -> np.ndarray:
        row = np.asarray(self._row_fn(player), dtype=np.float64)
        if row.shape != (self.num_classes,):
            raise ConfigurationError(
                f"row callback returned shape {row.shape}, expected ({self.num_classes},)"
            )
        if not np.isfinite(row).all():
            raise DataError(
                f"cost row for player {player} contains NaN/inf"
            )
        if row.size and row.min() < 0:
            raise DataError(
                f"cost row for player {player} contains negative costs"
            )
        return row

    def materialized(self) -> MatrixCost:
        """Evaluate every row once and return a :class:`MatrixCost`."""
        return MatrixCost(self.dense())


class ScaledCost(CostProvider):
    """A provider multiplied by a positive constant (``C_N`` scaling)."""

    def __init__(self, base: CostProvider, factor: float) -> None:
        if factor <= 0 or not np.isfinite(factor):
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        self._base = base
        self.factor = float(factor)
        self.num_players = base.num_players
        self.num_classes = base.num_classes

    def row(self, player: int) -> np.ndarray:
        return self._base.row(player) * self.factor

    def cost(self, player: int, klass: int) -> float:
        return self._base.cost(player, klass) * self.factor

    def dense(self) -> np.ndarray:
        # One vectorized scale of the base matrix; elementwise it is the
        # same multiplication row() performs, so values are bit-identical.
        return self._base.dense() * self.factor


class CombinedCost(CostProvider):
    """Weighted sum of several cost providers (multi-criteria costs).

    The paper notes the assignment cost "could be a linear combination
    (or any other scoring function) of the distance and the preference"
    of a user (Section 1).  All providers must share dimensions.
    """

    def __init__(
        self,
        providers: Sequence[CostProvider],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not providers:
            raise ConfigurationError("need at least one cost provider")
        dims = {(p.num_players, p.num_classes) for p in providers}
        if len(dims) != 1:
            raise ConfigurationError(f"providers disagree on dimensions: {dims}")
        if weights is None:
            weights = [1.0 / len(providers)] * len(providers)
        if len(weights) != len(providers):
            raise ConfigurationError("one weight per provider required")
        if any(w < 0 for w in weights):
            raise ConfigurationError("criterion weights must be non-negative")
        self._providers = list(providers)
        self._weights = [float(w) for w in weights]
        self.num_players, self.num_classes = next(iter(dims))

    def row(self, player: int) -> np.ndarray:
        total = np.zeros(self.num_classes, dtype=np.float64)
        for provider, weight in zip(self._providers, self._weights):
            if weight:
                total += weight * provider.row(player)
        return total

    def dense(self) -> np.ndarray:
        total = np.zeros((self.num_players, self.num_classes), dtype=np.float64)
        for provider, weight in zip(self._providers, self._weights):
            if weight:
                total += weight * provider.dense()
        return total


def as_cost_provider(
    cost: "np.ndarray | CostProvider | Callable[[int], Sequence[float]]",
    num_players: Optional[int] = None,
    num_classes: Optional[int] = None,
) -> CostProvider:
    """Coerce matrices / callables / providers into a :class:`CostProvider`."""
    if isinstance(cost, CostProvider):
        return cost
    if callable(cost):
        if num_players is None or num_classes is None:
            raise ConfigurationError(
                "num_players and num_classes are required for callable costs"
            )
        return FunctionCost(cost, num_players, num_classes)
    return MatrixCost(np.asarray(cost))
