"""Solver results: round traces, objective breakdowns, equilibrium data."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from repro.core.instance import RMGPInstance
from repro.core.objective import ObjectiveValue, objective
from repro.graph.social_graph import NodeId


@dataclass(frozen=True)
class RoundStats:
    """Per-round measurements (the raw material of Figures 12(c) and 14).

    ``round_index`` 0 is the initialization step — the paper's "Round 0",
    which covers sorting/initial assignment plus, depending on the
    variant, valid-region or global-table construction.
    """

    round_index: int
    deviations: int
    seconds: float
    potential: Optional[float] = None
    players_examined: int = 0

    def __str__(self) -> str:
        parts = [
            f"round {self.round_index}: {self.deviations} deviations",
            f"{self.seconds * 1e3:.2f} ms",
        ]
        if self.potential is not None:
            parts.append(f"phi={self.potential:.6g}")
        return ", ".join(parts)


@dataclass
class PartitionResult:
    """Outcome of one RMGP solve — the shared contract of every solver.

    Every solve entry point in this package (``partition()`` with any
    registry name, ``RMGPGame.solve``, the distributed game, and the
    deprecated ``solve_*`` shims) returns this type with **identical
    field semantics**:

    Attributes
    ----------
    solver:
        Name of the algorithm variant (``"RMGP_b"``, ``"RMGP_gt"``, ...).
    assignment:
        Index-space strategy vector (player index -> class index),
        always a fresh ``int64`` copy the caller may mutate.
    labels:
        The same assignment as ``user id -> class label``.
    value:
        Equation 1 breakdown at termination, evaluated on the instance
        the solver actually ran on (i.e. after any normalization).
    rounds:
        Round trace, including round 0 (initialization).  Round entries
        carry ``players_examined`` — the number of best responses
        actually computed that round (frontier size for frontier
        solvers, heap pops for max-gain, ``n`` only where a full sweep
        is semantically required).  For :func:`solve_with_minimums` the
        trace covers the final re-solve; ``extra["rounds_total"]`` sums
        every re-solve.
    converged:
        True when the solver reached a round without deviations (a Nash
        equilibrium, or the variant's weaker solution concept); False
        when it stopped early — see ``stop_reason`` for why.
    wall_seconds:
        Wall-clock seconds for the **entire call**, round 0 and any
        internal re-solves included.
    extra:
        Solver-specific diagnostics (players eliminated, colors used,
        bytes transferred, ...).  Keys here are the only place variants
        may differ.
    stop_reason:
        Why the solve stopped: ``"converged"``, ``"max_rounds"`` (the
        synchronous ablation's non-raising budget exhaustion),
        ``"deadline"`` or ``"cancelled"``.  The last two come from the
        real-time layer (:mod:`repro.runtime`); the assignment they
        accompany is still valid and — for the potential-game dynamics —
        no worse than where the solve was interrupted (anytime
        property).
    """

    solver: str
    assignment: np.ndarray
    labels: Dict[NodeId, Hashable]
    value: ObjectiveValue
    rounds: List[RoundStats]
    converged: bool
    wall_seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)
    stop_reason: str = "converged"

    @property
    def num_rounds(self) -> int:
        """Number of best-response rounds (round 0 excluded)."""
        return sum(1 for r in self.rounds if r.round_index > 0)

    @property
    def total_deviations(self) -> int:
        """Total strategy changes across all rounds."""
        return sum(r.deviations for r in self.rounds)

    def round_seconds(self) -> List[float]:
        """Wall seconds per round, round 0 first (Figure 12(c) series)."""
        return [r.seconds for r in self.rounds]

    def summary(self) -> str:
        """One-line human-readable description."""
        status = (
            "converged"
            if self.converged
            else f"NOT converged ({self.stop_reason})"
        )
        return (
            f"{self.solver}: {status} in {self.num_rounds} rounds, "
            f"{self.value}, {self.wall_seconds * 1e3:.1f} ms"
        )

    def to_dict(self, include_assignment: bool = False) -> Dict[str, Any]:
        """The frozen ``repro-result/v1`` payload.

        One contract for every consumer — library callers, CLI
        ``--json``, checkpoint metadata and the HTTP wire
        (``POST /v1/solve``) all read this exact shape, validated by
        :mod:`repro.core.result_schema` (runnable:
        ``python -m repro.core.result_schema result.json``).  Consumers
        may *add* top-level keys (the CLI adds ``dataset``); the keys
        emitted here are versioned and only change with the schema tag.

        The full assignment is included only on request (it is O(n));
        ``assignment_sha256`` is always present so runs can be compared
        byte-for-byte without shipping the vector.
        """
        import hashlib

        payload: Dict[str, Any] = {
            "schema": "repro-result/v1",
            "solver": self.solver,
            "n": int(self.assignment.size),
            "converged": bool(self.converged),
            "stop_reason": self.stop_reason,
            "rounds": self.num_rounds,
            "total_deviations": int(self.total_deviations),
            "wall_seconds": float(self.wall_seconds),
            "objective": {
                "total": float(self.value.total),
                "assignment_cost": float(self.value.assignment_cost),
                "social_cost": float(self.value.social_cost),
                "alpha": float(self.value.alpha),
            },
            "assignment_sha256": hashlib.sha256(
                np.ascontiguousarray(self.assignment, dtype=np.int64).tobytes()
            ).hexdigest(),
            "round_trace": [
                {
                    "round": r.round_index,
                    "deviations": r.deviations,
                    "seconds": r.seconds,
                    "players_examined": r.players_examined,
                    **(
                        {"potential": r.potential}
                        if r.potential is not None
                        else {}
                    ),
                }
                for r in self.rounds
            ],
        }
        if self.extra:
            payload["extra"] = _jsonable(self.extra)
        if include_assignment:
            payload["assignment"] = [int(x) for x in self.assignment.tolist()]
        return payload


def _jsonable(value: Any) -> Any:
    """JSON-safe copy of a solver's ``extra`` diagnostics.

    Scalars pass through, numpy scalars unbox, arrays/sequences become
    lists, mappings recurse, and anything else degrades to ``str`` —
    ``extra`` is the one result field whose keys vary by solver, so the
    wire schema only promises it is a JSON object.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # numpy scalar
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)) or isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value]
    return str(value)


def make_result(
    solver: str,
    instance: RMGPInstance,
    assignment: np.ndarray,
    rounds: List[RoundStats],
    converged: bool,
    wall_seconds: float,
    extra: Optional[Dict[str, Any]] = None,
    stop_reason: Optional[str] = None,
) -> PartitionResult:
    """Assemble a :class:`PartitionResult`, evaluating Equation 1 once.

    ``stop_reason`` defaults from ``converged`` (``"converged"`` /
    ``"max_rounds"``); interrupted solves pass ``"deadline"`` or
    ``"cancelled"`` explicitly.
    """
    if stop_reason is None:
        stop_reason = "converged" if converged else "max_rounds"
    instance.validate_assignment(assignment)
    return PartitionResult(
        solver=solver,
        assignment=np.asarray(assignment, dtype=np.int64).copy(),
        labels=instance.assignment_to_labels(assignment),
        value=objective(instance, assignment),
        rounds=list(rounds),
        converged=converged,
        wall_seconds=wall_seconds,
        extra=dict(extra or {}),
        stop_reason=stop_reason,
    )
