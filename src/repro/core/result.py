"""Solver results: round traces, objective breakdowns, equilibrium data."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from repro.core.instance import RMGPInstance
from repro.core.objective import ObjectiveValue, objective
from repro.graph.social_graph import NodeId


@dataclass(frozen=True)
class RoundStats:
    """Per-round measurements (the raw material of Figures 12(c) and 14).

    ``round_index`` 0 is the initialization step — the paper's "Round 0",
    which covers sorting/initial assignment plus, depending on the
    variant, valid-region or global-table construction.
    """

    round_index: int
    deviations: int
    seconds: float
    potential: Optional[float] = None
    players_examined: int = 0

    def __str__(self) -> str:
        parts = [
            f"round {self.round_index}: {self.deviations} deviations",
            f"{self.seconds * 1e3:.2f} ms",
        ]
        if self.potential is not None:
            parts.append(f"phi={self.potential:.6g}")
        return ", ".join(parts)


@dataclass
class PartitionResult:
    """Outcome of one RMGP solve.

    Attributes
    ----------
    solver:
        Name of the algorithm variant (``"RMGP_b"``, ``"RMGP_gt"``, ...).
    assignment:
        Index-space strategy vector (player index -> class index).
    labels:
        The same assignment as ``user id -> class label``.
    value:
        Equation 1 breakdown at termination.
    rounds:
        Round trace, including round 0 (initialization).
    converged:
        True when the solver reached a round without deviations (a Nash
        equilibrium); False only if ``max_rounds`` was exhausted.
    extra:
        Solver-specific diagnostics (players eliminated, colors used,
        bytes transferred, ...).
    """

    solver: str
    assignment: np.ndarray
    labels: Dict[NodeId, Hashable]
    value: ObjectiveValue
    rounds: List[RoundStats]
    converged: bool
    wall_seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Number of best-response rounds (round 0 excluded)."""
        return sum(1 for r in self.rounds if r.round_index > 0)

    @property
    def total_deviations(self) -> int:
        """Total strategy changes across all rounds."""
        return sum(r.deviations for r in self.rounds)

    def round_seconds(self) -> List[float]:
        """Wall seconds per round, round 0 first (Figure 12(c) series)."""
        return [r.seconds for r in self.rounds]

    def summary(self) -> str:
        """One-line human-readable description."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{self.solver}: {status} in {self.num_rounds} rounds, "
            f"{self.value}, {self.wall_seconds * 1e3:.1f} ms"
        )


def make_result(
    solver: str,
    instance: RMGPInstance,
    assignment: np.ndarray,
    rounds: List[RoundStats],
    converged: bool,
    wall_seconds: float,
    extra: Optional[Dict[str, Any]] = None,
) -> PartitionResult:
    """Assemble a :class:`PartitionResult`, evaluating Equation 1 once."""
    instance.validate_assignment(assignment)
    return PartitionResult(
        solver=solver,
        assignment=np.asarray(assignment, dtype=np.int64).copy(),
        labels=instance.assignment_to_labels(assignment),
        value=objective(instance, assignment),
        rounds=list(rounds),
        converged=converged,
        wall_seconds=wall_seconds,
        extra=dict(extra or {}),
    )
