"""RMGP_b — the baseline best-response algorithm (Figure 3).

Each round sweeps the *frontier* of players whose costs may have changed
and replaces each one's strategy with the class minimizing his Equation 3
cost against the *current* strategies of all other players; the algorithm
stops at the first round with no deviation, which by Theorem 1 is a pure
Nash equilibrium.  Round 1 examines everyone; afterwards only players
marked dirty by a friend's move are examined (see
:class:`repro.core.dynamics.ActiveSet` — the move sequence is provably
identical to the full sweep's).

The two heuristics evaluated in Section 6.3 are exposed as parameters:
``init="closest"`` is the ``+i`` variant and ``order="degree"`` adds the
``+o`` variant.
"""

from __future__ import annotations

import random
import warnings
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder


def _solve_baseline(
    instance: RMGPInstance,
    init: str = "random",
    order: str = "random",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    reshuffle_each_round: bool = False,
    track_potential: bool = False,
    solver_name: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> PartitionResult:
    """Run RMGP_b on ``instance``.

    Parameters
    ----------
    init:
        ``"random"`` (Figure 3 line 2) or ``"closest"`` (minimum
        assignment cost, the ``+i`` heuristic).
    order:
        Player sweep order per round: ``"random"``, ``"given"`` or
        ``"degree"`` (the ``+o`` heuristic).
    seed:
        Seeds both initialization and ordering randomness.
    warm_start:
        Previous solution used as the seed assignment (overrides
        ``init``), supporting the paper's repeated-execution scenario.
    reshuffle_each_round:
        When ``order="random"``, draw a fresh permutation every round
        instead of reusing the first one.
    track_potential:
        Record ``Φ(S)`` after every round (used by analysis and tests;
        costs one extra objective evaluation per round).
    recorder:
        Telemetry sink; ``None`` uses the ambient recorder (a no-op
        unless inside :func:`repro.obs.recording`).

    Returns
    -------
    PartitionResult
        With one :class:`RoundStats` for initialization (round 0) and one
        per best-response round.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    name = solver_name or _variant_name(init, order)
    with rec.span("solve", solver=name, n=instance.n, k=instance.k):
        with rec.span("round", round=0, phase="init"):
            assignment = dynamics.initial_assignment(
                instance, init, rng, warm_start
            )
            sweep = dynamics.player_order(instance, order, rng)
        rounds: List[RoundStats] = [
            RoundStats(
                round_index=0,
                deviations=0,
                seconds=clock.lap(),
                potential=(
                    potential(instance, assignment) if track_potential else None
                ),
            )
        ]

        active = dynamics.ActiveSet(instance.n)
        converged = False
        round_index = 0
        while not converged:
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, name)
            if reshuffle_each_round and order == "random":
                sweep = dynamics.player_order(instance, order, rng)
            with rec.span("round", round=round_index) as round_span:
                deviations, examined = _best_response_round(
                    instance, assignment, sweep, active
                )
            rec.round_end(
                round_span, name, round_index,
                deviations=deviations,
                examined=examined,
                cost_evaluations=examined * instance.k,
                frontier_fn=active.count,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    potential=(
                        potential(instance, assignment)
                        if track_potential
                        else None
                    ),
                    players_examined=examined,
                )
            )
            converged = deviations == 0

    return make_result(
        solver=name,
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=True,
        wall_seconds=clock.total(),
        extra={"init": init, "order": order},
    )


def solve_baseline(
    instance: RMGPInstance,
    init: str = "random",
    order: str = "random",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    reshuffle_each_round: bool = False,
    track_potential: bool = False,
    solver_name: Optional[str] = None,
) -> PartitionResult:
    """Deprecated alias — use ``repro.partition(instance, solver="b")``."""
    warnings.warn(
        "solve_baseline() is deprecated; use "
        "repro.partition(instance, solver='b', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_baseline(
        instance,
        init=init,
        order=order,
        seed=seed,
        warm_start=warm_start,
        max_rounds=max_rounds,
        reshuffle_each_round=reshuffle_each_round,
        track_potential=track_potential,
        solver_name=solver_name,
    )


def _best_response_round(
    instance: RMGPInstance,
    assignment: np.ndarray,
    sweep: List[int],
    active: dynamics.ActiveSet,
) -> tuple:
    """One frontier round of Figure 3 lines 5-13.

    Mutates ``assignment`` in place so later players in the sweep see the
    up-to-date strategies of earlier ones (sequential best response).
    Only dirty players are examined; a mover marks its CSR neighbor
    slice dirty (some of whom sit later in this very sweep, exactly as
    the full sweep would reach them).  Returns ``(deviations, examined)``.
    """
    deviations = 0
    examined = 0
    tol = dynamics.DEVIATION_TOLERANCE
    flags = active.flags
    neighbor_views = instance.neighbor_indices
    for player in sweep:
        if not flags[player]:
            continue
        flags[player] = False
        examined += 1
        costs = player_strategy_costs(instance, assignment, player)
        current = int(assignment[player])
        best = int(costs.argmin())
        if best != current and costs[best] < costs[current] - tol:
            assignment[player] = best
            deviations += 1
            flags[neighbor_views[player]] = True
    return deviations, examined


def _variant_name(init: str, order: str) -> str:
    """Paper-style variant name: RMGP_b, RMGP_b+i, RMGP_b+i+o."""
    name = "RMGP_b"
    if init == "closest":
        name += "+i"
    if order == "degree":
        name += "+o"
    return name
