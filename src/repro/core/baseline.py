"""RMGP_b — the baseline best-response algorithm (Figure 3).

Each round sweeps the *frontier* of players whose costs may have changed
and replaces each one's strategy with the class minimizing his Equation 3
cost against the *current* strategies of all other players; the algorithm
stops at the first round with no deviation, which by Theorem 1 is a pure
Nash equilibrium.  Round 1 examines everyone; afterwards only players
marked dirty by a friend's move are examined (see
:class:`repro.core.dynamics.ActiveSet` — the move sequence is provably
identical to the full sweep's).

The two heuristics evaluated in Section 6.3 are exposed as parameters:
``init="closest"`` is the ``+i`` variant and ``order="degree"`` adds the
``+o`` variant.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def _solve_baseline(
    instance: RMGPInstance,
    init: str = "random",
    order: str = "random",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    reshuffle_each_round: bool = False,
    track_potential: bool = False,
    solver_name: Optional[str] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Union[None, str, SolveCheckpoint] = None,
) -> PartitionResult:
    """Run RMGP_b on ``instance``.

    Parameters
    ----------
    init:
        ``"random"`` (Figure 3 line 2) or ``"closest"`` (minimum
        assignment cost, the ``+i`` heuristic).
    order:
        Player sweep order per round: ``"random"``, ``"given"`` or
        ``"degree"`` (the ``+o`` heuristic).
    seed:
        Seeds both initialization and ordering randomness.
    warm_start:
        Previous solution used as the seed assignment (overrides
        ``init``), supporting the paper's repeated-execution scenario.
    reshuffle_each_round:
        When ``order="random"``, draw a fresh permutation every round
        instead of reusing the first one.
    track_potential:
        Record ``Φ(S)`` after every round (used by analysis and tests;
        costs one extra objective evaluation per round).
    recorder:
        Telemetry sink; ``None`` uses the ambient recorder (a no-op
        unless inside :func:`repro.obs.recording`).
    budget:
        Optional :class:`~repro.runtime.budget.RuntimeBudget` checked at
        every round boundary; on a trip the solve returns its current
        (valid, anytime) assignment with ``stop_reason`` set instead of
        raising.
    checkpoint_every / checkpoint_path:
        Write a resumable :class:`~repro.runtime.checkpoint.SolveCheckpoint`
        to ``checkpoint_path`` every N completed rounds and at any
        interrupt point.
    resume_from:
        A checkpoint (path or object) to continue from; the resumed
        trajectory is byte-identical to the uninterrupted run.

    Returns
    -------
    PartitionResult
        With one :class:`RoundStats` for initialization (round 0) and one
        per best-response round.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    name = solver_name or _variant_name(init, order)
    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, name, rec)
    with rec.span("solve", solver=name, n=instance.n, k=instance.k):
        if restored is not None:
            assignment = restored.assignment
            sweep = [int(p) for p in restored.state["sweep"]]
            active = dynamics.ActiveSet(instance.n, dirty=restored.frontier)
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init"):
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                sweep = dynamics.player_order(instance, order, rng)
            rounds = [
                RoundStats(
                    round_index=0,
                    deviations=0,
                    seconds=clock.lap(),
                    potential=(
                        potential(instance, assignment)
                        if track_potential
                        else None
                    ),
                )
            ]
            active = dynamics.ActiveSet(instance.n)
            round_index = 0

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver=name,
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=active.flags.copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={"sweep": [int(p) for p in sweep]},
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, name)
            if reshuffle_each_round and order == "random":
                sweep = dynamics.player_order(instance, order, rng)
            with rec.span("round", round=round_index) as round_span:
                deviations, examined = _best_response_round(
                    instance, assignment, sweep, active
                )
            rec.round_end(
                round_span, name, round_index,
                deviations=deviations,
                examined=examined,
                cost_evaluations=examined * instance.k,
                frontier_fn=active.count,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    potential=(
                        potential(instance, assignment)
                        if track_potential
                        else None
                    ),
                    players_examined=examined,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {"init": init, "order": order}
    if not converged:
        extra["remaining_frontier"] = active.count()
    return make_result(
        solver=name,
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


def _best_response_round(
    instance: RMGPInstance,
    assignment: np.ndarray,
    sweep: List[int],
    active: dynamics.ActiveSet,
) -> tuple:
    """One frontier round of Figure 3 lines 5-13.

    Mutates ``assignment`` in place so later players in the sweep see the
    up-to-date strategies of earlier ones (sequential best response).
    Only dirty players are examined; a mover marks its CSR neighbor
    slice dirty (some of whom sit later in this very sweep, exactly as
    the full sweep would reach them).  Returns ``(deviations, examined)``.
    """
    deviations = 0
    examined = 0
    tol = dynamics.DEVIATION_TOLERANCE
    flags = active.flags
    neighbor_views = instance.neighbor_indices
    for player in sweep:
        if not flags[player]:
            continue
        flags[player] = False
        examined += 1
        costs = player_strategy_costs(instance, assignment, player)
        current = int(assignment[player])
        best = int(costs.argmin())
        if best != current and costs[best] < costs[current] - tol:
            assignment[player] = best
            deviations += 1
            flags[neighbor_views[player]] = True
    return deviations, examined


def _variant_name(init: str, order: str) -> str:
    """Paper-style variant name: RMGP_b, RMGP_b+i, RMGP_b+i+o."""
    name = "RMGP_b"
    if init == "closest":
        name += "+i"
    if order == "degree":
        name += "+o"
    return name


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_baseline  # noqa: E402
