"""The paper's contribution: the RMGP game and its algorithm variants."""

from repro.core.analysis import (
    ClassProfile,
    ConvergenceReport,
    DeviationEvent,
    assignment_diff,
    class_profiles,
    convergence_report,
    potential_trace,
    quality_summary,
)
from repro.core.baseline import solve_baseline
from repro.core.capacitated import (
    capacity_violations,
    is_capacitated_equilibrium,
    solve_capacitated,
    solve_with_minimums,
)
from repro.core.combined import solve_all
from repro.core.costs import (
    CombinedCost,
    CostProvider,
    FunctionCost,
    MatrixCost,
    ScaledCost,
    as_cost_provider,
)
from repro.core.dynamics import initial_assignment, player_order
from repro.core.equilibrium import (
    EquilibriumReport,
    anarchy_gap,
    equilibrium_report,
    is_nash_equilibrium,
    price_of_anarchy_bound,
    price_of_stability_bound,
    round_bound,
)
from repro.core.game import SOLVERS, RMGPGame
from repro.core.global_table import (
    build_global_table,
    happiness,
    solve_global_table,
)
from repro.core.independent_sets import (
    groups_from_coloring,
    solve_independent_sets,
)
from repro.core.instance import RMGPInstance
from repro.core.normalization import (
    NormalizationEstimate,
    average_median_cost,
    average_min_cost,
    estimate_cn,
    exact_cn,
    normalize,
    normalize_with_constant,
)
from repro.core.objective import (
    ObjectiveValue,
    assignment_cost_sum,
    best_response,
    objective,
    player_cost,
    player_strategy_costs,
    potential,
    social_cost_sum,
    total_player_cost,
)
from repro.core.incremental import IncrementalRMGP
from repro.core.priority import solve_max_gain
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.core.serialize import load_assignment, load_labels, save_result
from repro.core.simultaneous import solve_simultaneous
from repro.core.strategy_elimination import (
    EliminationPlan,
    build_elimination_plan,
    solve_strategy_elimination,
)
from repro.core.vectorized import solve_vectorized

__all__ = [
    "ClassProfile",
    "CombinedCost",
    "ConvergenceReport",
    "DeviationEvent",
    "assignment_diff",
    "class_profiles",
    "convergence_report",
    "potential_trace",
    "quality_summary",
    "CostProvider",
    "EliminationPlan",
    "EquilibriumReport",
    "FunctionCost",
    "IncrementalRMGP",
    "MatrixCost",
    "NormalizationEstimate",
    "ObjectiveValue",
    "PartitionResult",
    "RMGPGame",
    "RMGPInstance",
    "RoundStats",
    "SOLVERS",
    "ScaledCost",
    "anarchy_gap",
    "as_cost_provider",
    "assignment_cost_sum",
    "average_median_cost",
    "average_min_cost",
    "best_response",
    "build_elimination_plan",
    "build_global_table",
    "capacity_violations",
    "is_capacitated_equilibrium",
    "equilibrium_report",
    "estimate_cn",
    "exact_cn",
    "groups_from_coloring",
    "happiness",
    "initial_assignment",
    "is_nash_equilibrium",
    "load_assignment",
    "load_labels",
    "make_result",
    "save_result",
    "normalize",
    "normalize_with_constant",
    "objective",
    "player_cost",
    "player_order",
    "player_strategy_costs",
    "potential",
    "price_of_anarchy_bound",
    "price_of_stability_bound",
    "round_bound",
    "social_cost_sum",
    "solve_all",
    "solve_baseline",
    "solve_capacitated",
    "solve_global_table",
    "solve_max_gain",
    "solve_with_minimums",
    "solve_simultaneous",
    "solve_vectorized",
    "solve_independent_sets",
    "solve_strategy_elimination",
    "total_player_cost",
]
