"""Post-hoc analysis of best-response dynamics and solutions.

Utilities used by the examples, the ablation benchmarks and anyone
studying the game's behaviour:

* :func:`potential_trace` — re-run the dynamics recording ``Φ`` after
  every single deviation (not just per round), the empirical view of
  Lemma 2's argument.
* :func:`convergence_report` — one bundle of the quantities the paper
  discusses: rounds, deviations per round, potential drop, the Lemma 2
  ceiling and how far below it the run stayed.
* :func:`assignment_diff` — which users moved between two solutions
  (used by the online scenario and the warm-start studies).
* :func:`class_profile` — per-class composition: members, assignment
  cost, internal/external social weight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import objective, player_strategy_costs, potential
from repro.core.result import PartitionResult


@dataclass(frozen=True)
class DeviationEvent:
    """One strategy change during a traced run."""

    step: int
    round_index: int
    player: int
    from_class: int
    to_class: int
    potential_after: float
    improvement: float


def potential_trace(
    instance: RMGPInstance,
    init: str = "random",
    order: str = "random",
    seed: Optional[int] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
) -> List[DeviationEvent]:
    """Replay RMGP_b recording ``Φ`` after every deviation.

    The returned sequence is strictly decreasing in ``potential_after``
    (Theorem 1's mechanism) — asserted by the property tests.
    """
    rng = random.Random(seed)
    assignment = dynamics.initial_assignment(instance, init, rng)
    sweep = dynamics.player_order(instance, order, rng)
    events: List[DeviationEvent] = []
    phi = potential(instance, assignment)
    step = 0
    round_index = 0
    while True:
        round_index += 1
        dynamics.check_round_budget(round_index, max_rounds, "potential_trace")
        deviations = 0
        for player in sweep:
            costs = player_strategy_costs(instance, assignment, player)
            current = int(assignment[player])
            best = int(costs.argmin())
            if best != current and (
                costs[best] < costs[current] - dynamics.DEVIATION_TOLERANCE
            ):
                improvement = float(costs[current] - costs[best])
                assignment[player] = best
                phi -= improvement  # exact potential: ΔΦ == ΔC_v
                step += 1
                deviations += 1
                events.append(
                    DeviationEvent(
                        step=step,
                        round_index=round_index,
                        player=player,
                        from_class=current,
                        to_class=best,
                        potential_after=phi,
                        improvement=improvement,
                    )
                )
        if deviations == 0:
            return events


@dataclass
class ConvergenceReport:
    """Summary of one solver run's dynamics."""

    rounds: int
    total_deviations: int
    deviations_per_round: List[int]
    initial_potential: float
    final_potential: float
    lemma2_ceiling: float

    @property
    def potential_drop(self) -> float:
        """Total decrease of ``Φ`` over the run."""
        return self.initial_potential - self.final_potential

    @property
    def ceiling_utilization(self) -> float:
        """Observed rounds over the Lemma 2 bound (usually tiny)."""
        if self.lemma2_ceiling <= 0:
            return 0.0
        return self.rounds / self.lemma2_ceiling


def convergence_report(
    instance: RMGPInstance,
    result: PartitionResult,
    scale: float = 1e6,
) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` for a finished solve.

    ``scale`` is the integrality factor ``d`` of Lemma 2 used for the
    round ceiling (costs here are floats; 1e6 treats them as fixed-point
    with six digits).
    """
    from repro.core.equilibrium import round_bound

    per_round = [r.deviations for r in result.rounds if r.round_index > 0]
    potentials = [r.potential for r in result.rounds]
    if potentials[0] is not None:
        initial = float(potentials[0])
    else:
        initial = float("nan")
    final = potential(instance, result.assignment)
    return ConvergenceReport(
        rounds=result.num_rounds,
        total_deviations=result.total_deviations,
        deviations_per_round=per_round,
        initial_potential=initial,
        final_potential=final,
        lemma2_ceiling=round_bound(instance, scale),
    )


def assignment_diff(
    instance: RMGPInstance,
    before: np.ndarray,
    after: np.ndarray,
) -> Dict[Hashable, "tuple[Hashable, Hashable]"]:
    """Users whose class changed, as ``user -> (old label, new label)``."""
    instance.validate_assignment(before)
    instance.validate_assignment(after)
    moved = {}
    for player in np.flatnonzero(np.asarray(before) != np.asarray(after)):
        moved[instance.node_ids[player]] = (
            instance.classes[int(before[player])],
            instance.classes[int(after[player])],
        )
    return moved


@dataclass(frozen=True)
class ClassProfile:
    """Composition of one class in a solution."""

    label: Hashable
    members: int
    assignment_cost: float
    internal_weight: float
    external_weight: float

    @property
    def cohesion(self) -> float:
        """Internal share of the members' social weight (0..1)."""
        total = self.internal_weight + self.external_weight
        return self.internal_weight / total if total > 0 else 1.0


def class_profiles(
    instance: RMGPInstance, assignment: np.ndarray
) -> List[ClassProfile]:
    """Per-class composition of a solution (sorted by label order)."""
    instance.validate_assignment(assignment)
    assignment = np.asarray(assignment)
    profiles = []
    for klass, label in enumerate(instance.classes):
        members = np.flatnonzero(assignment == klass)
        cost = float(
            sum(instance.cost.cost(int(p), klass) for p in members)
        )
        internal = external = 0.0
        for player in members:
            idx = instance.neighbor_indices[int(player)]
            wts = instance.neighbor_weights[int(player)]
            if idx.size == 0:
                continue
            same = assignment[idx] == klass
            internal += float(wts[same].sum())
            external += float(wts[~same].sum())
        profiles.append(
            ClassProfile(
                label=label,
                members=int(members.size),
                assignment_cost=cost,
                internal_weight=internal / 2.0,  # both endpoints counted
                external_weight=external,
            )
        )
    return profiles


def quality_summary(
    instance: RMGPInstance, assignment: np.ndarray
) -> Dict[str, float]:
    """A compact quality dict for dashboards and examples."""
    value = objective(instance, assignment)
    profiles = class_profiles(instance, assignment)
    occupied = [p for p in profiles if p.members]
    return {
        "total": value.total,
        "assignment_cost": value.assignment_cost,
        "social_cost": value.social_cost,
        "classes_used": float(len(occupied)),
        "largest_class": float(max((p.members for p in profiles), default=0)),
        "mean_cohesion": (
            float(np.mean([p.cohesion for p in occupied])) if occupied else 1.0
        ),
    }
