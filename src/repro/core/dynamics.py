"""Shared machinery for best-response dynamics (Figure 2).

Every RMGP variant follows the same skeleton: pick an initial strategy
profile, then sweep the players in rounds, replacing each player's
strategy by his best response, until a full round produces no deviation.
This module centralizes the two knobs the paper evaluates in Section 6.3:

* **Initialization** (Figure 3 line 2): ``"random"`` or ``"closest"``
  (minimum assignment cost — "the closest event"), or warm-starting from
  a previous solution ("the solution of the last execution can be used as
  the seed of the next one", Section 3.1).
* **Player ordering** (Figure 3 line 5): ``"random"``, ``"given"``
  (insertion order), or ``"degree"`` — decreasing degree, so "strategy
  changes of highly connected users (community leaders) will propagate
  fast" (Section 3.1).
"""

from __future__ import annotations

import random
import time
from typing import List, Optional

import numpy as np

from repro.core.instance import RMGPInstance
from repro.errors import ConfigurationError, ConvergenceError

#: Safety valve for the round loop.  Lemma 2 bounds rounds by
#: ``max{C*, W*}``, which is finite but instance-dependent; this default is
#: far above anything observed in practice (the paper reports 5-17 rounds).
DEFAULT_MAX_ROUNDS = 10_000

#: Minimum strict improvement for a deviation; guards against
#: floating-point jitter breaking termination.
DEVIATION_TOLERANCE = 1e-12

INIT_METHODS = ("random", "closest")
ORDER_METHODS = ("random", "given", "degree")


def initial_assignment(
    instance: RMGPInstance,
    method: str = "random",
    rng: Optional[random.Random] = None,
    warm_start: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Build the initial strategy vector.

    ``warm_start`` (a previous solve's assignment) overrides ``method``.
    """
    if warm_start is not None:
        instance.validate_assignment(warm_start)
        return np.asarray(warm_start, dtype=np.int64).copy()
    if method == "random":
        rng = rng or random.Random()
        return np.fromiter(
            (rng.randrange(instance.k) for _ in range(instance.n)),
            dtype=np.int64,
            count=instance.n,
        )
    if method == "closest":
        assignment = np.empty(instance.n, dtype=np.int64)
        for player in range(instance.n):
            assignment[player] = int(instance.cost.row(player).argmin())
        return assignment
    raise ConfigurationError(
        f"unknown init method {method!r}; expected one of {INIT_METHODS}"
    )


def player_order(
    instance: RMGPInstance,
    method: str = "random",
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Order in which a round examines players."""
    players = list(range(instance.n))
    if method == "given":
        return players
    if method == "random":
        rng = rng or random.Random()
        rng.shuffle(players)
        return players
    if method == "degree":
        degrees = instance.degrees()
        players.sort(key=lambda v: (-degrees[v], v))
        return players
    raise ConfigurationError(
        f"unknown order method {method!r}; expected one of {ORDER_METHODS}"
    )


class RoundClock:
    """Tiny helper timing each round with ``time.perf_counter``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def lap(self) -> float:
        """Seconds since the previous lap (or construction)."""
        now = time.perf_counter()
        elapsed = now - self._last
        self._last = now
        return elapsed

    def total(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


def check_round_budget(round_index: int, max_rounds: int, solver: str) -> None:
    """Raise :class:`ConvergenceError` when the budget is exhausted."""
    if round_index > max_rounds:
        raise ConvergenceError(
            f"{solver} exceeded {max_rounds} rounds without reaching an "
            "equilibrium; this should be impossible for a correct exact "
            "potential game — check that costs are static across rounds"
        )
