"""Shared machinery for best-response dynamics (Figure 2).

Every RMGP variant follows the same skeleton: pick an initial strategy
profile, then sweep the players in rounds, replacing each player's
strategy by his best response, until a full round produces no deviation.
This module centralizes the two knobs the paper evaluates in Section 6.3:

* **Initialization** (Figure 3 line 2): ``"random"`` or ``"closest"``
  (minimum assignment cost — "the closest event"), or warm-starting from
  a previous solution ("the solution of the last execution can be used as
  the seed of the next one", Section 3.1).
* **Player ordering** (Figure 3 line 5): ``"random"``, ``"given"``
  (insertion order), or ``"degree"`` — decreasing degree, so "strategy
  changes of highly connected users (community leaders) will propagate
  fast" (Section 3.1).

It also hosts :class:`ActiveSet`, the dirty-frontier scheduler shared by
every best-response solver: rounds examine only players whose costs may
have changed since their last examination, which is equivalent to the
full sweep move for move (see the class docstring for the argument).
"""

from __future__ import annotations

import random
import time
from typing import List, Optional

import numpy as np

from repro.core.instance import RMGPInstance
from repro.errors import ConfigurationError, ConvergenceError

#: Safety valve for the round loop.  Lemma 2 bounds rounds by
#: ``max{C*, W*}``, which is finite but instance-dependent; this default is
#: far above anything observed in practice (the paper reports 5-17 rounds).
DEFAULT_MAX_ROUNDS = 10_000

#: Minimum strict improvement for a deviation; guards against
#: floating-point jitter breaking termination.
DEVIATION_TOLERANCE = 1e-12

INIT_METHODS = ("random", "closest")
ORDER_METHODS = ("random", "given", "degree")


def initial_assignment(
    instance: RMGPInstance,
    method: str = "random",
    rng: Optional[random.Random] = None,
    warm_start: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Build the initial strategy vector.

    ``warm_start`` (a previous solve's assignment) overrides ``method``.
    """
    if warm_start is not None:
        instance.validate_assignment(warm_start)
        return np.asarray(warm_start, dtype=np.int64).copy()
    if method == "random":
        rng = rng or random.Random()
        return np.fromiter(
            (rng.randrange(instance.k) for _ in range(instance.n)),
            dtype=np.int64,
            count=instance.n,
        )
    if method == "closest":
        if instance.n == 0:
            return np.empty(0, dtype=np.int64)
        # One dense argmin instead of a per-player Python loop; providers
        # that cannot materialize cheaply pay the same per-row work the
        # loop did, matrix-backed providers become a single numpy call.
        return instance.cost.dense().argmin(axis=1).astype(np.int64)
    raise ConfigurationError(
        f"unknown init method {method!r}; expected one of {INIT_METHODS}"
    )


def player_order(
    instance: RMGPInstance,
    method: str = "random",
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Order in which a round examines players."""
    players = list(range(instance.n))
    if method == "given":
        return players
    if method == "random":
        rng = rng or random.Random()
        rng.shuffle(players)
        return players
    if method == "degree":
        degrees = instance.degrees()
        players.sort(key=lambda v: (-degrees[v], v))
        return players
    raise ConfigurationError(
        f"unknown order method {method!r}; expected one of {ORDER_METHODS}"
    )


class ActiveSet:
    """Dirty-frontier scheduler for best-response rounds.

    The paper observes that "strategy changes ... propagate" outward from
    movers (§3.1): after the first round only a shrinking frontier of
    players can possibly improve.  ``ActiveSet`` tracks that frontier as
    a boolean dirty array — a round examines only dirty players, clears
    each flag at examination, and a player's *move* marks exactly its
    CSR neighbor slice dirty.

    Equivalence to the full sweep: a clean player's strategy costs are
    unchanged since he was last examined (none of his friends moved), so
    examining him is provably a no-op — skipping clean players reproduces
    the full-sweep move sequence *exactly*, and "frontier empty" implies
    a quiet full sweep (a pure Nash equilibrium, Theorem 1).
    """

    def __init__(self, n: int, dirty: Optional[np.ndarray] = None) -> None:
        if dirty is None:
            self.flags = np.ones(n, dtype=bool)
        else:
            self.flags = np.array(dirty, dtype=bool, copy=True)
            if self.flags.shape != (n,):
                raise ConfigurationError(
                    f"dirty flags have shape {self.flags.shape}, expected ({n},)"
                )

    def mark(self, players) -> None:
        """Flag ``players`` (array/list of indices) for re-examination."""
        self.flags[players] = True

    def clear(self, players) -> None:
        """Unflag ``players`` after their best responses were computed."""
        self.flags[players] = False

    def is_dirty(self, player: int) -> bool:
        return bool(self.flags[player])

    def any_dirty(self) -> bool:
        """True while the frontier is non-empty (game may be unquiet)."""
        return bool(self.flags.any())

    def count(self) -> int:
        """Current frontier size (the accurate ``players_examined``)."""
        return int(self.flags.sum())

    def pending(self, members: Optional[np.ndarray] = None) -> np.ndarray:
        """Dirty player indices, optionally restricted to ``members``.

        With ``members`` given, the result preserves ``members`` order —
        what the group-batched solvers need to keep their sweep schedule.
        """
        if members is None:
            return np.flatnonzero(self.flags)
        members = np.asarray(members, dtype=np.int64)
        return members[self.flags[members]]


class RoundClock:
    """Tiny helper timing each round with ``time.perf_counter``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last = self._start

    def lap(self) -> float:
        """Seconds since the previous lap (or construction)."""
        now = time.perf_counter()
        elapsed = now - self._last
        self._last = now
        return elapsed

    def total(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


def check_round_budget(round_index: int, max_rounds: int, solver: str) -> None:
    """Raise :class:`ConvergenceError` when the budget is exhausted."""
    if round_index > max_rounds:
        raise ConvergenceError(
            f"{solver} exceeded {max_rounds} rounds without reaching an "
            "equilibrium; this should be impossible for a correct exact "
            "potential game — check that costs are static across rounds"
        )
