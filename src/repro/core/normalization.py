"""RMGP_N — cost normalization (Section 3.3).

When assignment costs (e.g. distances in meters) and edge weights live on
wildly different scales, one term of Equation 1 dominates and the
partition degenerates.  RMGP_N rescales the assignment cost by a constant

    C_N = SC_v / (2 · AC_v)

chosen so that at ``α = 0.5`` the two *average per-user* cost components
are comparable.  ``AC_v`` and ``SC_v`` are only known after solving, so
the paper proposes two a-priori estimates:

* **optimistic** — every user joins his cheapest class
  (``AC_v = dist_min``) and only a ``1/√k`` fraction of his friends end
  up elsewhere:  ``C_N = deg_avg · w_avg / (2 · dist_min · √k)``.
* **pessimistic** — every user pays his *median* class cost
  (``AC_v = dist_med``) and friends scatter uniformly over the ``k``
  classes, leaving a ``(k−1)/k`` fraction elsewhere:
  ``C_N = deg_avg · (k−1) · w_avg / (2 · dist_med · k)``.

Normalization is a pure rescaling of the cost provider, so every game
property (exact potential, convergence, PoS/PoA) carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.core.costs import ScaledCost
from repro.core.instance import RMGPInstance
from repro.errors import ConfigurationError

NORMALIZATION_METHODS = ("optimistic", "pessimistic")


@dataclass(frozen=True)
class NormalizationEstimate:
    """The ingredients and value of one ``C_N`` estimate."""

    method: str
    cn: float
    deg_avg: float
    w_avg: float
    k: int
    avg_min_cost: float
    avg_median_cost: float

    def __str__(self) -> str:
        return f"C_N[{self.method}]={self.cn:.6g}"


def average_min_cost(instance: RMGPInstance) -> float:
    """``dist_min``: mean over users of their cheapest class cost."""
    if instance.n == 0:
        return 0.0
    return float(
        np.mean([instance.cost.row(v).min() for v in range(instance.n)])
    )


def average_median_cost(instance: RMGPInstance) -> float:
    """``dist_med``: mean over users of their median class cost."""
    if instance.n == 0:
        return 0.0
    return float(
        np.mean([np.median(instance.cost.row(v)) for v in range(instance.n)])
    )


def estimate_cn(instance: RMGPInstance, method: str) -> NormalizationEstimate:
    """Estimate the normalization constant with either heuristic."""
    if method not in NORMALIZATION_METHODS:
        raise ConfigurationError(
            f"unknown normalization method {method!r}; "
            f"expected one of {NORMALIZATION_METHODS}"
        )
    deg_avg = instance.graph.average_degree()
    w_avg = instance.graph.average_edge_weight()
    k = instance.k
    avg_min = average_min_cost(instance)
    avg_med = average_median_cost(instance)

    if method == "optimistic":
        denominator = 2.0 * avg_min * sqrt(k)
        numerator = deg_avg * w_avg
    else:
        denominator = 2.0 * avg_med * k
        numerator = deg_avg * (k - 1) * w_avg

    if denominator <= 0 or numerator <= 0:
        # Degenerate inputs (no edges, zero costs, k=1): scaling by 1
        # leaves the instance untouched rather than dividing by zero.
        cn = 1.0
    else:
        cn = numerator / denominator
    return NormalizationEstimate(
        method=method,
        cn=cn,
        deg_avg=deg_avg,
        w_avg=w_avg,
        k=k,
        avg_min_cost=avg_min,
        avg_median_cost=avg_med,
    )


def normalize(
    instance: RMGPInstance, method: str = "pessimistic"
) -> "tuple[RMGPInstance, NormalizationEstimate]":
    """Return ``(normalized instance, estimate)`` for Equation 7.

    The returned instance shares the graph and classes; only its cost
    provider is wrapped in a :class:`~repro.core.costs.ScaledCost` with
    factor ``C_N``.
    """
    estimate = estimate_cn(instance, method)
    scaled = instance.with_cost(ScaledCost(instance.cost, estimate.cn))
    return scaled, estimate


def normalize_with_constant(
    instance: RMGPInstance, cn: float
) -> RMGPInstance:
    """Rescale assignment costs by an explicit, pre-computed ``C_N``."""
    if cn <= 0:
        raise ConfigurationError(f"C_N must be positive, got {cn}")
    return instance.with_cost(ScaledCost(instance.cost, cn))


def exact_cn(instance: RMGPInstance, assignment: np.ndarray) -> float:
    """The *a posteriori* ``C_N = SC_v / (2 · AC_v)`` of a solved game.

    Useful to judge how close the heuristics came; not usable up front
    because it "requires AC_v and SC_v, which can only be obtained after
    solving the problem" (Section 3.3).
    """
    from repro.core.objective import assignment_cost_sum, social_cost_sum

    instance.validate_assignment(assignment)
    if instance.n == 0:
        return 1.0
    ac = assignment_cost_sum(instance, assignment) / instance.n
    # SC_v is the per-user crossing weight: each crossing edge contributes
    # to both endpoints, hence the factor 2 over the cut weight.
    sc = 2.0 * social_cost_sum(instance, assignment) / instance.n
    if ac <= 0:
        return 1.0
    return sc / (2.0 * ac)
