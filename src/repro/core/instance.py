"""RMGP problem instances: graph + classes + costs + preference parameter.

An :class:`RMGPInstance` freezes one query — the induced social graph, the
query-time class set ``P``, the assignment-cost provider, and ``α`` — into
index space: players are ``0..n-1`` and classes ``0..k-1``, with
numpy-backed adjacency so that every solver round runs in
``O(k·|V| + |E|)`` vectorized work (Lemma 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.costs import CostProvider, as_cost_provider
from repro.errors import ConfigurationError, GraphError
from repro.graph.social_graph import NodeId, SocialGraph


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` without a Python loop.

    The workhorse of frontier scheduling: given CSR slice starts and
    lengths it produces the flat positions of every (player, edge)
    incidence in one vectorized pass.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    nonzero = counts > 0
    if not nonzero.all():
        starts = starts[nonzero]
        counts = counts[nonzero]
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.ones(ends[-1], dtype=np.int64)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


class RMGPInstance:
    """One RMGP query over a social graph.

    Parameters
    ----------
    graph:
        The (already query-restricted) social graph.  For area-of-interest
        queries pass ``graph.subgraph(relevant_users)``.
    classes:
        The query-time class labels ``P`` (events, advertisements, ...).
    cost:
        Assignment costs: an ``n x k`` matrix aligned with
        ``graph.nodes()`` order, a :class:`~repro.core.costs.CostProvider`,
        or a callable ``row(player_index) -> length-k sequence``.
    alpha:
        Preference parameter ``α ∈ (0, 1)`` weighting assignment versus
        social cost (Equation 1).

    Attributes
    ----------
    node_ids:
        Player index -> original user id.
    indptr / indices / weights / half_weights:
        Flat CSR adjacency: player ``v``'s friends occupy
        ``indices[indptr[v]:indptr[v+1]]`` with matching edge weights
        (``half_weights`` pre-halves them for the ``½·w`` refunds).
        ``edge_owner`` holds the owning row of every CSR slot.
    neighbor_indices / neighbor_weights:
        Per player, zero-copy views into the CSR arrays — the ragged
        index-space ``adj(v)`` kept for compatibility.
    """

    def __init__(
        self,
        graph: SocialGraph,
        classes: Sequence[Hashable],
        cost: "np.ndarray | CostProvider | Callable[[int], Sequence[float]]",
        alpha: float = 0.5,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        classes = list(classes)
        if not classes:
            raise ConfigurationError("the class set P must be non-empty")
        if len(set(map(repr, classes))) != len(classes):
            raise ConfigurationError("class labels must be distinct")

        self.graph = graph
        self.classes = classes
        self.alpha = float(alpha)
        self.node_ids: List[NodeId] = graph.nodes()
        self.index_of: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self.node_ids)
        }

        self.cost = as_cost_provider(
            cost, num_players=len(self.node_ids), num_classes=len(classes)
        )
        if self.cost.num_players != len(self.node_ids):
            raise ConfigurationError(
                f"cost has {self.cost.num_players} players, graph has {len(self.node_ids)}"
            )
        if self.cost.num_classes != len(classes):
            raise ConfigurationError(
                f"cost has {self.cost.num_classes} classes, P has {len(classes)}"
            )
        self._build_adjacency()

    # ------------------------------------------------------------------
    def _csr_buffer(self, name: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` view into a capacity-managed scratch buffer.

        Mutation feeds rebuild the CSR layout once per batch; reallocating
        every flat array each time would dominate sustained churn.  Each
        named buffer therefore grows geometrically (1.5x + slack) and is
        never shrunk, so a long run of same-scale rebuilds performs zero
        allocations — the "bounded reallocation" contract of the
        streaming layer.  The returned view aliases the buffer: treat the
        published arrays as read-only snapshots that are refreshed (in
        place) by :meth:`rebuild_adjacency`.
        """
        buffers = self.__dict__.setdefault("_csr_scratch", {})
        buffer = buffers.get(name)
        if buffer is None or buffer.size < size:
            capacity = max(size + (size >> 1), 8)
            buffer = np.empty(capacity, dtype=dtype)
            buffers[name] = buffer
        return buffer[:size]

    def _build_adjacency(self) -> None:
        """Build the shared CSR adjacency layout (plus compatibility views).

        ``indptr``/``indices``/``weights`` is the flat index-space
        ``adj(v)`` for every player at once; ``half_weights`` pre-halves
        the edge weights (the ``½·w`` factor every refund uses) and
        ``edge_owner`` records the owning player row of each CSR slot, so
        whole-table scatters can run as one ``np.bincount``.  The ragged
        ``neighbor_indices``/``neighbor_weights`` lists stay available as
        zero-copy views into the flat arrays.  Flat arrays live in
        capacity-managed buffers (:meth:`_csr_buffer`), so repeated
        rebuilds under churn do not reallocate.
        """
        graph, node_ids = self.graph, self.node_ids
        n = len(node_ids)
        degrees = np.fromiter(
            (len(graph.neighbors(node)) for node in node_ids),
            dtype=np.int64,
            count=n,
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        num_slots = int(indptr[-1])
        indices = self._csr_buffer("indices", num_slots, np.int64)
        weights = self._csr_buffer("weights", num_slots, np.float64)
        index_of = self.index_of
        pos = 0
        for node in node_ids:
            neighbors = graph.neighbors(node)
            count = len(neighbors)
            try:
                row_indices = np.fromiter(
                    (index_of[f] for f in neighbors), dtype=np.int64,
                    count=count,
                )
            except KeyError as exc:
                raise GraphError(
                    f"edge {node!r} -> {exc.args[0]!r} dangles: the "
                    "endpoint is not a node of the graph"
                ) from exc
            row_weights = np.fromiter(
                neighbors.values(), dtype=np.float64, count=count
            )
            # Canonical slot order (ascending neighbor index): the CSR
            # layout is then a pure function of the node order and edge
            # *set*, independent of adjacency-dict insertion history —
            # what lets a mutation stream and its inverse round-trip the
            # flat arrays byte-identically.
            if count > 1:
                order = np.argsort(row_indices, kind="stable")
                row_indices = row_indices[order]
                row_weights = row_weights[order]
            indices[pos : pos + count] = row_indices
            weights[pos : pos + count] = row_weights
            pos += count
        if not np.isfinite(weights).all():
            raise GraphError("edge weights must be finite (found NaN/inf)")
        if weights.size and weights.min() < 0:
            raise GraphError("edge weights must be non-negative")

        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.half_weights = np.multiply(
            weights, 0.5, out=self._csr_buffer("half_weights", num_slots,
                                               np.float64)
        )
        self.edge_owner = np.repeat(np.arange(n, dtype=np.int64), degrees)
        self._degrees = degrees

        # Ragged per-player views into the CSR arrays (compatibility API).
        self.neighbor_indices: List[np.ndarray] = [
            indices[indptr[i] : indptr[i + 1]] for i in range(n)
        ]
        self.neighbor_weights: List[np.ndarray] = [
            weights[indptr[i] : indptr[i + 1]] for i in range(n)
        ]

        # max social cost per player: (1 - α) · Σ_f ½·w(v, f), the
        # "all friends elsewhere" ceiling of Figure 3 line 3.
        self._half_strength = np.array(
            [0.5 * wts.sum() for wts in self.neighbor_weights], dtype=np.float64
        )
        self.max_social_cost = (1.0 - self.alpha) * self._half_strength

    def rebuild_adjacency(self, nodes: Optional[Iterable[NodeId]] = None) -> None:
        """Refresh the CSR layout after the underlying graph changed.

        Degree changes shift every downstream CSR slice, so the layout is
        rebuilt wholesale — O(|V| + |E|) vectorized work, cheap next to
        any re-solve.  ``nodes`` is accepted for interface symmetry with
        the old per-player patching; the rebuild covers them regardless.
        """
        del nodes  # the flat rebuild refreshes every player
        self._build_adjacency()

    def update_edge_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Patch the weight of an *existing* edge without a layout rebuild.

        Degrees are unchanged by a weight overwrite, so the CSR slices
        stay valid: only the two slots of the edge (one per direction),
        the pre-halved copies, and both endpoints' ``half_strength`` /
        ``max_social_cost`` entries are touched — O(deg(u) + deg(v))
        against the O(|V| + |E|) of :meth:`rebuild_adjacency`.  The
        underlying :class:`SocialGraph` is updated too, keeping its
        stored totals exact.
        """
        weight = float(weight)
        if not np.isfinite(weight) or weight <= 0:
            raise GraphError(
                f"edge ({u!r}, {v!r}) weight must be positive and finite, "
                f"got {weight}"
            )
        if not self.graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        iu, iv = self.index_of[u], self.index_of[v]
        old = self.graph.weight(u, v)
        self.graph.add_edge(u, v, weight)  # overwrite keeps totals exact
        for me, other in ((iu, iv), (iv, iu)):
            row = slice(int(self.indptr[me]), int(self.indptr[me + 1]))
            slot = row.start + int(
                np.nonzero(self.indices[row] == other)[0][0]
            )
            self.weights[slot] = weight
            self.half_weights[slot] = 0.5 * weight
            self._half_strength[me] += 0.5 * (weight - old)
            self.max_social_cost[me] = (
                (1.0 - self.alpha) * self._half_strength[me]
            )

    def csr_arrays(self) -> Dict[str, np.ndarray]:
        """The CSR adjacency arrays the parallel backends ship to workers.

        Name -> array for ``indptr``/``indices``/``weights``/
        ``half_weights`` — exactly the read-only graph state a
        :class:`repro.parallel.shm.ShmArena` maps once per solve.  The
        arrays are the live instance buffers, not copies; treat them as
        read-only (mutate via :meth:`update_edge_weight` /
        :meth:`rebuild_adjacency` so the derived state stays coherent).
        """
        return {
            "indptr": self.indptr,
            "indices": self.indices,
            "weights": self.weights,
            "half_weights": self.half_weights,
        }

    def neighbors_of(self, players: np.ndarray) -> np.ndarray:
        """Flat neighbor indices of ``players`` (CSR slice concatenation).

        The frontier-marking primitive: the result of a batch of moves is
        exactly this set becoming dirty for the next round.
        """
        players = np.asarray(players, dtype=np.int64)
        return self.indices[
            concat_ranges(self.indptr[players], self._degrees[players])
        ]

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of players, |V|."""
        return len(self.node_ids)

    @property
    def k(self) -> int:
        """Number of classes, |P|."""
        return len(self.classes)

    @property
    def half_strength(self) -> np.ndarray:
        """``W_v = Σ_f ½·w(v, f)`` per player (Section 4.1)."""
        return self._half_strength

    def degrees(self) -> np.ndarray:
        """Degree of each player, index-aligned.

        Memoized from the CSR ``indptr`` diffs; treat the returned array
        as read-only (it is refreshed by :meth:`rebuild_adjacency`).
        """
        return self._degrees

    def with_cost(self, cost: CostProvider) -> "RMGPInstance":
        """Clone this instance with a different cost provider.

        Used by normalization, which rescales assignment costs while the
        graph, classes and ``α`` stay fixed.
        """
        return RMGPInstance(self.graph, self.classes, cost, self.alpha)

    def with_alpha(self, alpha: float) -> "RMGPInstance":
        """Clone this instance with a different preference parameter."""
        return RMGPInstance(self.graph, self.classes, self.cost, alpha)

    # ------------------------------------------------------------------
    def assignment_to_labels(
        self, assignment: np.ndarray
    ) -> Dict[NodeId, Hashable]:
        """Convert an index-space assignment to ``user id -> class label``."""
        self.validate_assignment(assignment)
        return {
            self.node_ids[i]: self.classes[assignment[i]] for i in range(self.n)
        }

    def labels_to_assignment(
        self, labels: Dict[NodeId, Hashable]
    ) -> np.ndarray:
        """Convert ``user id -> class label`` to an index-space vector."""
        class_index = {repr(c): j for j, c in enumerate(self.classes)}
        assignment = np.empty(self.n, dtype=np.int64)
        for node, label in labels.items():
            if node not in self.index_of:
                raise ConfigurationError(f"unknown user {node!r}")
            key = repr(label)
            if key not in class_index:
                raise ConfigurationError(f"unknown class {label!r}")
            assignment[self.index_of[node]] = class_index[key]
        if len(labels) != self.n:
            raise ConfigurationError(
                f"labels cover {len(labels)} of {self.n} players"
            )
        return assignment

    def validate_assignment(self, assignment: np.ndarray) -> None:
        """Raise unless ``assignment`` is a complete, in-range strategy vector."""
        assignment = np.asarray(assignment)
        if assignment.shape != (self.n,):
            raise ConfigurationError(
                f"assignment has shape {assignment.shape}, expected ({self.n},)"
            )
        if self.n and (assignment.min() < 0 or assignment.max() >= self.k):
            raise ConfigurationError("assignment contains out-of-range classes")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RMGPInstance(n={self.n}, k={self.k}, alpha={self.alpha}, "
            f"|E|={self.graph.num_edges})"
        )
