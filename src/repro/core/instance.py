"""RMGP problem instances: graph + classes + costs + preference parameter.

An :class:`RMGPInstance` freezes one query — the induced social graph, the
query-time class set ``P``, the assignment-cost provider, and ``α`` — into
index space: players are ``0..n-1`` and classes ``0..k-1``, with
numpy-backed adjacency so that every solver round runs in
``O(k·|V| + |E|)`` vectorized work (Lemma 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence

import numpy as np

from repro.core.costs import CostProvider, as_cost_provider
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId, SocialGraph


class RMGPInstance:
    """One RMGP query over a social graph.

    Parameters
    ----------
    graph:
        The (already query-restricted) social graph.  For area-of-interest
        queries pass ``graph.subgraph(relevant_users)``.
    classes:
        The query-time class labels ``P`` (events, advertisements, ...).
    cost:
        Assignment costs: an ``n x k`` matrix aligned with
        ``graph.nodes()`` order, a :class:`~repro.core.costs.CostProvider`,
        or a callable ``row(player_index) -> length-k sequence``.
    alpha:
        Preference parameter ``α ∈ (0, 1)`` weighting assignment versus
        social cost (Equation 1).

    Attributes
    ----------
    node_ids:
        Player index -> original user id.
    neighbor_indices / neighbor_weights:
        Per player, numpy arrays of friend indices and edge weights —
        the index-space ``adj(v)``.
    """

    def __init__(
        self,
        graph: SocialGraph,
        classes: Sequence[Hashable],
        cost: "np.ndarray | CostProvider | Callable[[int], Sequence[float]]",
        alpha: float = 0.5,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        classes = list(classes)
        if not classes:
            raise ConfigurationError("the class set P must be non-empty")
        if len(set(map(repr, classes))) != len(classes):
            raise ConfigurationError("class labels must be distinct")

        self.graph = graph
        self.classes = classes
        self.alpha = float(alpha)
        self.node_ids: List[NodeId] = graph.nodes()
        self.index_of: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self.node_ids)
        }

        self.cost = as_cost_provider(
            cost, num_players=len(self.node_ids), num_classes=len(classes)
        )
        if self.cost.num_players != len(self.node_ids):
            raise ConfigurationError(
                f"cost has {self.cost.num_players} players, graph has {len(self.node_ids)}"
            )
        if self.cost.num_classes != len(classes):
            raise ConfigurationError(
                f"cost has {self.cost.num_classes} classes, P has {len(classes)}"
            )

        self.neighbor_indices: List[np.ndarray] = []
        self.neighbor_weights: List[np.ndarray] = []
        for node in self.node_ids:
            neighbors = graph.neighbors(node)
            idx = np.fromiter(
                (self.index_of[f] for f in neighbors), dtype=np.int64,
                count=len(neighbors),
            )
            wts = np.fromiter(
                neighbors.values(), dtype=np.float64, count=len(neighbors)
            )
            self.neighbor_indices.append(idx)
            self.neighbor_weights.append(wts)

        # max social cost per player: (1 - α) · Σ_f ½·w(v, f), the
        # "all friends elsewhere" ceiling of Figure 3 line 3.
        self._half_strength = np.array(
            [0.5 * wts.sum() for wts in self.neighbor_weights], dtype=np.float64
        )
        self.max_social_cost = (1.0 - self.alpha) * self._half_strength

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of players, |V|."""
        return len(self.node_ids)

    @property
    def k(self) -> int:
        """Number of classes, |P|."""
        return len(self.classes)

    @property
    def half_strength(self) -> np.ndarray:
        """``W_v = Σ_f ½·w(v, f)`` per player (Section 4.1)."""
        return self._half_strength

    def degrees(self) -> np.ndarray:
        """Degree of each player, index-aligned."""
        return np.array([len(idx) for idx in self.neighbor_indices], dtype=np.int64)

    def with_cost(self, cost: CostProvider) -> "RMGPInstance":
        """Clone this instance with a different cost provider.

        Used by normalization, which rescales assignment costs while the
        graph, classes and ``α`` stay fixed.
        """
        return RMGPInstance(self.graph, self.classes, cost, self.alpha)

    def with_alpha(self, alpha: float) -> "RMGPInstance":
        """Clone this instance with a different preference parameter."""
        return RMGPInstance(self.graph, self.classes, self.cost, alpha)

    # ------------------------------------------------------------------
    def assignment_to_labels(
        self, assignment: np.ndarray
    ) -> Dict[NodeId, Hashable]:
        """Convert an index-space assignment to ``user id -> class label``."""
        self.validate_assignment(assignment)
        return {
            self.node_ids[i]: self.classes[assignment[i]] for i in range(self.n)
        }

    def labels_to_assignment(
        self, labels: Dict[NodeId, Hashable]
    ) -> np.ndarray:
        """Convert ``user id -> class label`` to an index-space vector."""
        class_index = {repr(c): j for j, c in enumerate(self.classes)}
        assignment = np.empty(self.n, dtype=np.int64)
        for node, label in labels.items():
            if node not in self.index_of:
                raise ConfigurationError(f"unknown user {node!r}")
            key = repr(label)
            if key not in class_index:
                raise ConfigurationError(f"unknown class {label!r}")
            assignment[self.index_of[node]] = class_index[key]
        if len(labels) != self.n:
            raise ConfigurationError(
                f"labels cover {len(labels)} of {self.n} players"
            )
        return assignment

    def validate_assignment(self, assignment: np.ndarray) -> None:
        """Raise unless ``assignment`` is a complete, in-range strategy vector."""
        assignment = np.asarray(assignment)
        if assignment.shape != (self.n,):
            raise ConfigurationError(
                f"assignment has shape {assignment.shape}, expected ({self.n},)"
            )
        if self.n and (assignment.min() < 0 or assignment.max() >= self.k):
            raise ConfigurationError("assignment contains out-of-range classes")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RMGPInstance(n={self.n}, k={self.k}, alpha={self.alpha}, "
            f"|E|={self.graph.num_edges})"
        )
