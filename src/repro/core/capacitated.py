"""Capacity-constrained RMGP — events with limited seats.

The paper's related work points at LAGP "assuming that events have
minimum and maximum participation constraints" (Section 2.1, [16]) and
leaves the combination with the game-theoretic framework open.  This
module adds both sides: *maximum* capacities inside the dynamics
(:func:`solve_capacitated`) and *minimum* participation via the
cancel-and-resolve loop of :func:`solve_with_minimums`.  The maximum
side works as follows:

* A class ``p`` with capacity ``cap_p`` can hold at most that many
  players; a player may deviate to ``p`` only while it has a free seat
  (or by improving within his current class).
* Every permitted deviation still strictly decreases the exact potential
  ``Φ`` — capacities only *restrict* the move set, they never create new
  moves — so best-response dynamics still terminate, now at a
  *capacitated equilibrium*: no player can improve by moving to a class
  with spare capacity.

Note the solution concept is weaker than an unconstrained Nash
equilibrium: profitable *swaps* between two players in full classes are
not explored (doing so is a different game).  :func:`capacity_violations`
and the equilibrium check below make the guarantee testable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError, DataError
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def validate_capacities(
    instance: RMGPInstance, capacities: Sequence[int]
) -> np.ndarray:
    """Check shape and total feasibility; returns an int array."""
    caps = np.asarray(list(capacities), dtype=np.int64)
    if caps.shape != (instance.k,):
        raise ConfigurationError(
            f"need one capacity per class ({instance.k}), got {caps.shape}"
        )
    if (caps < 0).any():
        raise ConfigurationError("capacities must be non-negative")
    if caps.sum() < instance.n:
        raise ConfigurationError(
            f"total capacity {int(caps.sum())} cannot seat {instance.n} players"
        )
    return caps


def feasible_initial_assignment(
    instance: RMGPInstance,
    capacities: np.ndarray,
    rng: random.Random,
    init: str = "closest",
) -> np.ndarray:
    """Feasible start: players claim cheap seats greedily.

    With ``init="closest"`` players are processed in random order and
    take the cheapest class with a free seat; ``init="random"`` takes a
    random free class.
    """
    assignment = np.full(instance.n, -1, dtype=np.int64)
    load = np.zeros(instance.k, dtype=np.int64)
    order = list(range(instance.n))
    rng.shuffle(order)
    for player in order:
        if init == "closest":
            row = instance.cost.row(player)
            for klass in np.argsort(row, kind="stable"):
                if load[klass] < capacities[klass]:
                    assignment[player] = int(klass)
                    load[klass] += 1
                    break
        else:
            free = np.flatnonzero(load < capacities)
            klass = int(free[rng.randrange(len(free))])
            assignment[player] = klass
            load[klass] += 1
    return assignment


def _solve_capacitated(
    instance: RMGPInstance,
    capacities: Sequence[int],
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
    _checkpoint_solver: str = "RMGP_cap",
    _extra_state: Optional[dict] = None,
) -> PartitionResult:
    """Best-response dynamics under per-class maximum capacities.

    Every round sweeps all ``n`` players — deliberately *not* the dirty
    frontier of the other solvers: seat availability is global state, so
    a "clean" player's best response can change when someone else frees
    a seat in a class he wants.  ``players_examined == n`` is therefore
    the true per-round work, not an unexamined assumption.

    ``_checkpoint_solver``/``_extra_state`` are internal hooks for
    :func:`solve_with_minimums`, which labels the checkpoints of its
    current stage as ``RMGP_minpart`` and rides its outer loop state
    (canceled classes, stage counters) along in them.
    """
    caps = validate_capacities(instance, capacities)
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, _checkpoint_solver, rec)
    with rec.span("solve", solver="RMGP_cap", n=instance.n, k=instance.k):
        if restored is not None:
            stored_caps = np.asarray(
                restored.state["capacities"], dtype=np.int64
            )
            if not np.array_equal(stored_caps, caps):
                raise DataError(
                    "checkpoint was taken under different capacities "
                    f"({stored_caps.tolist()} vs {caps.tolist()})"
                )
            assignment = restored.assignment
            load = np.bincount(assignment, minlength=instance.k)
            sweep = [int(p) for p in restored.state["sweep"]]
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init"):
                assignment = feasible_initial_assignment(
                    instance, caps, rng, init
                )
                load = np.bincount(assignment, minlength=instance.k)
                sweep = dynamics.player_order(instance, order, rng)
            rounds = [RoundStats(0, 0, clock.lap())]
            round_index = 0

        def make_checkpoint() -> SolveCheckpoint:
            state = {
                "sweep": [int(p) for p in sweep],
                "capacities": caps.copy(),
            }
            if _extra_state:
                state.update(_extra_state)
            return SolveCheckpoint(
                solver=_checkpoint_solver,
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=np.zeros(0, dtype=bool),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state=state,
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        tol = dynamics.DEVIATION_TOLERANCE
        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, "RMGP_cap")
            deviations = 0
            with rec.span("round", round=round_index) as round_span:
                for player in sweep:
                    costs = player_strategy_costs(
                        instance, assignment, player
                    )
                    current = int(assignment[player])
                    # Only classes with a free seat (or the current one)
                    # are open.
                    open_classes = (load < caps) | (
                        np.arange(instance.k) == current
                    )
                    costs[~open_classes] = np.inf
                    best = int(costs.argmin())
                    if best != current and costs[best] < costs[current] - tol:
                        assignment[player] = best
                        load[current] -= 1
                        load[best] += 1
                        deviations += 1
            rec.round_end(
                round_span, "RMGP_cap", round_index,
                deviations=deviations,
                examined=instance.n,
                cost_evaluations=instance.n * instance.k,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    players_examined=instance.n,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    return make_result(
        solver="RMGP_cap",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra={
            "capacities": caps.tolist(),
            "loads": np.bincount(assignment, minlength=instance.k).tolist(),
        },
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


def _solve_with_minimums(
    instance: RMGPInstance,
    min_participants: int,
    capacities: Optional[Sequence[int]] = None,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """RMGP with *minimum* participation: undersubscribed events cancel.

    The related work the paper cites ([16], Section 2.1) studies LAGP
    where "events that cannot reach the minimum number of participants
    are canceled".  This solver composes that semantics with the game:

    1. solve (optionally under maximum ``capacities``),
    2. cancel the non-empty class with the fewest attendees if it has
       fewer than ``min_participants``,
    3. re-solve over the surviving classes, and repeat.

    Terminates after at most ``k − 1`` cancellations.  The result's
    assignment is over the *original* class indices; canceled classes end
    up empty, and ``extra["canceled"]`` lists them in cancellation order.

    The returned result's ``wall_seconds`` covers the *entire*
    cancel-and-resolve loop and ``extra["rounds_total"]`` sums the rounds
    of every re-solve; ``rounds`` (the per-round stats) describe the
    final re-solve only.

    Real-time semantics: the ``budget`` spans the whole cancel-and-
    resolve composition (each stage polls it at its round boundaries),
    and checkpoints are written by the *current stage* with the outer
    loop state riding along — resuming restarts mid-stage exactly where
    the interrupt landed.
    """
    if min_participants < 0:
        raise ConfigurationError("min_participants must be non-negative")
    if capacities is not None:
        caps = validate_capacities(instance, capacities)
    else:
        caps = np.full(instance.k, instance.n, dtype=np.int64)

    rec = active_recorder(recorder)
    loop_clock = dynamics.RoundClock()
    restored = load_resume(resume_from, instance, "RMGP_minpart", rec)
    if restored is not None:
        active = np.asarray(
            restored.state["minpart_active"], dtype=bool
        ).copy()
        canceled = [int(klass) for klass in restored.state["minpart_canceled"]]
        rounds_total = int(restored.state["minpart_rounds_total"])
    else:
        active = np.ones(instance.k, dtype=bool)
        canceled = []
        rounds_total = 0
    stage_resume = restored
    clock_rng_seed = seed
    with rec.span(
        "solve", solver="RMGP_minpart", n=instance.n, k=instance.k
    ):
        while True:
            effective = caps.copy()
            effective[~active] = 0
            if int(effective.sum()) < instance.n:
                raise ConfigurationError(
                    "cancellations left too few seats for the players; "
                    "lower min_participants or raise capacities"
                )
            result = _solve_capacitated(
                instance, effective, init=init, order=order,
                seed=clock_rng_seed, recorder=rec,
                budget=budget,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=stage_resume,
                _checkpoint_solver="RMGP_minpart",
                _extra_state={
                    "minpart_active": active.copy(),
                    "minpart_canceled": list(canceled),
                    "minpart_rounds_total": rounds_total,
                },
            )
            stage_resume = None
            rounds_total += result.num_rounds
            if result.stop_reason in ("deadline", "cancelled"):
                # Budget tripped mid-stage: degrade gracefully with the
                # stage's current (valid, capacity-feasible) assignment.
                result.extra["canceled"] = canceled
                result.extra["rounds_total"] = rounds_total
                result.solver = "RMGP_minpart"
                result.wall_seconds = loop_clock.total()
                return result
            loads = np.bincount(result.assignment, minlength=instance.k)
            under = [
                klass
                for klass in range(instance.k)
                if active[klass] and 0 < loads[klass] < min_participants
            ]
            if not under:
                result.extra["canceled"] = canceled
                result.extra["rounds_total"] = rounds_total
                result.solver = "RMGP_minpart"
                # The per-solve timer only saw the final re-solve; the
                # contract says wall_seconds covers the whole call.
                result.wall_seconds = loop_clock.total()
                return result
            # Cancel the weakest event first, as organizers would.
            weakest = min(under, key=lambda klass: loads[klass])
            active[weakest] = False
            canceled.append(weakest)
            rec.event(
                "class_canceled", klass=weakest, load=int(loads[weakest])
            )
            rec.count("class.cancellations", 1, solver="RMGP_minpart")


def capacity_violations(
    assignment: np.ndarray, capacities: Sequence[int]
) -> Dict[int, int]:
    """Overloaded classes: class index -> players above capacity."""
    caps = np.asarray(list(capacities), dtype=np.int64)
    load = np.bincount(np.asarray(assignment), minlength=len(caps))
    return {
        int(klass): int(load[klass] - caps[klass])
        for klass in range(len(caps))
        if load[klass] > caps[klass]
    }


def is_capacitated_equilibrium(
    instance: RMGPInstance,
    assignment: np.ndarray,
    capacities: Sequence[int],
    tolerance: float = 1e-9,
) -> bool:
    """No player can improve by moving to a class with a free seat."""
    caps = validate_capacities(instance, capacities)
    assignment = np.asarray(assignment)
    load = np.bincount(assignment, minlength=instance.k)
    if capacity_violations(assignment, caps):
        return False
    for player in range(instance.n):
        costs = player_strategy_costs(instance, assignment, player)
        current = int(assignment[player])
        open_classes = (load < caps) | (np.arange(instance.k) == current)
        costs[~open_classes] = np.inf
        if costs.min() < costs[current] - tolerance:
            return False
    return True


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_capacitated, solve_with_minimums  # noqa: E402
