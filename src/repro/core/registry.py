"""Registry of algorithm-variant implementations.

One place maps every public solver name (short and long) to its
implementation function; :func:`repro.api.partition` and
:meth:`repro.core.game.RMGPGame.solve` both dispatch through it.  The
values are the *implementation* functions (``_solve_*``), not the
deprecated ``solve_*`` shims, so routing through the registry never
triggers a :class:`DeprecationWarning`.

Kept separate from :mod:`repro.core.game` so solver modules and the API
facade can import it without pulling in the whole facade.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.parallel.backend import KNOWN_BACKENDS, numba_available

from repro.core.baseline import _solve_baseline
from repro.core.capacitated import _solve_capacitated, _solve_with_minimums
from repro.core.combined import _solve_all
from repro.core.global_table import _solve_global_table
from repro.core.incremental import _solve_incremental
from repro.core.independent_sets import _solve_independent_sets
from repro.core.priority import _solve_max_gain
from repro.core.result import PartitionResult
from repro.core.simultaneous import _solve_simultaneous
from repro.core.strategy_elimination import _solve_strategy_elimination
from repro.core.vectorized import _solve_vectorized

#: Algorithm variants by public name.  Short names follow the paper
#: (RMGP_b, RMGP_se, RMGP_is, RMGP_gt, ...); long names are explicit.
SOLVERS: Dict[str, Callable[..., PartitionResult]] = {
    "baseline": _solve_baseline,
    "b": _solve_baseline,
    "se": _solve_strategy_elimination,
    "strategy_elimination": _solve_strategy_elimination,
    "is": _solve_independent_sets,
    "independent_sets": _solve_independent_sets,
    "gt": _solve_global_table,
    "global_table": _solve_global_table,
    "all": _solve_all,
    "vec": _solve_vectorized,
    "vectorized": _solve_vectorized,
    "mg": _solve_max_gain,
    "max_gain": _solve_max_gain,
    "sync": _solve_simultaneous,
    "simultaneous": _solve_simultaneous,
    "cap": _solve_capacitated,
    "capacitated": _solve_capacitated,
    "minpart": _solve_with_minimums,
    "with_minimums": _solve_with_minimums,
    "inc": _solve_incremental,
    "incremental": _solve_incremental,
}

_CANONICAL: Dict[str, str] = {
    "b": "baseline",
    "se": "strategy_elimination",
    "is": "independent_sets",
    "gt": "global_table",
    "vec": "vectorized",
    "mg": "max_gain",
    "sync": "simultaneous",
    "cap": "capacitated",
    "minpart": "with_minimums",
    "inc": "incremental",
}


def canonical_solver_name(name: str) -> str:
    """The long form of a registry name (``"gt"`` -> ``"global_table"``)."""
    return _CANONICAL.get(name, name)


_ACCEPTED: Dict[Callable[..., PartitionResult], frozenset] = {}


def accepted_parameters(impl: Callable[..., PartitionResult]) -> frozenset:
    """Keyword parameters an implementation accepts (cached signature).

    The schema source for dispatch: :func:`repro.api.partition` rejects
    options a variant lacks against this set, and the serving layer
    validates wire ``solver_kwargs`` with it before a job is queued.
    """
    accepted = _ACCEPTED.get(impl)
    if accepted is None:
        import inspect

        accepted = frozenset(inspect.signature(impl).parameters)
        _ACCEPTED[impl] = accepted
    return accepted


def solver_catalog() -> Dict[str, Dict[str, object]]:
    """Machine-readable registry description (``GET /v1/solvers``).

    One entry per canonical solver name: its aliases and the keyword
    parameters the implementation accepts (minus the instance itself).
    """
    catalog: Dict[str, Dict[str, object]] = {}
    for name, impl in SOLVERS.items():
        canonical = canonical_solver_name(name)
        entry = catalog.setdefault(
            canonical,
            {
                "aliases": [],
                "accepts": sorted(accepted_parameters(impl) - {"instance"}),
            },
        )
        if name != canonical:
            entry["aliases"].append(name)
    for entry in catalog.values():
        entry["aliases"] = sorted(entry["aliases"])
    return catalog


#: Execution backends for the hot kernels (``backend=`` on the parallel
#: solvers: ``is``/``vec``/``gt``/``sync``).  Every backend produces
#: assignments byte-identical to ``pure``; see ``docs/DESIGN.md`` §4.5.
BACKENDS: Dict[str, str] = {
    "pure": "numpy kernels in-process (the default; always available)",
    "shm": "persistent worker-process pool over shared-memory CSR arrays",
    "numba": "jitted loop kernels in-process (falls back to pure when "
             "numba is not importable)",
}

assert tuple(BACKENDS) == KNOWN_BACKENDS


def backend_available(name: str) -> bool:
    """Whether ``backend=name`` runs natively (vs. a documented fallback).

    ``numba`` reports availability of the import; requesting it anyway is
    never an error — the solve falls back to ``pure`` and records the
    reason in ``PartitionResult.extra["backend_fallback_reason"]``.
    """
    if name not in BACKENDS:
        return False
    if name == "numba":
        return numba_available()
    return True
