"""RMGP_se — pruning by strategy elimination (Section 4.1).

For each player ``v`` the *valid region* bounds the assignment cost of
any strategy he could ever follow:

    VR_v = c(v, s_min) + ((1 − α)/α) · W_v

where ``s_min`` is his cheapest class and ``W_v = Σ_f ½·w(v, f)``.  Any


class whose assignment cost exceeds ``VR_v`` can never beat ``s_min``
even if *all* friends joined it, so it is pruned from ``S_v``.  A player
left with a single valid strategy is assigned directly and removed from
the game.  Best responses are never pruned, so convergence and quality
guarantees carry over unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


@dataclass


class EliminationPlan:
    """Pre-computed reduced strategy spaces for one instance.

    Attributes
    ----------
    valid_classes:
        Per player, a sorted int array of the classes in ``S'_v``.
    fixed_class:
        Per player, the forced class when ``|S'_v| == 1``, else ``-1``.
    valid_regions:
        The ``VR_v`` bound per player.
    """

    valid_classes: List[np.ndarray]
    fixed_class: np.ndarray
    valid_regions: np.ndarray

    @property
    def num_fixed(self) -> int:
        """Players removed from the game entirely."""
        return int((self.fixed_class >= 0).sum())

    def strategies_remaining(self) -> int:
        """Total size of all reduced strategy spaces."""
        return int(sum(len(v) for v in self.valid_classes))


def build_elimination_plan(instance: RMGPInstance) -> EliminationPlan:
    """Compute ``VR_v`` and ``S'_v`` for every player (initialization step)."""
    alpha = instance.alpha
    ratio = (1.0 - alpha) / alpha
    valid_classes: List[np.ndarray] = []
    fixed = np.full(instance.n, -1, dtype=np.int64)
    regions = np.empty(instance.n, dtype=np.float64)
    for player in range(instance.n):
        row = instance.cost.row(player)
        bound = row.min() + ratio * instance.half_strength[player]
        regions[player] = bound
        # Keep classes whose best case (all friends co-located) can still
        # match the worst case of the cheapest class.
        valid = np.flatnonzero(row <= bound + dynamics.DEVIATION_TOLERANCE)
        valid_classes.append(valid)
        if len(valid) == 1:
            fixed[player] = int(valid[0])
    return EliminationPlan(valid_classes, fixed, regions)


def _solve_strategy_elimination(
    instance: RMGPInstance,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    plan: Optional[EliminationPlan] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run RMGP_se: Figure 3 dynamics over reduced strategy spaces.

    ``plan`` may be supplied to reuse a pre-computed
    :class:`EliminationPlan` across repeated queries on the same
    instance; by default it is built during round 0 (and its time is
    charged there, as in Figure 12(c)).  Checkpoints do not serialize
    the plan — it is a pure, deterministic function of the instance and
    is rebuilt on resume.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_se", rec)
    with rec.span("solve", solver="RMGP_se", n=instance.n, k=instance.k):
        if restored is not None:
            if plan is None:
                plan = build_elimination_plan(instance)
            fixed_mask = plan.fixed_class >= 0
            assignment = restored.assignment
            sweep = [int(p) for p in restored.state["sweep"]]
            active = dynamics.ActiveSet(instance.n, dirty=restored.frontier)
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init") as init_span:
                if plan is None:
                    with rec.span("build_plan"):
                        plan = build_elimination_plan(instance)
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                # Fixed players are assigned immediately and leave the game.
                fixed_mask = plan.fixed_class >= 0
                assignment[fixed_mask] = plan.fixed_class[fixed_mask]
                sweep = [
                    p
                    for p in dynamics.player_order(instance, order, rng)
                    if not fixed_mask[p]
                ]
                # Frontier scheduling over the free players only: fixed
                # players never move, so they never need re-examination, and
                # a mover's clean neighbors are re-marked exactly as in
                # RMGP_b — the move sequence is identical to the full sweep.
                active = dynamics.ActiveSet(instance.n)
                active.flags[fixed_mask] = False
                if init_span is not None:
                    init_span.attrs["num_fixed"] = plan.num_fixed
            rounds = [
                RoundStats(round_index=0, deviations=0, seconds=clock.lap())
            ]
            round_index = 0

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_se",
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=active.flags.copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={"sweep": [int(p) for p in sweep]},
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, "RMGP_se")
            with rec.span("round", round=round_index) as round_span:
                deviations, examined = _reduced_round(
                    instance, assignment, sweep, plan, active, fixed_mask
                )
            rec.round_end(
                round_span, "RMGP_se", round_index,
                deviations=deviations,
                examined=examined,
                # Only the reduced strategy spaces are scanned (Eq. 3 on
                # |S'_v| classes, amortized as the mean reduced size).
                cost_evaluations=(
                    examined * plan.strategies_remaining() // max(instance.n, 1)
                ),
                frontier_fn=active.count,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    players_examined=examined,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {
        "num_fixed": plan.num_fixed,
        "strategies_remaining": plan.strategies_remaining(),
        "strategies_total": instance.n * instance.k,
    }
    if not converged:
        extra["remaining_frontier"] = active.count()
    return make_result(
        solver="RMGP_se",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


def _reduced_round(
    instance: RMGPInstance,
    assignment: np.ndarray,
    sweep: List[int],
    plan: EliminationPlan,
    active: dynamics.ActiveSet,
    fixed_mask: np.ndarray,
) -> Tuple[int, int]:
    """One frontier round restricted to each player's ``S'_v``.

    Only dirty free players are examined; a mover marks his (free) CSR
    neighbors dirty, so ``players_examined`` reports the true work done
    rather than assuming a full sweep.  Returns ``(deviations, examined)``.
    """
    deviations = 0
    examined = 0
    alpha = instance.alpha
    tol = dynamics.DEVIATION_TOLERANCE
    flags = active.flags
    scratch = np.empty(instance.k, dtype=np.float64)
    for player in sweep:
        if not flags[player]:
            continue
        flags[player] = False
        examined += 1
        valid = plan.valid_classes[player]
        scratch.fill(np.inf)
        scratch[valid] = (
            alpha * instance.cost.row(player)[valid]
            + instance.max_social_cost[player]
        )
        idx = instance.neighbor_indices[player]
        if idx.size:
            refund = (1.0 - alpha) * 0.5 * instance.neighbor_weights[player]
            # Refunds on pruned classes land on +inf and stay invalid.
            np.subtract.at(scratch, assignment[idx], refund)
        current = int(assignment[player])
        best = int(scratch.argmin())
        if best != current and scratch[best] < scratch[current] - tol:
            assignment[player] = best
            deviations += 1
            if idx.size:
                # Mark free neighbors dirty; fixed ones stay clean.
                flags[idx] = ~fixed_mask[idx]
    return deviations, examined


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_strategy_elimination  # noqa: E402
