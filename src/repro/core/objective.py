"""Objective, potential and per-player cost evaluators (Equations 1, 3, 4).

These are the ground-truth formulas every solver and every test checks
against; solvers maintain *incremental* versions of the same quantities,
and the property-based tests assert the two always agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import RMGPInstance


@dataclass(frozen=True)
class ObjectiveValue:
    """Breakdown of the RMGP objective for one assignment.

    ``assignment_cost`` is ``Σ_v c(v, s_v)`` and ``social_cost`` is the
    cut weight ``Σ_{(i,j)∈E, s_i≠s_j} w_ij`` — both *unweighted* by α so
    that the components can be compared directly (as in Figures 9-11).
    ``total`` applies the α-weighting of Equation 1.
    """

    assignment_cost: float
    social_cost: float
    alpha: float

    @property
    def total(self) -> float:
        """``α · assignment_cost + (1 − α) · social_cost`` (Equation 1)."""
        return (
            self.alpha * self.assignment_cost
            + (1.0 - self.alpha) * self.social_cost
        )

    def __str__(self) -> str:
        return (
            f"total={self.total:.6g} (assignment={self.assignment_cost:.6g}, "
            f"social={self.social_cost:.6g}, alpha={self.alpha})"
        )


def assignment_cost_sum(instance: RMGPInstance, assignment: np.ndarray) -> float:
    """``Σ_v c(v, s_v)`` for the given strategy vector."""
    instance.validate_assignment(assignment)
    if instance.n == 0:
        return 0.0
    assignment = np.asarray(assignment, dtype=np.int64)
    dense = instance.cost.dense()
    return float(dense[np.arange(instance.n), assignment].sum())


def social_cost_sum(instance: RMGPInstance, assignment: np.ndarray) -> float:
    """Cut weight ``Σ_{(i,j)∈E, s_i≠s_j} w_ij`` (each edge counted once)."""
    instance.validate_assignment(assignment)
    if instance.indices.size == 0:
        return 0.0
    assignment = np.asarray(assignment, dtype=np.int64)
    crossing = assignment[instance.indices] != assignment[instance.edge_owner]
    # Each crossing edge is seen from both endpoints; half_weights are
    # already ½·w, so the plain sum counts every edge exactly once.
    return float(instance.half_weights[crossing].sum())


def objective(instance: RMGPInstance, assignment: np.ndarray) -> ObjectiveValue:
    """Full Equation 1 breakdown for ``assignment``."""
    return ObjectiveValue(
        assignment_cost=assignment_cost_sum(instance, assignment),
        social_cost=social_cost_sum(instance, assignment),
        alpha=instance.alpha,
    )


def potential(instance: RMGPInstance, assignment: np.ndarray) -> float:
    """Exact potential ``Φ(S)`` of Equation 4.

    Identical to the objective except the social term is halved — the
    factor that makes best responses change ``Φ`` by exactly the change
    in the deviating player's own cost (Theorem 1).
    """
    return (
        instance.alpha * assignment_cost_sum(instance, assignment)
        + (1.0 - instance.alpha) * 0.5 * social_cost_sum(instance, assignment)
    )


def player_cost(
    instance: RMGPInstance, assignment: np.ndarray, player: int
) -> float:
    """Per-player cost ``C_v(s_v, π_v)`` of Equation 3."""
    klass = int(assignment[player])
    idx = instance.neighbor_indices[player]
    if idx.size:
        crossing = assignment[idx] != klass
        social = 0.5 * float(instance.neighbor_weights[player][crossing].sum())
    else:
        social = 0.0
    return (
        instance.alpha * instance.cost.cost(player, klass)
        + (1.0 - instance.alpha) * social
    )


def total_player_cost(instance: RMGPInstance, assignment: np.ndarray) -> float:
    """``Σ_v C_v`` — equal to the Equation 1 objective (Section 3.1).

    Each crossing edge contributes ``½·w`` to both endpoints, so the sum
    of per-player costs reconstitutes the full social cost.
    """
    return sum(player_cost(instance, assignment, v) for v in range(instance.n))


def player_strategy_costs(
    instance: RMGPInstance, assignment: np.ndarray, player: int
) -> np.ndarray:
    """Cost of every strategy for ``player`` given the others' strategies.

    Implements lines 7-10 of Figure 3: start every class at
    ``α·c(v, p) + maxSC_v`` and refund ``(1 − α)·½·w(v, f)`` for each
    friend ``f`` already in class ``p``.
    """
    costs = instance.alpha * instance.cost.row(player)
    costs += instance.max_social_cost[player]
    idx = instance.neighbor_indices[player]
    if idx.size:
        refund = (1.0 - instance.alpha) * 0.5 * instance.neighbor_weights[player]
        np.subtract.at(costs, assignment[idx], refund)
    return costs


def best_response(
    instance: RMGPInstance,
    assignment: np.ndarray,
    player: int,
    tolerance: float = 1e-12,
) -> int:
    """Best-response class for ``player``; keeps the current class on ties.

    A player "deviates only if his cost decreases" (Lemma 2 proof), so the
    current strategy wins unless some class is better by more than
    ``tolerance`` (which guards against floating-point jitter).
    """
    costs = player_strategy_costs(instance, assignment, player)
    current = int(assignment[player])
    best = int(costs.argmin())
    if costs[best] < costs[current] - tolerance:
        return best
    return current
