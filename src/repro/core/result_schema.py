"""Validation for the frozen ``repro-result/v1`` payload schema.

:meth:`repro.core.result.PartitionResult.to_dict` is the one result
contract shared by library callers, ``repro solve --json``, checkpoint
metadata and the HTTP serving wire (``POST /v1/solve``).  This module
pins that shape: required keys with exact types, cross-field invariants
(``rounds`` matches the trace, ``total_deviations`` sums the trace, an
inlined ``assignment`` must hash to ``assignment_sha256``), and a
closed key set for the nested objects.  *Top-level* extension keys are
allowed — consumers annotate results (the CLI adds ``dataset``, the
server adds ``job``) without breaking the schema.

Usable as a library (:func:`validate_result`,
:func:`validate_result_file`) and as a command — the CI serve-smoke
gate::

    python -m repro.core.result_schema result.json

Exit status 0 means the payload conforms; 1 lists the violations; 2 is
a usage error.  Files may hold a single JSON object or JSONL with one
payload per line.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Any, Dict, List, Optional

#: The version tag to_dict() stamps into every payload.
RESULT_SCHEMA_VERSION = "repro-result/v1"

#: Terminal states of a solve; PartitionResult.stop_reason is closed.
STOP_REASONS = ("converged", "max_rounds", "deadline", "cancelled")

_NUMBER = (int, float)

#: Required top-level keys -> allowed types (bool checked separately:
#: it subclasses int, so numeric fields must reject it explicitly).
_REQUIRED: Dict[str, tuple] = {
    "schema": (str,),
    "solver": (str,),
    "n": (int,),
    "converged": (bool,),
    "stop_reason": (str,),
    "rounds": (int,),
    "total_deviations": (int,),
    "wall_seconds": _NUMBER,
    "objective": (dict,),
    "assignment_sha256": (str,),
    "round_trace": (list,),
}

_OBJECTIVE_KEYS = ("total", "assignment_cost", "social_cost", "alpha")

_TRACE_REQUIRED: Dict[str, tuple] = {
    "round": (int,),
    "deviations": (int,),
    "seconds": _NUMBER,
    "players_examined": (int,),
}

_TRACE_OPTIONAL: Dict[str, tuple] = {"potential": _NUMBER}


def _type_error(path: str, value: Any, expected: tuple) -> str:
    names = "/".join(t.__name__ for t in expected)
    return f"{path}: expected {names}, got {type(value).__name__}"


def _check_number(
    errors: List[str], path: str, value: Any, expected: tuple
) -> bool:
    """Type check that treats bool as *not* a number."""
    if isinstance(value, bool) and bool not in expected:
        errors.append(_type_error(path, value, expected))
        return False
    if not isinstance(value, expected):
        errors.append(_type_error(path, value, expected))
        return False
    return True


def validate_result(payload: Any) -> List[str]:
    """All schema violations of one result payload (empty = conforms)."""
    if not isinstance(payload, dict):
        return [f"payload: expected an object, got {type(payload).__name__}"]
    errors: List[str] = []
    for key, expected in _REQUIRED.items():
        if key not in payload:
            errors.append(f"{key}: required key missing")
            continue
        _check_number(errors, key, payload[key], expected)
    if errors:
        return errors

    if payload["schema"] != RESULT_SCHEMA_VERSION:
        errors.append(
            f"schema: expected {RESULT_SCHEMA_VERSION!r}, "
            f"got {payload['schema']!r}"
        )
    if payload["stop_reason"] not in STOP_REASONS:
        errors.append(
            f"stop_reason: {payload['stop_reason']!r} not in {STOP_REASONS}"
        )
    if payload["converged"] != (payload["stop_reason"] == "converged"):
        errors.append(
            "converged: inconsistent with stop_reason "
            f"{payload['stop_reason']!r}"
        )
    for key in ("n", "rounds", "total_deviations"):
        if isinstance(payload[key], int) and payload[key] < 0:
            errors.append(f"{key}: must be >= 0, got {payload[key]}")
    if payload["wall_seconds"] < 0:
        errors.append(f"wall_seconds: must be >= 0, got {payload['wall_seconds']}")

    objective = payload["objective"]
    for key in _OBJECTIVE_KEYS:
        if key not in objective:
            errors.append(f"objective.{key}: required key missing")
        else:
            _check_number(errors, f"objective.{key}", objective[key], _NUMBER)
    for key in objective:
        if key not in _OBJECTIVE_KEYS:
            errors.append(f"objective.{key}: unknown key")

    sha = payload["assignment_sha256"]
    if len(sha) != 64 or any(c not in "0123456789abcdef" for c in sha):
        errors.append("assignment_sha256: not a lowercase sha256 hex digest")

    previous_round: Optional[int] = None
    deviation_sum = 0
    best_response_rounds = 0
    for i, entry in enumerate(payload["round_trace"]):
        path = f"round_trace[{i}]"
        if not isinstance(entry, dict):
            errors.append(_type_error(path, entry, (dict,)))
            continue
        entry_ok = True
        for key, expected in _TRACE_REQUIRED.items():
            if key not in entry:
                errors.append(f"{path}.{key}: required key missing")
                entry_ok = False
            elif not _check_number(errors, f"{path}.{key}", entry[key], expected):
                entry_ok = False
        for key in entry:
            if key not in _TRACE_REQUIRED and key not in _TRACE_OPTIONAL:
                errors.append(f"{path}.{key}: unknown key")
        if "potential" in entry:
            _check_number(
                errors, f"{path}.potential", entry["potential"], _NUMBER
            )
        if not entry_ok:
            continue
        if previous_round is not None and entry["round"] <= previous_round:
            errors.append(
                f"{path}.round: not strictly increasing "
                f"({previous_round} -> {entry['round']})"
            )
        previous_round = entry["round"]
        deviation_sum += entry["deviations"]
        if entry["round"] > 0:
            best_response_rounds += 1

    if not errors:
        if payload["rounds"] != best_response_rounds:
            errors.append(
                f"rounds: {payload['rounds']} does not match the trace "
                f"({best_response_rounds} best-response rounds)"
            )
        if payload["total_deviations"] != deviation_sum:
            errors.append(
                f"total_deviations: {payload['total_deviations']} does not "
                f"match the trace sum ({deviation_sum})"
            )

    if "extra" in payload and not isinstance(payload["extra"], dict):
        errors.append(_type_error("extra", payload["extra"], (dict,)))

    assignment = payload.get("assignment")
    if assignment is not None:
        if not isinstance(assignment, list) or any(
            isinstance(x, bool) or not isinstance(x, int) for x in assignment
        ):
            errors.append("assignment: expected a list of integers")
        else:
            if len(assignment) != payload["n"]:
                errors.append(
                    f"assignment: length {len(assignment)} != n={payload['n']}"
                )
            digest = hashlib.sha256(
                b"".join(
                    int(x).to_bytes(8, sys.byteorder, signed=True)
                    for x in assignment
                )
            ).hexdigest()
            if digest != sha:
                errors.append(
                    "assignment: sha256 of the inlined vector does not "
                    "match assignment_sha256"
                )
    return errors


def validate_result_file(path: str) -> List[str]:
    """Validate a JSON (or JSONL) file of result payloads."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"{path}: {exc}"]
    try:
        payloads = [json.loads(text)]
    except json.JSONDecodeError:
        payloads = []
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                payloads.append(json.loads(line))
            except json.JSONDecodeError as exc:
                return [f"{path}:{lineno}: not valid JSON ({exc})"]
        if not payloads:
            return [f"{path}: empty file"]
    errors: List[str] = []
    for index, payload in enumerate(payloads):
        prefix = f"payload {index}: " if len(payloads) > 1 else ""
        errors.extend(prefix + message for message in validate_result(payload))
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(
            "usage: python -m repro.core.result_schema <result.json>",
            file=sys.stderr,
        )
        return 2
    errors = validate_result_file(argv[0])
    if errors:
        for message in errors:
            print(message, file=sys.stderr)
        return 1
    print(f"{argv[0]}: conforms to {RESULT_SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
