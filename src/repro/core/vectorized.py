"""RMGP_vec — numpy-vectorized best responses over color groups.

Semantically this is RMGP_is (Section 4.2): players of one color group
are pairwise non-adjacent, so their best responses against the current
profile are independent and may be computed *simultaneously*.  Instead of
threads (which CPython's GIL starves), the whole group is evaluated as
one batched numpy computation:

* ``costs = α · C[group] + maxSC[group, None]`` — a dense slice,
* one ``np.add.at`` scatter accumulates every member's friend refunds
  into a ``|group| x k`` matrix using pre-flattened edge arrays,
* a row-wise argmin with the keep-current-on-ties rule commits the whole
  group at once.

Convergence and quality guarantees are exactly RMGP_is's (same game,
same schedule); only the constant factor changes — this is the fastest
pure-Python variant for large ``n``, and the benchmark suite compares it
against the scalar solvers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.independent_sets import groups_from_coloring
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result


@dataclass
class _GroupBatch:
    """Pre-flattened per-group arrays for the scatter step.

    ``row_positions[i]``/``neighbor_ids[i]``/``refunds[i]`` describe one
    (member, friend) incidence: the member's row inside the group batch,
    the friend's global player index, and the refund
    ``(1 − α) · ½ · w`` his strategy subtracts from that row.
    """

    members: np.ndarray
    row_positions: np.ndarray
    neighbor_ids: np.ndarray
    refunds: np.ndarray
    base_costs: np.ndarray  # alpha * C[group] + maxSC[group, None]


def _build_batches(
    instance: RMGPInstance, groups: List[List[int]]
) -> List[_GroupBatch]:
    alpha = instance.alpha
    half = (1.0 - alpha) * 0.5
    batches = []
    for group in groups:
        members = np.asarray(group, dtype=np.int64)
        rows: List[int] = []
        neighbors: List[int] = []
        refunds: List[float] = []
        for position, player in enumerate(group):
            idx = instance.neighbor_indices[player]
            wts = instance.neighbor_weights[player]
            rows.extend([position] * len(idx))
            neighbors.extend(idx.tolist())
            refunds.extend((half * wts).tolist())
        base = np.vstack([
            alpha * instance.cost.row(p) for p in group
        ])
        base += instance.max_social_cost[members][:, None]
        batches.append(
            _GroupBatch(
                members=members,
                row_positions=np.asarray(rows, dtype=np.int64),
                neighbor_ids=np.asarray(neighbors, dtype=np.int64),
                refunds=np.asarray(refunds, dtype=np.float64),
                base_costs=base,
            )
        )
    return batches


def solve_vectorized(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    coloring: Optional[Dict] = None,
) -> PartitionResult:
    """Run the vectorized group-batched dynamics.

    Parameters mirror :func:`repro.core.independent_sets.solve_independent_sets`;
    player ordering inside a group is irrelevant (the batch is committed
    atomically), so there is no ``order`` knob.
    """
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    groups = groups_from_coloring(instance, coloring)
    assignment = dynamics.initial_assignment(instance, init, rng, warm_start)
    batches = _build_batches(instance, groups)
    rounds: List[RoundStats] = [RoundStats(0, 0, clock.lap())]

    tol = dynamics.DEVIATION_TOLERANCE
    converged = False
    round_index = 0
    while not converged:
        round_index += 1
        dynamics.check_round_budget(round_index, max_rounds, "RMGP_vec")
        deviations = 0
        for batch in batches:
            if batch.members.size == 0:
                continue
            costs = batch.base_costs.copy()
            if batch.neighbor_ids.size:
                np.subtract.at(
                    costs,
                    (batch.row_positions, assignment[batch.neighbor_ids]),
                    batch.refunds,
                )
            current = assignment[batch.members]
            best = costs.argmin(axis=1)
            rows = np.arange(len(batch.members))
            improves = (
                costs[rows, best] < costs[rows, current] - tol
            ) & (best != current)
            moved = int(improves.sum())
            if moved:
                assignment[batch.members[improves]] = best[improves]
                deviations += moved
        rounds.append(
            RoundStats(
                round_index=round_index,
                deviations=deviations,
                seconds=clock.lap(),
                players_examined=instance.n,
            )
        )
        converged = deviations == 0

    return make_result(
        solver="RMGP_vec",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=True,
        wall_seconds=clock.total(),
        extra={"num_groups": len(groups)},
    )
