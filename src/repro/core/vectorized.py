"""RMGP_vec — numpy-vectorized best responses over color groups.

Semantically this is RMGP_is (Section 4.2): players of one color group
are pairwise non-adjacent, so their best responses against the current
profile are independent and may be computed *simultaneously*.  Instead of
threads (which CPython's GIL starves), the whole group is evaluated as
one batched numpy computation:

* batch arrays come straight from the instance's CSR adjacency — one
  slice + ``np.concatenate`` per group instead of per-edge Python loops,
* ``costs = α · C[group] + maxSC[group, None]`` — a dense slice,
* one ``np.bincount`` on linearized ``(row, class)`` keys accumulates
  every member's friend refunds into a ``|group| x k`` matrix,
* a row-wise argmin with the keep-current-on-ties rule commits the whole
  group at once.

Rounds run on the shared dirty-frontier scheduler
(:class:`repro.core.dynamics.ActiveSet`): only the dirty members of each
group are evaluated, and a committed move marks exactly the mover's CSR
neighbor slice dirty.  Convergence and quality guarantees are exactly
RMGP_is's (same game, same schedule); only the constant factor changes —
this is the fastest pure-Python variant for large ``n``, and the
benchmark suite compares it against the scalar solvers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.independent_sets import groups_from_coloring
from repro.core.instance import RMGPInstance, concat_ranges
from repro.core.objective import potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder
from repro.parallel.engine import make_engine
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


@dataclass


class _GroupBatch:
    """Pre-flattened per-group arrays for the scatter step.

    ``row_positions[i]``/``neighbor_ids[i]``/``refunds[i]`` describe one
    (member, friend) incidence: the member's row inside the group batch,
    the friend's global player index, and the refund
    ``(1 − α) · ½ · w`` his strategy subtracts from that row.
    ``edge_ptr`` is the intra-batch CSR: member ``m``'s incidences occupy
    ``[edge_ptr[m], edge_ptr[m+1])``, which lets a round gather the
    frontier's incidences with one vectorized range concatenation.
    ``rows`` is the precomputed ``arange(len(members))``.
    """

    members: np.ndarray
    edge_ptr: np.ndarray
    row_positions: np.ndarray
    neighbor_ids: np.ndarray
    refunds: np.ndarray
    base_costs: np.ndarray  # alpha * C[group] + maxSC[group, None]
    rows: np.ndarray


def _build_batches(
    instance: RMGPInstance, groups: List[List[int]]
) -> List[_GroupBatch]:
    alpha = instance.alpha
    refund_scale = 1.0 - alpha  # applied to half_weights (already ½·w)
    dense = alpha * instance.cost.dense()
    degrees = instance.degrees()
    batches = []
    for group in groups:
        members = np.asarray(group, dtype=np.int64)
        counts = degrees[members]
        edge_ptr = np.zeros(len(group) + 1, dtype=np.int64)
        np.cumsum(counts, out=edge_ptr[1:])
        csr_slots = concat_ranges(instance.indptr[members], counts)
        rows = np.arange(len(group), dtype=np.int64)
        base = dense[members] + instance.max_social_cost[members][:, None]
        batches.append(
            _GroupBatch(
                members=members,
                edge_ptr=edge_ptr,
                row_positions=np.repeat(rows, counts),
                neighbor_ids=instance.indices[csr_slots],
                refunds=refund_scale * instance.half_weights[csr_slots],
                base_costs=base,
                rows=rows,
            )
        )
    return batches


def _make_batches(
    instance: RMGPInstance, groups: List[List[int]], engine
) -> List:
    """Batches for the round loop: prebuilt incidence arrays on the pure
    path, bare member arrays when an engine runs the scatter (workers
    read the CSR arrays from shared memory, so prebuilding per-group
    incidence copies would be pure overhead)."""
    if engine is not None:
        return [np.asarray(group, dtype=np.int64) for group in groups]
    return _build_batches(instance, groups)


def _batch_frontier_round(
    instance: RMGPInstance,
    batch: _GroupBatch,
    assignment: np.ndarray,
    active: dynamics.ActiveSet,
    tol: float,
) -> tuple:
    """Evaluate one group's dirty members; returns (deviations, examined)."""
    k = instance.k
    members = batch.members
    sel = np.flatnonzero(active.flags[members])
    if sel.size == 0:
        return 0, 0
    if sel.size == len(members):
        # Fast path: the whole group is dirty (always true in round 1).
        rows = batch.rows
        row_positions = batch.row_positions
        neighbor_ids = batch.neighbor_ids
        refunds = batch.refunds
        base = batch.base_costs
        chosen = members
    else:
        counts = batch.edge_ptr[sel + 1] - batch.edge_ptr[sel]
        incidences = concat_ranges(batch.edge_ptr[sel], counts)
        rows = batch.rows[: sel.size]
        row_positions = np.repeat(rows, counts)
        neighbor_ids = batch.neighbor_ids[incidences]
        refunds = batch.refunds[incidences]
        base = batch.base_costs[sel]
        chosen = members[sel]
    costs = base.copy()
    if neighbor_ids.size:
        keys = row_positions * k + assignment[neighbor_ids]
        costs -= np.bincount(
            keys, weights=refunds, minlength=len(chosen) * k
        ).reshape(len(chosen), k)
    current = assignment[chosen]
    best = costs.argmin(axis=1)
    improves = (costs[rows, best] < costs[rows, current] - tol) & (
        best != current
    )
    active.clear(chosen)
    moved = int(improves.sum())
    if moved:
        movers = chosen[improves]
        assignment[movers] = best[improves]
        active.mark(instance.neighbors_of(movers))
    return moved, int(sel.size)


def _engine_frontier_round(
    instance: RMGPInstance,
    members: np.ndarray,
    assignment: np.ndarray,
    active: dynamics.ActiveSet,
    engine,
) -> tuple:
    """One group's dirty members evaluated on a parallel backend.

    Same frontier selection and commit protocol as
    :func:`_batch_frontier_round`; only the batch evaluation moves to the
    engine, whose chunked scatter is byte-identical to the bincount path
    (chunk keys never mix rows).  No prebuilt ``_GroupBatch`` is needed —
    the workers read the CSR arrays from shared memory.
    """
    sel = np.flatnonzero(active.flags[members])
    if sel.size == 0:
        return 0, 0
    chosen = members if sel.size == len(members) else members[sel]
    movers, best = engine.batched_moves(assignment, chosen)
    active.clear(chosen)
    if movers.size:
        assignment[movers] = best
        active.mark(instance.neighbors_of(movers))
    return int(movers.size), int(sel.size)


def _solve_vectorized(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    coloring: Optional[Dict] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    exact_scale: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run the vectorized group-batched dynamics.

    Parameters mirror :func:`repro.core.independent_sets.solve_independent_sets`;
    player ordering inside a group is irrelevant (the batch is committed
    atomically), so there is no ``order`` knob.  Checkpoints store only
    the groups: batch arrays and per-round costs are pure functions of
    (instance, groups), so a resume rebuilds them bit-identically.

    ``backend``/``workers`` select a parallel execution backend
    (byte-identical assignments; see :mod:`repro.parallel`) and
    ``exact_scale`` switches the scatter to Lemma 2 integer fixed point.
    """
    rec = active_recorder(recorder)
    wants_engine = (
        backend is not None or workers is not None or exact_scale is not None
    )
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    restored = load_resume(resume_from, instance, "RMGP_vec", rec)
    engine = None
    backend_info: Dict = {}
    if wants_engine:
        engine, backend_info = make_engine(
            instance,
            backend=backend,
            workers=workers,
            recorder=rec,
            exact_scale=exact_scale,
            tol=dynamics.DEVIATION_TOLERANCE,
        )
    try:
        return _run_vectorized(
            instance, init, rng, warm_start, max_rounds, coloring, rec,
            restored, engine, backend_info, clock,
            budget=budget,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
    finally:
        if engine is not None:
            engine.shutdown()


def _run_vectorized(
    instance: RMGPInstance,
    init: str,
    rng: random.Random,
    warm_start: Optional[np.ndarray],
    max_rounds: int,
    coloring: Optional[Dict],
    rec: Recorder,
    restored,
    engine,
    backend_info: Dict,
    clock: dynamics.RoundClock,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> PartitionResult:
    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    with rec.span("solve", solver="RMGP_vec", n=instance.n, k=instance.k):
        if restored is not None:
            groups = [
                [int(p) for p in group]
                for group in restored.state["groups"]
            ]
            assignment = restored.assignment
            batches = _make_batches(instance, groups, engine)
            active = dynamics.ActiveSet(instance.n, dirty=restored.frontier)
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init") as init_span:
                groups = groups_from_coloring(instance, coloring)
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                with rec.span("build_batches"):
                    batches = _make_batches(instance, groups, engine)
                active = dynamics.ActiveSet(instance.n)
                if init_span is not None:
                    init_span.attrs["num_groups"] = len(groups)
            rounds = [RoundStats(0, 0, clock.lap())]
            round_index = 0

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_vec",
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=active.flags.copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={"groups": [[int(p) for p in g] for g in groups]},
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        tol = dynamics.DEVIATION_TOLERANCE
        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, "RMGP_vec")
            deviations = 0
            examined = 0
            with rec.span("round", round=round_index) as round_span:
                for batch in batches:
                    if engine is not None:
                        if batch.size == 0:
                            continue
                        moved, seen = _engine_frontier_round(
                            instance, batch, assignment, active, engine
                        )
                    else:
                        if batch.members.size == 0:
                            continue
                        moved, seen = _batch_frontier_round(
                            instance, batch, assignment, active, tol
                        )
                    deviations += moved
                    examined += seen
            rec.round_end(
                round_span, "RMGP_vec", round_index,
                deviations=deviations,
                examined=examined,
                cost_evaluations=examined * instance.k,
                frontier_fn=active.count,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    players_examined=examined,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {"num_groups": len(groups)}
    extra.update(backend_info)
    if not converged:
        extra["remaining_frontier"] = active.count()
    return make_result(
        solver="RMGP_vec",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_vectorized  # noqa: E402
