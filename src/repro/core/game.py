"""The public facade: configure and solve an RMGP query.

:class:`RMGPGame` bundles the instance construction, optional
normalization (Section 3.3) and the choice of algorithm variant behind a
single object, which is what the examples and applications use:

    >>> game = RMGPGame(graph, classes=events, cost=distances, alpha=0.5)
    >>> result = game.solve(method="all", normalize="pessimistic", seed=7)
    >>> result.labels[some_user]
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

import numpy as np

from repro.core.costs import CostProvider
from repro.core.equilibrium import EquilibriumReport, equilibrium_report
from repro.core.instance import RMGPInstance
from repro.core.normalization import (
    NORMALIZATION_METHODS,
    NormalizationEstimate,
    normalize,
)
from repro.core.registry import SOLVERS  # noqa: F401  (public re-export)
from repro.core.result import PartitionResult
from repro.errors import ConfigurationError
from repro.graph.social_graph import SocialGraph


class RMGPGame:
    """One RMGP query: a social graph partitioned into query-time classes.

    Parameters mirror :class:`~repro.core.instance.RMGPInstance`; see the
    module docstring for a usage sketch.
    """

    def __init__(
        self,
        graph: SocialGraph,
        classes: Sequence[Hashable],
        cost: "np.ndarray | CostProvider | Callable[[int], Sequence[float]]",
        alpha: float = 0.5,
    ) -> None:
        self.instance = RMGPInstance(graph, classes, cost, alpha)
        self.normalization: Optional[NormalizationEstimate] = None

    @property
    def alpha(self) -> float:
        """Preference parameter α of the underlying instance."""
        return self.instance.alpha

    def solve(
        self,
        method: str = "all",
        normalize_method: Optional[str] = None,
        **solver_kwargs,
    ) -> PartitionResult:
        """Solve with the chosen variant.

        Parameters
        ----------
        method:
            One of ``"baseline"``, ``"se"``, ``"is"``, ``"gt"``, ``"all"``
            (short or long names; see
            :data:`repro.core.registry.SOLVERS`).
        normalize_method:
            ``None`` (raw costs), ``"optimistic"`` or ``"pessimistic"``
            (Section 3.3).  The estimate used is stored on
            ``self.normalization`` and echoed in ``result.extra``.
        solver_kwargs:
            Forwarded to the variant (``init=``, ``order=``, ``seed=``,
            ``threads=``, ``warm_start=``, ``recorder=``, ...).
        """
        # Imported lazily: repro.api imports this module's sibling
        # registry, and importing it at module scope would be circular
        # through repro.core's package __init__.
        from repro.api import partition

        if method not in SOLVERS:
            raise ConfigurationError(
                f"unknown method {method!r}; expected one of {sorted(SOLVERS)}"
            )
        instance = self.instance
        self.normalization = None
        if normalize_method is not None:
            if normalize_method not in NORMALIZATION_METHODS:
                raise ConfigurationError(
                    f"unknown normalization {normalize_method!r}; expected "
                    f"one of {NORMALIZATION_METHODS} or None"
                )
            instance, self.normalization = normalize(instance, normalize_method)
        result = partition(instance, solver=method, **solver_kwargs)
        if self.normalization is not None and normalize_method is not None:
            result.extra["normalization"] = self.normalization
        return result

    def verify(self, result: PartitionResult) -> EquilibriumReport:
        """Certify that ``result`` is a Nash equilibrium of this game.

        The check runs against the same (possibly normalized) instance
        the result was produced on.
        """
        instance = self.instance
        if "normalization" in result.extra:
            from repro.core.normalization import normalize_with_constant

            instance = normalize_with_constant(
                instance, result.extra["normalization"].cn
            )
        return equilibrium_report(instance, result.assignment)
