"""Simultaneous (synchronous) best-response dynamics — a cautionary ablation.

Section 4.2 warns that sequential updates are "a fundamental requirement
in best response dynamics: if multiple players change strategies
simultaneously their decisions may be based on 'outdated' information and
there is the chance that the overall potential function increases."
RMGP_is sidesteps this with independent sets; this module implements the
naive synchronous dynamics the warning is about, so the effect can be
measured (see ``benchmarks/bench_ablations.py``):

* :func:`solve_simultaneous` — every player moves at once.  May
  oscillate (e.g. two friends swapping classes forever); terminates on a
  fixed point, a detected cycle, or the round budget, and reports whether
  the potential ever increased.
* ``damping`` — each deviating player actually moves only with
  probability ``damping``; for ``damping < 1`` oscillations break with
  probability 1 and the dynamics converge in practice.
"""

from __future__ import annotations

import random
import warnings
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder


def _solve_simultaneous(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = 200,
    damping: float = 1.0,
    recorder: Optional[Recorder] = None,
) -> PartitionResult:
    """Synchronous best-response dynamics.

    Unlike every other solver in this package, **convergence is not
    guaranteed** for ``damping=1.0``; the result's ``converged`` flag and
    ``extra`` diagnostics (``potential_increases``, ``cycle_detected``)
    tell what happened.  This exists to validate the paper's argument
    for sequential/independent-set updates, not for production use.

    ``players_examined`` is genuinely ``n`` every round here: synchronous
    dynamics best-respond against a full snapshot, so every player is
    re-evaluated each round — it is not a full-sweep *assumption*, it is
    the algorithm.
    """
    if not 0.0 < damping <= 1.0:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    with rec.span(
        "solve", solver="RMGP_sync", n=instance.n, k=instance.k,
        damping=damping,
    ):
        with rec.span("round", round=0, phase="init"):
            assignment = dynamics.initial_assignment(
                instance, init, rng, warm_start
            )
        rounds: List[RoundStats] = [
            RoundStats(
                0, 0, clock.lap(), potential=potential(instance, assignment)
            )
        ]

        seen_states = {assignment.tobytes()}
        potential_increases = 0
        cycle_detected = False
        converged = False
        last_potential = rounds[0].potential or 0.0

        for round_index in range(1, max_rounds + 1):
            # Everyone computes a best response against the same snapshot.
            # "deviations" counts players who *want* to move; damping only
            # suppresses the execution, never the convergence test —
            # otherwise an unlucky round of coin flips would end the game
            # at a non-equilibrium.
            with rec.span("round", round=round_index) as round_span:
                proposals = assignment.copy()
                deviations = 0
                for player in range(instance.n):
                    costs = player_strategy_costs(
                        instance, assignment, player
                    )
                    current = int(assignment[player])
                    best = int(costs.argmin())
                    if (
                        best != current
                        and costs[best]
                        < costs[current] - dynamics.DEVIATION_TOLERANCE
                    ):
                        deviations += 1
                        if rng.random() < damping:
                            proposals[player] = best
                assignment = proposals
                phi = potential(instance, assignment)
            rec.round_end(
                round_span, "RMGP_sync", round_index,
                deviations=deviations,
                examined=instance.n,
                cost_evaluations=instance.n * instance.k,
                potential_fn=lambda: phi,
            )
            if phi > last_potential + 1e-12:
                potential_increases += 1
                rec.event(
                    "potential_increase", round=round_index,
                    delta=phi - last_potential,
                )
            last_potential = phi
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    potential=phi,
                    players_examined=instance.n,
                )
            )
            if deviations == 0:
                converged = True
                break
            # Cycle detection only makes sense for deterministic
            # (undamped) dynamics; a damped walk may legitimately revisit
            # states.
            if damping >= 1.0:
                state = assignment.tobytes()
                if state in seen_states:
                    cycle_detected = True
                    rec.event("cycle_detected", round=round_index)
                    break
                seen_states.add(state)

    return make_result(
        solver="RMGP_sync",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra={
            "potential_increases": potential_increases,
            "cycle_detected": cycle_detected,
            "damping": damping,
        },
    )


def solve_simultaneous(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = 200,
    damping: float = 1.0,
) -> PartitionResult:
    """Deprecated alias — use ``repro.partition(instance, solver="sync")``."""
    warnings.warn(
        "solve_simultaneous() is deprecated; use "
        "repro.partition(instance, solver='sync', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_simultaneous(
        instance,
        init=init,
        seed=seed,
        warm_start=warm_start,
        max_rounds=max_rounds,
        damping=damping,
    )
