"""Simultaneous (synchronous) best-response dynamics — a cautionary ablation.

Section 4.2 warns that sequential updates are "a fundamental requirement
in best response dynamics: if multiple players change strategies
simultaneously their decisions may be based on 'outdated' information and
there is the chance that the overall potential function increases."
RMGP_is sidesteps this with independent sets; this module implements the
naive synchronous dynamics the warning is about, so the effect can be
measured (see ``benchmarks/bench_ablations.py``):

* :func:`solve_simultaneous` — every player moves at once.  May
  oscillate (e.g. two friends swapping classes forever); terminates on a
  fixed point, a detected cycle, or the round budget, and reports whether
  the potential ever increased.
* ``damping`` — each deviating player actually moves only with
  probability ``damping``; for ``damping < 1`` oscillations break with
  probability 1 and the dynamics converge in practice.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder
from repro.parallel.engine import engine_scope, make_engine
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def _solve_simultaneous(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = 200,
    damping: float = 1.0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Synchronous best-response dynamics.

    Unlike every other solver in this package, **convergence is not
    guaranteed** for ``damping=1.0``; the result's ``converged`` flag and
    ``extra`` diagnostics (``potential_increases``, ``cycle_detected``)
    tell what happened.  This exists to validate the paper's argument
    for sequential/independent-set updates, not for production use.

    ``players_examined`` is genuinely ``n`` every round here: synchronous
    dynamics best-respond against a full snapshot, so every player is
    re-evaluated each round — it is not a full-sweep *assumption*, it is
    the algorithm.

    Because Φ is *not* monotone here, an interrupted solve reports the
    **best assignment by Φ seen so far** (round 0 included) rather than
    the current state — that is the strongest anytime guarantee the
    synchronous ablation can offer.  The checkpoint still stores the
    current state, so a resume replays the exact trajectory.
    """
    if not 0.0 < damping <= 1.0:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_sync", rec)
    engine = None
    backend_info = {}
    if backend is not None or workers is not None:
        # Synchronous dynamics best-respond against a frozen snapshot, so
        # the whole population parallelizes trivially; the serial rng
        # draws (deviators in player order) stay with the master.
        engine, backend_info = make_engine(
            instance,
            backend=backend,
            workers=workers,
            recorder=rec,
            tol=dynamics.DEVIATION_TOLERANCE,
        )
    all_players = np.arange(instance.n, dtype=np.int64)
    with engine_scope(engine), rec.span(
        "solve", solver="RMGP_sync", n=instance.n, k=instance.k,
        damping=damping,
    ):
        if restored is not None:
            assignment = restored.assignment
            rounds: List[RoundStats] = restored.restored_rounds()
            seen_states = {
                bytes.fromhex(state) for state in restored.state["seen"]
            }
            potential_increases = int(restored.state["potential_increases"])
            last_potential = float(restored.state["last_potential"])
            best_assignment = restored.state["best_assignment"]
            best_potential = float(restored.state["best_potential"])
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            completed_round = restored.round_index
        else:
            with rec.span("round", round=0, phase="init"):
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
            rounds = [
                RoundStats(
                    0, 0, clock.lap(),
                    potential=potential(instance, assignment),
                )
            ]
            seen_states = {assignment.tobytes()}
            potential_increases = 0
            last_potential = rounds[0].potential or 0.0
            best_assignment = assignment.copy()
            best_potential = last_potential
            completed_round = 0
        cycle_detected = False
        converged = False

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_sync",
                round_index=completed_round,
                assignment=assignment.copy(),
                frontier=np.zeros(0, dtype=bool),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={
                    "seen": [state.hex() for state in seen_states],
                    "potential_increases": potential_increases,
                    "last_potential": last_potential,
                    "best_assignment": best_assignment.copy(),
                    "best_potential": best_potential,
                },
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        interrupted = False
        for round_index in range(completed_round + 1, max_rounds + 1):
            if runtime is not None and runtime.check(round_index):
                interrupted = True
                break
            # Everyone computes a best response against the same snapshot.
            # "deviations" counts players who *want* to move; damping only
            # suppresses the execution, never the convergence test —
            # otherwise an unlucky round of coin flips would end the game
            # at a non-equilibrium.
            with rec.span("round", round=round_index) as round_span:
                proposals = assignment.copy()
                deviations = 0
                if engine is not None:
                    movers, bests = engine.scalar_moves(
                        assignment, all_players
                    )
                    # Same rng stream as the serial loop: draws happen
                    # for deviators only, in ascending player order.
                    deviations = int(movers.size)
                    for player, best in zip(
                        movers.tolist(), bests.tolist()
                    ):
                        if rng.random() < damping:
                            proposals[player] = best
                else:
                    for player in range(instance.n):
                        costs = player_strategy_costs(
                            instance, assignment, player
                        )
                        current = int(assignment[player])
                        best = int(costs.argmin())
                        if (
                            best != current
                            and costs[best]
                            < costs[current] - dynamics.DEVIATION_TOLERANCE
                        ):
                            deviations += 1
                            if rng.random() < damping:
                                proposals[player] = best
                assignment = proposals
                phi = potential(instance, assignment)
            rec.round_end(
                round_span, "RMGP_sync", round_index,
                deviations=deviations,
                examined=instance.n,
                cost_evaluations=instance.n * instance.k,
                potential_fn=lambda: phi,
            )
            if phi > last_potential + 1e-12:
                potential_increases += 1
                rec.event(
                    "potential_increase", round=round_index,
                    delta=phi - last_potential,
                )
            last_potential = phi
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    potential=phi,
                    players_examined=instance.n,
                )
            )
            completed_round = round_index
            if phi < best_potential:
                best_potential = phi
                best_assignment = assignment.copy()
            if deviations == 0:
                converged = True
                break
            # Cycle detection only makes sense for deterministic
            # (undamped) dynamics; a damped walk may legitimately revisit
            # states.
            if damping >= 1.0:
                state = assignment.tobytes()
                if state in seen_states:
                    cycle_detected = True
                    rec.event("cycle_detected", round=round_index)
                    break
                seen_states.add(state)
            if runtime is not None:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {
        "potential_increases": potential_increases,
        "cycle_detected": cycle_detected,
        "damping": damping,
    }
    extra.update(backend_info)
    if interrupted:
        # Report the best-by-Φ state, not wherever the oscillation was.
        extra["reported_best_potential"] = best_potential
        final_assignment = best_assignment
    else:
        final_assignment = assignment
    return make_result(
        solver="RMGP_sync",
        instance=instance,
        assignment=final_assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_simultaneous  # noqa: E402
