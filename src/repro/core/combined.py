"""RMGP_all — all three optimizations composed (Section 6.3).

"The proposed optimizations are orthogonal and can be applied in any
combination" (Section 4); RMGP_all applies all of them:

* **strategy elimination** — the global table is built only over each
  player's reduced strategy space ``S'_v`` (pruned entries are ``+inf``),
  and single-strategy players are fixed up front, which also shrinks the
  table ("the space requirement can be reduced", Section 4.3);
* **global table** — only unhappy players are examined;
* **independent strategies** — rounds sweep color groups, enabling the
  parallel processing of Section 4.2 (the group structure is also what
  the decentralized game of Section 5 distributes across slaves).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.global_table import happiness
from repro.core.independent_sets import groups_from_coloring
from repro.core.instance import RMGPInstance
from repro.core.objective import potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.core.strategy_elimination import (
    EliminationPlan,
    build_elimination_plan,
)
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def build_pruned_table(
    instance: RMGPInstance, assignment: np.ndarray, plan: EliminationPlan
) -> np.ndarray:
    """Global table restricted to valid strategies (pruned = ``+inf``)."""
    alpha = instance.alpha
    table = np.full((instance.n, instance.k), np.inf, dtype=np.float64)
    for player in range(instance.n):
        valid = plan.valid_classes[player]
        table[player, valid] = (
            alpha * instance.cost.row(player)[valid]
            + instance.max_social_cost[player]
        )
        idx = instance.neighbor_indices[player]
        if idx.size:
            refund = (1.0 - alpha) * 0.5 * instance.neighbor_weights[player]
            # Refunds on pruned classes act on +inf and leave them invalid.
            np.subtract.at(table[player], assignment[idx], refund)
    return table


def _solve_all(
    instance: RMGPInstance,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    coloring: Optional[Dict] = None,
    plan: Optional[EliminationPlan] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run RMGP_all on ``instance``.

    Round 0 covers ordering, initial assignment, valid-region computation
    and pruned-table construction, matching the paper's accounting of the
    expensive initialization step (Figure 12(c)).  Like RMGP_gt, the
    checkpoint serializes the (incrementally-updated) pruned table;
    ``+inf`` pruned entries survive the raw-buffer encoding unchanged.
    The elimination plan is deterministic and rebuilt on resume.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_all", rec)
    with rec.span("solve", solver="RMGP_all", n=instance.n, k=instance.k):
        if restored is not None:
            if plan is None:
                plan = build_elimination_plan(instance)
            fixed_mask = plan.fixed_class >= 0
            assignment = restored.assignment
            groups = [
                [int(p) for p in group]
                for group in restored.state["groups"]
            ]
            table = restored.state["table"]
            happy = ~restored.frontier
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init") as init_span:
                if plan is None:
                    with rec.span("build_plan"):
                        plan = build_elimination_plan(instance)
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                fixed_mask = plan.fixed_class >= 0
                assignment[fixed_mask] = plan.fixed_class[fixed_mask]

                groups = groups_from_coloring(instance, coloring)
                rank = {
                    p: i
                    for i, p in enumerate(
                        dynamics.player_order(instance, order, rng)
                    )
                }
                groups = [
                    sorted(
                        (p for p in group if not fixed_mask[p]),
                        key=rank.__getitem__,
                    )
                    for group in groups
                ]
                groups = [g for g in groups if g]

                with rec.span("build_table"):
                    table = build_pruned_table(instance, assignment, plan)
                happy = happiness(table, assignment)
                happy[fixed_mask] = True
                if init_span is not None:
                    init_span.attrs.update(
                        num_groups=len(groups), num_fixed=plan.num_fixed,
                        table_bytes=int(table.nbytes),
                    )
            rounds = [
                RoundStats(round_index=0, deviations=0, seconds=clock.lap())
            ]
            round_index = 0
        rec.gauge("solver.table_bytes", table.nbytes, solver="RMGP_all")

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_all",
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=(~happy).copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={
                    "groups": [[int(p) for p in g] for g in groups],
                    "table": table.copy(),
                },
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        half = (1.0 - instance.alpha) * 0.5
        tol = dynamics.DEVIATION_TOLERANCE
        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, "RMGP_all")
            deviations = 0
            examined = 0
            with rec.span("round", round=round_index) as round_span:
                for group in groups:
                    # Members are non-adjacent: their best responses are
                    # mutually independent, so this sweep equals a
                    # simultaneous update.
                    for player in group:
                        if happy[player]:
                            continue
                        examined += 1
                        current = int(assignment[player])
                        best = int(table[player].argmin())
                        if table[player, best] >= table[player, current] - tol:
                            happy[player] = True
                            continue
                        assignment[player] = best
                        happy[player] = True
                        deviations += 1
                        idx = instance.neighbor_indices[player]
                        wts = instance.neighbor_weights[player]
                        for friend, weight in zip(idx, wts):
                            delta = half * weight
                            table[friend, best] -= delta
                            table[friend, current] += delta
                            if fixed_mask[friend]:
                                continue
                            friend_class = int(assignment[friend])
                            happy[friend] = (
                                table[friend, friend_class]
                                <= table[friend].min() + tol
                            )
            rec.round_end(
                round_span, "RMGP_all", round_index,
                deviations=deviations,
                examined=examined,
                # Table-driven: one row argmin per examined player.
                cost_evaluations=examined,
                frontier_fn=lambda: int((~happy).sum()),
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    players_examined=examined,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {
        "num_fixed": plan.num_fixed,
        "num_groups": len(groups),
        "strategies_remaining": plan.strategies_remaining(),
    }
    if not converged:
        extra["remaining_frontier"] = int((~happy).sum())
    return make_result(
        solver="RMGP_all",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_all  # noqa: E402
