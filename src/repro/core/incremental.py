"""Incremental RMGP — maintaining an equilibrium across online updates.

The paper motivates RMGP as an on-line task: "locations of users may be
updated through check-ins, while new events may appear frequently"
(Section 1), and suggests seeding each execution with the previous
solution (Section 3.1).  :class:`IncrementalRMGP` takes this to its
logical end: it keeps the RMGP_gt state (global table + the shared
dirty-frontier :class:`~repro.core.dynamics.ActiveSet`) alive between
queries and supports *localized* updates —

* :meth:`update_player_costs` — a user checked in somewhere else (his
  cost row changed);
* :meth:`add_edge` / :meth:`remove_edge` — friendships form, dissolve,
  or change strength (an existing edge is re-weighted in place, no CSR
  rebuild);
* :meth:`add_vertex` / :meth:`remove_vertex` — users join or leave the
  query region;
* :meth:`set_alpha` — the preference parameter drifts;
* :meth:`resolve` — propagate best responses from the dirty players
  outward until the game is quiet again.

After a small perturbation only the affected neighborhood is touched, so
re-solving is orders of magnitude cheaper than from scratch.  The result
of :meth:`resolve` is always a fresh pure Nash equilibrium of the
*current* instance (same argument as RMGP_gt: every move strictly
decreases the exact potential of the updated game).

Batched churn
-------------
Structural mutations (edge/vertex add/remove) shift CSR slices, so each
one normally triggers an O(|V| + |E|) adjacency rebuild.  Under a
mutation feed that cost dominates; :meth:`batch` defers the rebuild so a
whole batch pays for exactly one::

    with engine.batch():
        for mutation in mutations:
            mutation.apply_to(engine)
    engine.resolve()

The global table and the dirty frontier are still patched per mutation
(those updates are O(k) / O(deg)), so correctness never depends on the
deferred rebuild — only :meth:`resolve`, :meth:`current_value`,
:meth:`seed_frontier` and :meth:`to_checkpoint` need fresh CSR arrays,
and each flushes the pending rebuild on entry.

Movement accounting
-------------------
SPAR's churn argument (PAPERS.md) is that under mutation streams the
metric that matters alongside Eq. 1 cost is *how many vertices change
shard per batch*.  Every :meth:`resolve` after the initial placement
reports ``vertices_moved`` / ``migration_cost`` in ``result.extra`` and
accumulates engine-lifetime totals (``moved_total``,
``migration_cost_total``), emitting ``churn.*`` counters through
:mod:`repro.obs`.  An optional ``movement_penalty`` adds a switching
cost to the objective: staying on the pre-resolve class is ``penalty``
cheaper, which is a constant shift of each player's own column — the
game stays an exact potential game and the drain converges to a Nash
equilibrium of the *penalized* game.  After the drain the penalty is
removed from the table and any players left strictly unhappy in the
unpenalized game re-enter the frontier (so the engine invariant
"frontier ⊇ potential movers" always holds for the real game).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import dynamics
from repro.core.costs import MatrixCost
from repro.core.global_table import build_global_table, happiness, table_round
from repro.core.instance import RMGPInstance
from repro.core.objective import objective
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError, GraphError
from repro.graph.social_graph import NodeId
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint
from repro.runtime.executor import SolveRuntime, load_resume


class IncrementalRMGP:
    """Long-lived RMGP state supporting online perturbations.

    Construction solves the instance once (via the global-table
    dynamics); afterwards, apply any number of updates and call
    :meth:`resolve` to re-converge.  Pass ``auto_resolve=False`` to skip
    the construction-time solve (the first explicit :meth:`resolve` then
    performs the initial placement), and ``warm_start`` to seed the
    initial assignment from a previous solution (Section 3.1).

    A ``recorder`` given at construction receives an event per online
    update and one ``resolve`` span (with per-round children) per
    :meth:`resolve` call; :meth:`resolve` also accepts a per-call
    recorder override.
    """

    def __init__(
        self,
        instance: RMGPInstance,
        init: str = "closest",
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        warm_start: Optional[np.ndarray] = None,
        auto_resolve: bool = True,
    ) -> None:
        self._recorder = recorder
        # Materialize the cost matrix: updates mutate it in place.
        self._matrix = instance.cost.dense()
        self.instance = instance.with_cost(MatrixCost(self._matrix))
        # MatrixCost copies; keep the live reference used by the solver.
        self._matrix = self.instance.cost._matrix  # type: ignore[attr-defined]
        import random

        rng = random.Random(seed)
        self.assignment = dynamics.initial_assignment(
            self.instance, init, rng, warm_start
        )
        self._table = build_global_table(self.instance, self.assignment)
        # The shared dirty-frontier scheduler every solver uses; online
        # updates mark the touched players, resolve() drains the frontier.
        self._active = dynamics.ActiveSet(
            self.instance.n,
            dirty=~happiness(self._table, self.assignment),
        )
        self.resolve_count = 0
        self.moved_total = 0
        self.migration_cost_total = 0.0
        self._batch_depth = 0
        self._adjacency_stale = False
        if auto_resolve:
            self.resolve()

    # ------------------------------------------------------------------
    # Batched mutation application
    # ------------------------------------------------------------------
    @contextmanager
    def batch(self):
        """Defer CSR rebuilds until the outermost batch exits.

        Inside the context every structural mutation patches the table
        and frontier immediately but leaves the instance's CSR adjacency
        stale; the single rebuild happens on exit (nesting is allowed —
        only the outermost exit flushes).  :meth:`resolve` also flushes,
        so forgetting the context can never produce wrong answers, only
        per-mutation rebuild cost.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._flush_adjacency()

    def _touch_adjacency(self) -> None:
        """Note a structural change; rebuild now unless inside a batch."""
        self._adjacency_stale = True
        if self._batch_depth == 0:
            self._flush_adjacency()

    def _flush_adjacency(self) -> None:
        if self._adjacency_stale:
            self.instance.rebuild_adjacency()
            self._adjacency_stale = False

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def update_player_costs(self, node: NodeId, new_row: Sequence[float]) -> None:
        """Replace a user's assignment-cost row (e.g. after a check-in)."""
        player = self._index(node)
        row = np.asarray(new_row, dtype=np.float64)
        if row.shape != (self.instance.k,):
            raise ConfigurationError(
                f"cost row must have length {self.instance.k}"
            )
        if row.min() < 0 or not np.isfinite(row).all():
            raise ConfigurationError("costs must be finite and non-negative")
        delta = self.instance.alpha * (row - self._matrix[player])
        self._matrix[player] = row
        self._table[player] += delta
        self._active.mark([player])
        rec = active_recorder(self._recorder)
        rec.event("update_player_costs", player=player)
        rec.count("incremental.updates", 1, kind="costs")

    def add_edge(self, u: NodeId, v: NodeId, weight: float) -> None:
        """A friendship forms (or an existing one changes strength).

        Both endpoints must already be players of the instance — an
        unknown endpoint raises :class:`ConfigurationError` (use
        :meth:`add_vertex` to admit a new user; silently creating a
        graph node here would desynchronize the index space and fail
        later with an obscure dangling-edge error).  Overwriting an
        existing edge patches the CSR weight slots in place
        (:meth:`RMGPInstance.update_edge_weight`) — no layout rebuild.
        """
        self._index(u), self._index(v)
        graph = self.instance.graph
        if graph.has_edge(u, v):
            old = graph.weight(u, v)
            if self._adjacency_stale:
                # CSR slices are already stale inside this batch; the
                # flush will pick the new weight up from the graph.
                graph.add_edge(u, v, weight)
            else:
                self.instance.update_edge_weight(u, v, weight)
            self._apply_edge_delta(u, v, weight - old, sign=+1.0)
        else:
            graph.add_edge(u, v, weight)
            self._touch_adjacency()
            self._apply_edge_delta(u, v, weight, sign=+1.0)
        active_recorder(self._recorder).count(
            "incremental.updates", 1, kind="add_edge"
        )

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """A friendship dissolves."""
        weight = self.instance.graph.weight(u, v)
        self.instance.graph.remove_edge(u, v)
        self._touch_adjacency()
        self._apply_edge_delta(u, v, weight, sign=-1.0)
        active_recorder(self._recorder).count(
            "incremental.updates", 1, kind="remove_edge"
        )

    def add_vertex(
        self,
        node: NodeId,
        cost_row: Sequence[float],
        edges: Iterable[Tuple[NodeId, float]] = (),
    ) -> None:
        """Admit a new player with ``cost_row`` and optional friendships.

        The player is appended at index ``n`` (existing indices are
        stable), starts on its cheapest class ("closest" init), and
        enters the dirty frontier together with the endpoints of every
        new friendship; :meth:`resolve` then settles the neighborhood.
        """
        inst = self.instance
        if node in inst.index_of:
            raise ConfigurationError(f"user {node!r} already exists")
        row = np.asarray(cost_row, dtype=np.float64)
        if row.shape != (inst.k,):
            raise ConfigurationError(
                f"cost row must have length {inst.k}"
            )
        if row.min() < 0 or not np.isfinite(row).all():
            raise ConfigurationError("costs must be finite and non-negative")
        edges = [(friend, float(w)) for friend, w in edges]
        friends = [friend for friend, _ in edges]
        if len({repr(f) for f in friends}) != len(friends):
            raise ConfigurationError("duplicate friends in edges")
        for friend, w in edges:
            if friend == node:
                raise GraphError(f"self-loop on node {node!r}")
            if friend not in inst.index_of:
                raise ConfigurationError(f"unknown user {friend!r}")

        inst.graph.add_node(node)
        for friend, w in edges:
            inst.graph.add_edge(node, friend, w)
        inst.node_ids.append(node)
        inst.index_of[node] = inst.n - 1
        self._matrix = np.vstack([self._matrix, row[None, :]])
        inst.cost = MatrixCost(self._matrix)
        self._matrix = inst.cost._matrix  # type: ignore[attr-defined]
        # Friendless table row: α·c plus a zero maxSC ceiling; the edge
        # deltas below add each friendship's share.
        self._table = np.vstack([self._table, inst.alpha * row[None, :]])
        self.assignment = np.append(
            self.assignment, np.int64(row.argmin())
        )
        self._active = dynamics.ActiveSet(
            inst.n, dirty=np.append(self._active.flags, True)
        )
        self._touch_adjacency()
        for friend, w in edges:
            self._apply_edge_delta(node, friend, w, sign=+1.0)
        rec = active_recorder(self._recorder)
        rec.event("add_vertex", n=inst.n, degree=len(edges))
        rec.count("incremental.updates", 1, kind="add_vertex")

    def remove_vertex(self, node: NodeId) -> None:
        """A player leaves; its friendships dissolve with it.

        Indices above the departed player shift down by one (the dense
        index space stays gapless); its friends enter the dirty frontier
        via the per-edge refunds.  Two documented edge cases:

        * **Sole member of its part** — if the player was the only one
          assigned to class ``p``, the part simply becomes empty.
          Classes are query-time constants, not resources that require
          members, so the remaining players' equilibrium is untouched
          except for the social refunds of the dissolved friendships.
        * **Last player** — removing the final vertex leaves a valid
          empty engine (``n == 0``); :meth:`resolve` returns an empty
          converged result and later :meth:`add_vertex` calls repopulate
          it.
        """
        index = self._index(node)
        inst = self.instance
        for friend, w in list(inst.graph.neighbors(node).items()):
            self._apply_edge_delta(node, friend, w, sign=-1.0)
        inst.graph.remove_node(node)
        inst.node_ids.pop(index)
        inst.index_of = {nid: i for i, nid in enumerate(inst.node_ids)}
        self._matrix = np.delete(self._matrix, index, axis=0)
        inst.cost = MatrixCost(self._matrix)
        self._matrix = inst.cost._matrix  # type: ignore[attr-defined]
        self._table = np.delete(self._table, index, axis=0)
        self.assignment = np.delete(self.assignment, index)
        self._active = dynamics.ActiveSet(
            inst.n, dirty=np.delete(self._active.flags, index)
        )
        self._touch_adjacency()
        rec = active_recorder(self._recorder)
        rec.event("remove_vertex", n=inst.n)
        rec.count("incremental.updates", 1, kind="remove_vertex")

    def set_alpha(self, alpha: float) -> None:
        """α drift: re-weight assignment versus social cost.

        α scales *every* table entry, so this is the one mutation with
        no localized patch: the table is rebuilt from the (unchanged)
        CSR adjacency and every player left unhappy under the new
        trade-off re-enters the frontier.  O(|V|·k + |E|) — the same as
        one RMGP_gt table build.
        """
        alpha = float(alpha)
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self._flush_adjacency()  # the table build reads the CSR arrays
        inst = self.instance
        inst.alpha = alpha
        inst.max_social_cost = (1.0 - alpha) * inst.half_strength
        self._table = build_global_table(inst, self.assignment)
        self._active.mark(
            np.flatnonzero(~happiness(self._table, self.assignment))
        )
        rec = active_recorder(self._recorder)
        rec.event("set_alpha", alpha=alpha)
        rec.count("incremental.updates", 1, kind="alpha")

    def seed_frontier(self, nodes: Iterable[NodeId]) -> None:
        """Mark ``nodes`` *and their graph neighborhoods* dirty.

        The per-mutation table patches already mark every player whose
        costs changed, which is sufficient for correctness; a mutation
        feed calls this afterwards to widen the frontier to the touched
        vertices' full neighborhoods (the ISSUE-6 seeding rule).  A
        superset frontier is always safe: clean-player examinations are
        provable no-ops (see :class:`~repro.core.dynamics.ActiveSet`).
        """
        players = np.array(
            [self._index(node) for node in nodes], dtype=np.int64
        )
        if players.size == 0:
            return
        self._flush_adjacency()
        self._active.mark(players)
        self._active.mark(self.instance.neighbors_of(players))

    # ------------------------------------------------------------------
    def resolve(
        self,
        max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
        recorder: Optional[Recorder] = None,
        budget: Optional[RuntimeBudget] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        movement_penalty: Optional[float] = None,
    ) -> PartitionResult:
        """Run localized best responses until the frontier is quiet.

        With a ``budget``, the drain stops at the first round boundary
        past the deadline (or once the token is cancelled) and returns
        the current — valid, partially re-converged — assignment with
        ``converged=False`` and ``stop_reason`` set; the dirty frontier
        survives in the engine, so a later :meth:`resolve` (or a
        :meth:`to_checkpoint` / :meth:`from_checkpoint` round trip)
        finishes the propagation exactly where it stopped.

        ``movement_penalty`` (>= 0) charges each player that amount for
        leaving its pre-resolve class: the drain converges to a Nash
        equilibrium of the switching-cost game, trading equilibrium
        quality for fewer shard moves (SPAR's trade-off).  Checkpoints
        written during a penalized resolve store the *unpenalized*
        table (with the frontier re-widened), so resuming them never
        bakes a stale penalty into the engine.

        Movement accounting: every resolve after the initial placement
        reports ``vertices_moved`` and ``migration_cost`` (the summed
        ``W_v`` of the movers — the social state that must be
        re-replicated on the new shard) in ``result.extra`` and
        accumulates the engine totals.
        """
        self._flush_adjacency()
        rec = active_recorder(
            recorder if recorder is not None else self._recorder
        )
        penalty = 0.0 if movement_penalty is None else float(movement_penalty)
        if penalty < 0 or not np.isfinite(penalty):
            raise ConfigurationError(
                f"movement_penalty must be finite and >= 0, got {penalty}"
            )
        runtime = SolveRuntime.create(
            budget=budget,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            recorder=rec,
        )
        clock = dynamics.RoundClock()
        rounds: List[RoundStats] = [RoundStats(0, 0, clock.lap())]
        # Sweep in player order over the dirty frontier — the exact
        # RMGP_gt schedule (same table_round), so a fresh engine
        # reproduces solve_global_table(order="given") step for step.
        sweep = range(self.instance.n)
        round_index = 0
        baseline = self.assignment.copy()
        rows = np.arange(self.instance.n)
        initial_placement = self.resolve_count == 0

        def make_checkpoint() -> SolveCheckpoint:
            checkpoint = self.to_checkpoint()
            if penalty > 0.0:
                # Strip the in-flight penalty and re-widen the frontier
                # so the restored engine sees the real game.
                table = checkpoint.state["table"]
                table[rows, baseline] += penalty
                checkpoint.frontier |= ~happiness(
                    table, checkpoint.assignment
                )
            return checkpoint

        if penalty > 0.0:
            # Staying put becomes `penalty` cheaper — a constant shift
            # of each player's own column, so the exact-potential
            # argument (and hence termination) is untouched.  Happy
            # players only get happier: the frontier needs no re-seed.
            self._table[rows, baseline] -= penalty
        try:
            with rec.span(
                "resolve", solver="RMGP_incremental", n=self.instance.n,
                resolve_index=self.resolve_count,
            ) as resolve_span:
                if resolve_span is not None:
                    resolve_span.attrs["initial_frontier"] = (
                        self._active.count()
                    )
                while self._active.any_dirty():
                    if runtime is not None and runtime.check(round_index + 1):
                        break
                    round_index += 1
                    dynamics.check_round_budget(
                        round_index, max_rounds, "IncrementalRMGP"
                    )
                    with rec.span("round", round=round_index) as round_span:
                        deviations, examined = table_round(
                            self.instance, self._table, self.assignment,
                            self._active, sweep,
                        )
                    rec.round_end(
                        round_span, "RMGP_incremental", round_index,
                        deviations=deviations,
                        examined=examined,
                        cost_evaluations=examined,
                        frontier_fn=self._active.count,
                    )
                    rounds.append(
                        RoundStats(
                            round_index=round_index,
                            deviations=deviations,
                            seconds=clock.lap(),
                            players_examined=examined,
                        )
                    )
                    if deviations == 0:
                        break
                    if runtime is not None:
                        runtime.note_round(round_index, make_checkpoint)
            converged = not self._active.any_dirty()
            if runtime is not None:
                runtime.finalize(make_checkpoint)
        finally:
            if penalty > 0.0:
                self._table[rows, baseline] += penalty
                # Un-patching can re-expose strictly better deviations:
                # restore the invariant "frontier ⊇ potential movers"
                # for the next (unpenalized) resolve.
                self._active.mark(
                    np.flatnonzero(~happiness(self._table, self.assignment))
                )
        self.resolve_count += 1
        moved_mask = self.assignment != baseline
        moved = int(np.count_nonzero(moved_mask))
        migration_cost = float(self.instance.half_strength[moved_mask].sum())
        extra = {"resolve_count": self.resolve_count}
        if not initial_placement:
            # The initial placement is not migration: SPAR-style
            # accounting starts once there is a previous shard to move
            # away from.
            self.moved_total += moved
            self.migration_cost_total += migration_cost
            extra["vertices_moved"] = moved
            extra["migration_cost"] = migration_cost
            extra["moved_total"] = self.moved_total
            extra["migration_cost_total"] = self.migration_cost_total
            rec.count("churn.vertices_moved", moved)
            rec.observe("churn.migration_cost", migration_cost)
        if penalty > 0.0:
            extra["movement_penalty"] = penalty
        if not converged:
            extra["remaining_frontier"] = self._active.count()
        return make_result(
            solver="RMGP_incremental",
            instance=self.instance,
            assignment=self.assignment,
            rounds=rounds,
            converged=converged,
            wall_seconds=clock.total(),
            extra=extra,
            stop_reason=runtime.stop_reason if runtime is not None else None,
        )

    def current_value(self):
        """Equation 1 breakdown of the current assignment."""
        self._flush_adjacency()
        return objective(self.instance, self.assignment)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> SolveCheckpoint:
        """Snapshot the full engine state (serializable via
        :func:`repro.core.serialize.save_checkpoint`).

        The snapshot captures the solver state — assignment, global
        table, mutated cost matrix, dirty frontier, resolve counter —
        but **not** the graph topology: :meth:`from_checkpoint` must be
        given an instance whose graph matches the one the checkpoint was
        taken under (enforced via the fingerprint's CSR slot count).
        Mutations that arrived *after* the checkpoint therefore must be
        replayed against the restored engine, not baked into the
        instance handed to :meth:`from_checkpoint` — the fingerprint
        check turns the wrong order into a hard
        :class:`~repro.errors.DataError` instead of a silent divergence.
        """
        self._flush_adjacency()
        return SolveCheckpoint(
            solver="RMGP_incremental",
            round_index=self.resolve_count,
            assignment=self.assignment.copy(),
            frontier=self._active.flags.copy(),
            state={
                "table": self._table.copy(),
                "cost_matrix": self._matrix.copy(),
                "resolve_count": self.resolve_count,
            },
            fingerprint=SolveCheckpoint.fingerprint_of(self.instance),
        )

    @classmethod
    def from_checkpoint(
        cls,
        instance: RMGPInstance,
        checkpoint,
        recorder: Optional[Recorder] = None,
    ) -> "IncrementalRMGP":
        """Rebuild an engine from a checkpoint (path or object).

        The restored engine continues the interrupted trajectory
        byte-for-byte: same table, same frontier, same assignment.  The
        checkpoint's cost matrix (which accumulates every
        :meth:`update_player_costs`) overrides the instance's.  Movement
        accounting restarts from zero — migration totals are a property
        of one engine lifetime, not of the solve trajectory.
        """
        restored = load_resume(checkpoint, instance, "RMGP_incremental",
                               recorder)
        if restored is None:
            raise ConfigurationError("from_checkpoint() requires a checkpoint")
        engine = cls.__new__(cls)
        engine._recorder = recorder
        matrix = np.array(restored.state["cost_matrix"], dtype=np.float64)
        engine.instance = instance.with_cost(MatrixCost(matrix))
        engine._matrix = engine.instance.cost._matrix  # type: ignore[attr-defined]
        engine.assignment = restored.assignment.copy()
        engine._table = np.array(restored.state["table"], dtype=np.float64)
        engine._active = dynamics.ActiveSet(
            engine.instance.n, dirty=restored.frontier.copy()
        )
        engine.resolve_count = int(restored.state["resolve_count"])
        engine.moved_total = 0
        engine.migration_cost_total = 0.0
        engine._batch_depth = 0
        engine._adjacency_stale = False
        return engine

    # ------------------------------------------------------------------
    def _index(self, node: NodeId) -> int:
        try:
            return self.instance.index_of[node]
        except KeyError as exc:
            raise ConfigurationError(f"unknown user {node!r}") from exc

    def _rebuild_adjacency(self, nodes: Iterable[NodeId]) -> None:
        """Refresh the instance's CSR adjacency after a graph mutation."""
        del nodes
        self._touch_adjacency()

    def _apply_edge_delta(
        self, u: NodeId, v: NodeId, weight: float, sign: float
    ) -> None:
        """Patch both endpoints' table rows for an edge change.

        Adding an edge (sign=+1) raises every class's cost by the new
        ``maxSC`` share except the friend's current class; removal is the
        exact inverse.  ``weight`` may also be a (possibly negative)
        weight *delta* for in-place overwrites — the patch is linear.
        """
        half = (1.0 - self.instance.alpha) * 0.5 * weight
        iu, iv = self._index(u), self._index(v)
        for me, other in ((iu, iv), (iv, iu)):
            self._table[me] += sign * half
            self._table[me, int(self.assignment[other])] -= sign * half
        self._active.mark([iu, iv])


def _solve_incremental(
    instance: RMGPInstance,
    init: str = "closest",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
    mutations: Optional[Sequence] = None,
    movement_penalty: Optional[float] = None,
) -> PartitionResult:
    """Registry entry point: a one-shot solve through a live engine.

    The ``partition(instance, solver="inc", ...)`` path.  ``mutations``
    is a sequence of objects exposing ``apply_to(engine)`` (the
    :mod:`repro.streaming` mutation algebra — core stays import-free of
    it via duck typing), applied in order *after* the initial placement
    (or after checkpoint restore) and *before* the final resolve, in one
    :meth:`IncrementalRMGP.batch`.

    Composition with the PR-4 machinery:

    * ``resume_from`` restores the engine against the **pre-mutation**
      instance (the checkpoint fingerprint pins its topology), then the
      mutations are replayed live — the documented semantics for
      "mutations arriving against a checkpointed/resumed solve".
    * ``budget`` / ``checkpoint_*`` thread straight into
      :meth:`IncrementalRMGP.resolve`, so deadlines, cancellation and
      periodic checkpoints apply to the post-mutation drain.
    """
    if resume_from is not None:
        engine = IncrementalRMGP.from_checkpoint(
            instance, resume_from, recorder=recorder
        )
    else:
        engine = IncrementalRMGP(
            instance, init=init, seed=seed, recorder=recorder,
            warm_start=warm_start, auto_resolve=False,
        )
        if mutations:
            # The pre-mutation equilibrium is the warm start the paper's
            # Section 3.1 suggests; without it the "incremental" solve
            # would just be RMGP_gt on the mutated instance.
            engine.resolve(max_rounds=max_rounds, recorder=recorder)
    if mutations:
        with engine.batch():
            for mutation in mutations:
                mutation.apply_to(engine)
    return engine.resolve(
        max_rounds=max_rounds,
        recorder=recorder,
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        movement_penalty=movement_penalty,
    )
