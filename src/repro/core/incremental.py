"""Incremental RMGP — maintaining an equilibrium across online updates.

The paper motivates RMGP as an on-line task: "locations of users may be
updated through check-ins, while new events may appear frequently"
(Section 1), and suggests seeding each execution with the previous
solution (Section 3.1).  :class:`IncrementalRMGP` takes this to its
logical end: it keeps the RMGP_gt state (global table + the shared
dirty-frontier :class:`~repro.core.dynamics.ActiveSet`) alive between
queries and supports *localized* updates —

* :meth:`update_player_costs` — a user checked in somewhere else (his
  cost row changed);
* :meth:`add_edge` / :meth:`remove_edge` — friendships form or dissolve;
* :meth:`resolve` — propagate best responses from the dirty players
  outward until the game is quiet again.

After a small perturbation only the affected neighborhood is touched, so
re-solving is orders of magnitude cheaper than from scratch.  The result
of :meth:`resolve` is always a fresh pure Nash equilibrium of the
*current* instance (same argument as RMGP_gt: every move strictly
decreases the exact potential of the updated game).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core import dynamics
from repro.core.costs import MatrixCost
from repro.core.global_table import build_global_table, happiness, table_round
from repro.core.instance import RMGPInstance
from repro.core.objective import objective
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError
from repro.graph.social_graph import NodeId
from repro.obs.recorder import Recorder, active_recorder
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint
from repro.runtime.executor import SolveRuntime, load_resume


class IncrementalRMGP:
    """Long-lived RMGP state supporting online perturbations.

    Construction solves the instance once (via the global-table
    dynamics); afterwards, apply any number of updates and call
    :meth:`resolve` to re-converge.

    A ``recorder`` given at construction receives an event per online
    update and one ``resolve`` span (with per-round children) per
    :meth:`resolve` call; :meth:`resolve` also accepts a per-call
    recorder override.
    """

    def __init__(
        self,
        instance: RMGPInstance,
        init: str = "closest",
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self._recorder = recorder
        # Materialize the cost matrix: updates mutate it in place.
        self._matrix = instance.cost.dense()
        self.instance = instance.with_cost(MatrixCost(self._matrix))
        # MatrixCost copies; keep the live reference used by the solver.
        self._matrix = self.instance.cost._matrix  # type: ignore[attr-defined]
        import random

        rng = random.Random(seed)
        self.assignment = dynamics.initial_assignment(self.instance, init, rng)
        self._table = build_global_table(self.instance, self.assignment)
        # The shared dirty-frontier scheduler every solver uses; online
        # updates mark the touched players, resolve() drains the frontier.
        self._active = dynamics.ActiveSet(
            self.instance.n,
            dirty=~happiness(self._table, self.assignment),
        )
        self.resolve_count = 0
        self.resolve()

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def update_player_costs(self, node: NodeId, new_row: Sequence[float]) -> None:
        """Replace a user's assignment-cost row (e.g. after a check-in)."""
        player = self._index(node)
        row = np.asarray(new_row, dtype=np.float64)
        if row.shape != (self.instance.k,):
            raise ConfigurationError(
                f"cost row must have length {self.instance.k}"
            )
        if row.min() < 0 or not np.isfinite(row).all():
            raise ConfigurationError("costs must be finite and non-negative")
        delta = self.instance.alpha * (row - self._matrix[player])
        self._matrix[player] = row
        self._table[player] += delta
        self._active.mark([player])
        rec = active_recorder(self._recorder)
        rec.event("update_player_costs", player=player)
        rec.count("incremental.updates", 1, kind="costs")

    def add_edge(self, u: NodeId, v: NodeId, weight: float) -> None:
        """A friendship forms; both endpoints' tables gain the edge."""
        if self.instance.graph.has_edge(u, v):
            self.remove_edge(u, v)
        self.instance.graph.add_edge(u, v, weight)
        self._rebuild_adjacency((u, v))
        self._apply_edge_delta(u, v, weight, sign=+1.0)
        active_recorder(self._recorder).count(
            "incremental.updates", 1, kind="add_edge"
        )

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """A friendship dissolves."""
        weight = self.instance.graph.weight(u, v)
        self.instance.graph.remove_edge(u, v)
        self._rebuild_adjacency((u, v))
        self._apply_edge_delta(u, v, weight, sign=-1.0)
        active_recorder(self._recorder).count(
            "incremental.updates", 1, kind="remove_edge"
        )

    # ------------------------------------------------------------------
    def resolve(
        self,
        max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
        recorder: Optional[Recorder] = None,
        budget: Optional[RuntimeBudget] = None,
    ) -> PartitionResult:
        """Run localized best responses until the frontier is quiet.

        With a ``budget``, the drain stops at the first round boundary
        past the deadline (or once the token is cancelled) and returns
        the current — valid, partially re-converged — assignment with
        ``converged=False`` and ``stop_reason`` set; the dirty frontier
        survives in the engine, so a later :meth:`resolve` (or a
        :meth:`to_checkpoint` / :meth:`from_checkpoint` round trip)
        finishes the propagation exactly where it stopped.
        """
        rec = active_recorder(
            recorder if recorder is not None else self._recorder
        )
        runtime = SolveRuntime.create(budget=budget, recorder=rec)
        clock = dynamics.RoundClock()
        rounds: List[RoundStats] = [RoundStats(0, 0, clock.lap())]
        # Sweep in player order over the dirty frontier — the exact
        # RMGP_gt schedule (same table_round), so a fresh engine
        # reproduces solve_global_table(order="given") step for step.
        sweep = range(self.instance.n)
        round_index = 0
        with rec.span(
            "resolve", solver="RMGP_incremental", n=self.instance.n,
            resolve_index=self.resolve_count,
        ) as resolve_span:
            if resolve_span is not None:
                resolve_span.attrs["initial_frontier"] = self._active.count()
            while self._active.any_dirty():
                if runtime is not None and runtime.check(round_index + 1):
                    break
                round_index += 1
                dynamics.check_round_budget(
                    round_index, max_rounds, "IncrementalRMGP"
                )
                with rec.span("round", round=round_index) as round_span:
                    deviations, examined = table_round(
                        self.instance, self._table, self.assignment,
                        self._active, sweep,
                    )
                rec.round_end(
                    round_span, "RMGP_incremental", round_index,
                    deviations=deviations,
                    examined=examined,
                    cost_evaluations=examined,
                    frontier_fn=self._active.count,
                )
                rounds.append(
                    RoundStats(
                        round_index=round_index,
                        deviations=deviations,
                        seconds=clock.lap(),
                        players_examined=examined,
                    )
                )
                if deviations == 0:
                    break
        self.resolve_count += 1
        converged = not self._active.any_dirty()
        extra = {"resolve_count": self.resolve_count}
        if not converged:
            extra["remaining_frontier"] = self._active.count()
        return make_result(
            solver="RMGP_incremental",
            instance=self.instance,
            assignment=self.assignment,
            rounds=rounds,
            converged=converged,
            wall_seconds=clock.total(),
            extra=extra,
            stop_reason=runtime.stop_reason if runtime is not None else None,
        )

    def current_value(self):
        """Equation 1 breakdown of the current assignment."""
        return objective(self.instance, self.assignment)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def to_checkpoint(self) -> SolveCheckpoint:
        """Snapshot the full engine state (serializable via
        :func:`repro.core.serialize.save_checkpoint`).

        The snapshot captures the solver state — assignment, global
        table, mutated cost matrix, dirty frontier, resolve counter —
        but **not** the graph topology: :meth:`from_checkpoint` must be
        given an instance whose graph matches the one the checkpoint was
        taken under (enforced via the fingerprint's CSR slot count).
        """
        return SolveCheckpoint(
            solver="RMGP_incremental",
            round_index=self.resolve_count,
            assignment=self.assignment.copy(),
            frontier=self._active.flags.copy(),
            state={
                "table": self._table.copy(),
                "cost_matrix": self._matrix.copy(),
                "resolve_count": self.resolve_count,
            },
            fingerprint=SolveCheckpoint.fingerprint_of(self.instance),
        )

    @classmethod
    def from_checkpoint(
        cls,
        instance: RMGPInstance,
        checkpoint,
        recorder: Optional[Recorder] = None,
    ) -> "IncrementalRMGP":
        """Rebuild an engine from a checkpoint (path or object).

        The restored engine continues the interrupted trajectory
        byte-for-byte: same table, same frontier, same assignment.  The
        checkpoint's cost matrix (which accumulates every
        :meth:`update_player_costs`) overrides the instance's.
        """
        restored = load_resume(checkpoint, instance, "RMGP_incremental",
                               recorder)
        if restored is None:
            raise ConfigurationError("from_checkpoint() requires a checkpoint")
        engine = cls.__new__(cls)
        engine._recorder = recorder
        matrix = np.array(restored.state["cost_matrix"], dtype=np.float64)
        engine.instance = instance.with_cost(MatrixCost(matrix))
        engine._matrix = engine.instance.cost._matrix  # type: ignore[attr-defined]
        engine.assignment = restored.assignment.copy()
        engine._table = np.array(restored.state["table"], dtype=np.float64)
        engine._active = dynamics.ActiveSet(
            engine.instance.n, dirty=restored.frontier.copy()
        )
        engine.resolve_count = int(restored.state["resolve_count"])
        return engine

    # ------------------------------------------------------------------
    def _index(self, node: NodeId) -> int:
        try:
            return self.instance.index_of[node]
        except KeyError as exc:
            raise ConfigurationError(f"unknown user {node!r}") from exc

    def _rebuild_adjacency(self, nodes: Iterable[NodeId]) -> None:
        """Refresh the instance's CSR adjacency after a graph mutation."""
        self.instance.rebuild_adjacency(nodes)

    def _apply_edge_delta(
        self, u: NodeId, v: NodeId, weight: float, sign: float
    ) -> None:
        """Patch both endpoints' table rows for an edge change.

        Adding an edge (sign=+1) raises every class's cost by the new
        ``maxSC`` share except the friend's current class; removal is the
        exact inverse.
        """
        half = (1.0 - self.instance.alpha) * 0.5 * weight
        iu, iv = self._index(u), self._index(v)
        for me, other in ((iu, iv), (iv, iu)):
            self._table[me] += sign * half
            self._table[me, int(self.assignment[other])] -= sign * half
        self._active.mark([iu, iv])
