"""RMGP_is — parallelism with independent strategies (Section 4.2, Figure 4).

Players that share no edge cannot affect each other's best responses, so
the players are grouped by a proper graph coloring and each color group
is processed "simultaneously".  Processing a group concurrently is
semantically identical to processing it sequentially (no two members are
adjacent), so correctness and convergence are untouched; the benefit is
wall-clock parallelism.

CPython's GIL limits the real speedup of the thread pool, so results also
report a *model* critical path — the per-round work under ideal ``T``-way
parallelism, ``Σ_groups ceil(|G_i| / T)`` players — which is the quantity
the paper's multi-threaded C++ implementation improves.  Benchmarks show
both numbers.
"""

from __future__ import annotations

import math
import random
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs, potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.errors import ConfigurationError
from repro.graph.coloring import color_groups, greedy_coloring, is_proper_coloring
from repro.obs.recorder import Recorder, active_recorder
from repro.parallel.engine import make_engine
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def groups_from_coloring(
    instance: RMGPInstance, coloring: Optional[Dict] = None
) -> List[List[int]]:
    """Translate a node coloring into index-space player groups.

    ``coloring`` maps user ids to colors; when omitted, a greedy coloring
    is computed (the paper computes the coloring off-line).
    """
    if coloring is None:
        coloring = greedy_coloring(instance.graph)
    elif not is_proper_coloring(instance.graph, coloring):
        raise ConfigurationError("supplied coloring is not proper for this graph")
    groups = color_groups(coloring)
    return [
        [instance.index_of[node] for node in group]
        for group in groups
        if group
    ]


def _solve_independent_sets(
    instance: RMGPInstance,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    coloring: Optional[Dict] = None,
    threads: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    exact_scale: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run RMGP_is: best-response rounds sweeping color groups.

    Parameters
    ----------
    threads:
        Maximum simultaneously running threads ``T`` (Figure 4).  With
        ``threads=1`` groups are processed sequentially — the result is
        identical, only wall time differs.  GIL-bound; superseded by
        ``backend=``/``workers=`` and mutually exclusive with them.
    backend / workers:
        Parallel execution backend (``"pure"``/``"shm"``/``"numba"``)
        and shm worker count; see :mod:`repro.parallel`.  Assignments
        stay byte-identical to the pure path for every backend.
    exact_scale:
        When set, best responses use Lemma 2 integer fixed-point
        arithmetic at this scale (exact, order-free; changes the
        trajectory vs. the float path but not across backends).
    coloring:
        Optional pre-computed proper coloring (user id -> color).
    recorder:
        Telemetry sink; ``None`` uses the ambient recorder.
    """
    if threads < 1:
        raise ConfigurationError("threads must be >= 1")
    wants_engine = (
        backend is not None or workers is not None or exact_scale is not None
    )
    if wants_engine and threads > 1:
        raise ConfigurationError(
            "threads (the GIL-bound thread pool) cannot be combined with "
            "backend=/workers=/exact_scale=; use workers= for real "
            "parallelism"
        )
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_is", rec)
    with rec.span(
        "solve", solver="RMGP_is", n=instance.n, k=instance.k, threads=threads
    ):
        if restored is not None:
            # The coloring is checkpointed (a caller-supplied coloring or
            # greedy tie-breaks need not be rebuilt identically).
            groups = [
                [int(p) for p in group]
                for group in restored.state["groups"]
            ]
            assignment = restored.assignment
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init") as init_span:
                groups = groups_from_coloring(instance, coloring)
                # Within each group keep the requested ordering
                # (degree/random).
                rank = {
                    p: i
                    for i, p in enumerate(
                        dynamics.player_order(instance, order, rng)
                    )
                }
                groups = [
                    sorted(group, key=rank.__getitem__) for group in groups
                ]
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                if init_span is not None:
                    init_span.attrs["num_groups"] = len(groups)
            rounds = [
                RoundStats(round_index=0, deviations=0, seconds=clock.lap())
            ]
            round_index = 0

        executor = (
            ThreadPoolExecutor(max_workers=threads) if threads > 1 else None
        )
        engine = None
        if wants_engine:
            engine, backend_info = make_engine(
                instance,
                backend=backend,
                workers=workers,
                recorder=rec,
                exact_scale=exact_scale,
                tol=dynamics.DEVIATION_TOLERANCE,
            )
        if restored is not None:
            active = dynamics.ActiveSet(instance.n, dirty=restored.frontier)
        else:
            active = dynamics.ActiveSet(instance.n)

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_is",
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=active.flags.copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={"groups": [[int(p) for p in g] for g in groups]},
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        try:
            converged = False
            while not converged:
                if runtime is not None and runtime.check(round_index + 1):
                    break
                round_index += 1
                dynamics.check_round_budget(round_index, max_rounds, "RMGP_is")
                deviations = 0
                examined = 0
                with rec.span("round", round=round_index) as round_span:
                    for group in groups:
                        # Only the dirty members of the group can possibly
                        # move; clean members' best responses are provably
                        # unchanged.
                        pending = [p for p in group if active.flags[p]]
                        if not pending:
                            continue
                        examined += len(pending)
                        active.clear(pending)
                        deviations += _process_group(
                            instance, assignment, pending, executor, threads,
                            active, engine,
                        )
                rec.round_end(
                    round_span, "RMGP_is", round_index,
                    deviations=deviations,
                    examined=examined,
                    cost_evaluations=examined * instance.k,
                    frontier_fn=active.count,
                    potential_fn=lambda: potential(instance, assignment),
                )
                rounds.append(
                    RoundStats(
                        round_index=round_index,
                        deviations=deviations,
                        seconds=clock.lap(),
                        players_examined=examined,
                    )
                )
                converged = deviations == 0
                if runtime is not None and not converged:
                    runtime.note_round(round_index, make_checkpoint)
            if runtime is not None:
                runtime.finalize(make_checkpoint)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            if engine is not None:
                engine.shutdown()

    critical_path = sum(math.ceil(len(g) / threads) for g in groups)
    extra = {
        "num_groups": len(groups),
        "threads": threads,
        "model_players_per_round": critical_path,
        "sequential_players_per_round": instance.n,
        "model_speedup": (instance.n / critical_path) if critical_path else 1.0,
    }
    if wants_engine:
        extra.update(backend_info)
    if not converged:
        extra["remaining_frontier"] = active.count()
    return make_result(
        solver="RMGP_is",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


def _process_group(
    instance: RMGPInstance,
    assignment: np.ndarray,
    group: Sequence[int],
    executor: Optional[ThreadPoolExecutor],
    threads: int,
    active: dynamics.ActiveSet,
    engine=None,
) -> int:
    """Best responses for one color group's frontier; returns deviations.

    Members are pairwise non-adjacent, so all best responses are computed
    against the same effective context regardless of intra-group order;
    writes are committed after computation, mirroring Figure 4's
    "wait for all threads to finish".  Each committed move marks the
    mover's CSR neighbor slice dirty for the following groups/rounds.

    With an ``engine`` the same compute/commit split runs on the
    parallel backend: the engine returns the group's deviating
    ``(player, best)`` pairs in member order (chunks are merged in chunk
    order), so the commit loop below is untouched.
    """
    if engine is not None:
        players, bests = engine.scalar_moves(
            assignment, np.asarray(group, dtype=np.int64)
        )
        moves = list(zip(players.tolist(), bests.tolist()))
    elif executor is None or len(group) <= threads:
        moves = _chunk_best_classes(instance, assignment, group)
    else:
        chunk = math.ceil(len(group) / threads)
        chunks = [group[i : i + chunk] for i in range(0, len(group), chunk)]
        futures = [
            executor.submit(_chunk_best_classes, instance, assignment, c)
            for c in chunks
        ]
        moves = []
        for future in futures:
            moves.extend(future.result())
    deviations = 0
    for player, best in moves:
        assignment[player] = best
        active.mark(instance.neighbor_indices[player])
        deviations += 1
    return deviations


def _chunk_best_classes(
    instance: RMGPInstance, assignment: np.ndarray, players: Sequence[int]
) -> List[tuple]:
    """Deviating (player, best class) pairs for non-adjacent players.

    Safe to run concurrently with other chunks of the same group: no
    member reads another member's strategy (they are non-adjacent), and
    writes happen only after every chunk finishes.
    """
    moves = []
    for player in players:
        best = _best_class(instance, assignment, player)
        if best != int(assignment[player]):
            moves.append((player, best))
    return moves


def _best_class(instance: RMGPInstance, assignment: np.ndarray, player: int) -> int:
    """Best-response class with the standard tie-keeps-current rule."""
    costs = player_strategy_costs(instance, assignment, player)
    current = int(assignment[player])
    best = int(costs.argmin())
    if costs[best] < costs[current] - dynamics.DEVIATION_TOLERANCE:
        return best
    return current


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_independent_sets  # noqa: E402
