"""Nash-equilibrium verification and quality bounds (Section 2.2, Theorem 2).

Provides the certificates the tests and benchmarks rely on:

* :func:`is_nash_equilibrium` / :func:`equilibrium_report` — check that no
  player can strictly improve by deviating unilaterally.
* :func:`price_of_stability_bound` — the constant 2 of Theorem 2.
* :func:`price_of_anarchy_bound` — the instance-dependent PoA bound
  ``1 + ((1−α)/α) · (deg_avg · w_avg) / (2 · c_avg)``.
* :func:`round_bound` — Lemma 2's ``max{C*, W*}`` bound on the number of
  rounds under integer scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.instance import RMGPInstance
from repro.core.objective import player_strategy_costs

#: Strictness margin for "can improve"; matches the solvers' deviation rule.
EQUILIBRIUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class EquilibriumReport:
    """Outcome of checking every player's best response.

    ``max_regret`` is the largest unilateral improvement available to any
    player (0 at an exact equilibrium); ``unstable_players`` lists players
    with regret above tolerance.
    """

    is_equilibrium: bool
    max_regret: float
    unstable_players: List[int]

    def __str__(self) -> str:
        if self.is_equilibrium:
            return "Nash equilibrium (max regret {:.2e})".format(self.max_regret)
        return (
            f"not an equilibrium: {len(self.unstable_players)} unstable "
            f"players, max regret {self.max_regret:.6g}"
        )


def equilibrium_report(
    instance: RMGPInstance,
    assignment: np.ndarray,
    tolerance: float = EQUILIBRIUM_TOLERANCE,
) -> EquilibriumReport:
    """Check the Nash condition for every player."""
    instance.validate_assignment(assignment)
    max_regret = 0.0
    unstable: List[int] = []
    for player in range(instance.n):
        costs = player_strategy_costs(instance, assignment, player)
        regret = float(costs[int(assignment[player])] - costs.min())
        if regret > max_regret:
            max_regret = regret
        if regret > tolerance:
            unstable.append(player)
    return EquilibriumReport(
        is_equilibrium=not unstable,
        max_regret=max_regret,
        unstable_players=unstable,
    )


def is_nash_equilibrium(
    instance: RMGPInstance,
    assignment: np.ndarray,
    tolerance: float = EQUILIBRIUM_TOLERANCE,
) -> bool:
    """True when no player can strictly improve by more than ``tolerance``."""
    return equilibrium_report(instance, assignment, tolerance).is_equilibrium


def price_of_stability_bound() -> float:
    """Theorem 2: the best equilibrium costs at most twice the optimum."""
    return 2.0


def price_of_anarchy_bound(instance: RMGPInstance) -> float:
    """Theorem 2's PoA bound for this instance.

    ``PoA ≤ 1 + ((1 − α)/α) · (deg_avg · w_avg) / (2 · c_avg)`` where
    ``c_avg`` is the average minimum per-user assignment cost.  Returns
    ``inf`` when ``c_avg`` is zero (some player has a free class — the
    multiplicative bound is vacuous there).
    """
    deg_avg = instance.graph.average_degree()
    w_avg = instance.graph.average_edge_weight()
    if instance.n == 0:
        return 1.0
    c_avg = float(
        np.mean([instance.cost.row(v).min() for v in range(instance.n)])
    )
    if c_avg <= 0:
        return float("inf")
    alpha = instance.alpha
    return 1.0 + ((1.0 - alpha) / alpha) * (deg_avg * w_avg) / (2.0 * c_avg)


def round_bound(instance: RMGPInstance, scale: float) -> float:
    """Lemma 2's bound ``max{C*, W*}`` on best-response rounds.

    ``scale`` is the multiplicative factor ``d`` making ``d · Φ(S)``
    integral.  ``C* = d · Σ_v max_p c(v, p)`` (worst total assignment
    cost) and ``W* = (d/2) · Σ_e w_e`` (all edges cut).
    """
    worst_assignment = sum(
        float(instance.cost.row(v).max()) for v in range(instance.n)
    )
    c_star = scale * worst_assignment
    w_star = 0.5 * scale * instance.graph.total_edge_weight()
    return max(c_star, w_star)


def anarchy_gap(
    instance: RMGPInstance,
    equilibrium_value: float,
    optimal_value: float,
) -> Tuple[float, float]:
    """Measured ratio vs Theorem 2's bound, as ``(ratio, bound)``.

    ``ratio = equilibrium_value / optimal_value`` must not exceed the
    PoA bound; tests assert this against brute-force optima.
    """
    if optimal_value <= 0:
        return (1.0 if equilibrium_value <= 0 else float("inf"),
                price_of_anarchy_bound(instance))
    return equilibrium_value / optimal_value, price_of_anarchy_bound(instance)
