"""RMGP_gt — scheduling with a global table (Section 4.3, Figure 5).

A ``|V| x k`` table holds, for every player, the current total cost of
every strategy.  A boolean *happiness* flag marks players whose current
strategy is already their best response; rounds only examine unhappy
players.  When a player deviates he notifies his friends: exactly two of
each friend's table entries change (the old and new class), after which
the friend's happiness is re-evaluated.  The per-round cost therefore
shrinks as the game approaches equilibrium (Figure 12(c)).

The trade-off is O(|V|·k) memory; combined with strategy elimination the
table can be restricted to each player's reduced strategy space, which is
what :mod:`repro.core.combined` does.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.result import PartitionResult, RoundStats, make_result


def build_global_table(
    instance: RMGPInstance, assignment: np.ndarray
) -> np.ndarray:
    """The ``|V| x k`` table ``GT[v][p] = C_v(p, π_v)`` (Figure 5 lines 3-5)."""
    table = np.empty((instance.n, instance.k), dtype=np.float64)
    alpha = instance.alpha
    for player in range(instance.n):
        row = alpha * instance.cost.row(player)
        row += instance.max_social_cost[player]
        idx = instance.neighbor_indices[player]
        if idx.size:
            refund = (1.0 - alpha) * 0.5 * instance.neighbor_weights[player]
            np.subtract.at(row, assignment[idx], refund)
        table[player] = row
    return table


def happiness(table: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """Boolean flags: player's current strategy is within tolerance of best."""
    n = table.shape[0]
    current = table[np.arange(n), assignment]
    return current <= table.min(axis=1) + dynamics.DEVIATION_TOLERANCE


def solve_global_table(
    instance: RMGPInstance,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
) -> PartitionResult:
    """Run RMGP_gt on ``instance`` (Figure 5)."""
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    assignment = dynamics.initial_assignment(instance, init, rng, warm_start)
    sweep = dynamics.player_order(instance, order, rng)
    table = build_global_table(instance, assignment)
    happy = happiness(table, assignment)

    rounds: List[RoundStats] = [
        RoundStats(round_index=0, deviations=0, seconds=clock.lap())
    ]

    half = (1.0 - instance.alpha) * 0.5
    tol = dynamics.DEVIATION_TOLERANCE
    converged = False
    round_index = 0
    while not converged:
        round_index += 1
        dynamics.check_round_budget(round_index, max_rounds, "RMGP_gt")
        deviations = 0
        examined = 0
        for player in sweep:
            if happy[player]:
                continue
            examined += 1
            current = int(assignment[player])
            best = int(table[player].argmin())
            if table[player, best] >= table[player, current] - tol:
                happy[player] = True
                continue
            # Deviate and notify friends (Figure 5 lines 10-15).
            assignment[player] = best
            happy[player] = True
            deviations += 1
            idx = instance.neighbor_indices[player]
            wts = instance.neighbor_weights[player]
            for friend, weight in zip(idx, wts):
                delta = half * weight
                table[friend, best] -= delta
                table[friend, current] += delta
                friend_class = int(assignment[friend])
                happy[friend] = (
                    table[friend, friend_class]
                    <= table[friend].min() + tol
                )
        rounds.append(
            RoundStats(
                round_index=round_index,
                deviations=deviations,
                seconds=clock.lap(),
                players_examined=examined,
            )
        )
        converged = deviations == 0

    return make_result(
        solver="RMGP_gt",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=True,
        wall_seconds=clock.total(),
        extra={"table_bytes": table.nbytes},
    )
