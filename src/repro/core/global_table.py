"""RMGP_gt — scheduling with a global table (Section 4.3, Figure 5).

A ``|V| x k`` table holds, for every player, the current total cost of
every strategy.  The table is built in one shot from the instance's CSR
adjacency (a single ``np.bincount`` scatter of all edge refunds), and the
round loop runs on the shared dirty-frontier scheduler
(:class:`repro.core.dynamics.ActiveSet`): a round only examines dirty
players, and when a player deviates he notifies his friends — exactly two
of each friend's table entries change (the old and new class), one
vectorized fancy-index update per move — and marks them dirty.  The
per-round cost therefore shrinks as the game approaches equilibrium
(Figure 12(c)).

The trade-off is O(|V|·k) memory; combined with strategy elimination the
table can be restricted to each player's reduced strategy space, which is
what :mod:`repro.core.combined` does.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core import dynamics
from repro.core.instance import RMGPInstance
from repro.core.objective import potential
from repro.core.result import PartitionResult, RoundStats, make_result
from repro.obs.recorder import Recorder, active_recorder
from repro.parallel.engine import LocalEngine, ShmEngine, make_engine
from repro.runtime.budget import RuntimeBudget
from repro.runtime.checkpoint import SolveCheckpoint, rounds_to_payload
from repro.runtime.executor import SolveRuntime, load_resume


def build_global_table(
    instance: RMGPInstance, assignment: np.ndarray
) -> np.ndarray:
    """The ``|V| x k`` table ``GT[v][p] = C_v(p, π_v)`` (Figure 5 lines 3-5).

    One dense pass: ``α·C + maxSC[:, None]`` minus a single bincount
    scatter of every refund ``(1 − α)·½·w`` onto the linearized
    ``(owner, friend's class)`` keys — no per-player Python loop.
    """
    n, k = instance.n, instance.k
    table = instance.alpha * instance.cost.dense()
    table += instance.max_social_cost[:, None]
    if instance.indices.size:
        assignment = np.asarray(assignment, dtype=np.int64)
        refunds = (1.0 - instance.alpha) * instance.half_weights
        keys = instance.edge_owner * k + assignment[instance.indices]
        table -= np.bincount(keys, weights=refunds, minlength=n * k).reshape(
            n, k
        )
    return table


def happiness(table: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """Boolean flags: player's current strategy is within tolerance of best."""
    n = table.shape[0]
    current = table[np.arange(n), assignment]
    return current <= table.min(axis=1) + dynamics.DEVIATION_TOLERANCE


def table_round(
    instance: RMGPInstance,
    table: np.ndarray,
    assignment: np.ndarray,
    active: dynamics.ActiveSet,
    sweep: Iterable[int],
) -> Tuple[int, int]:
    """One frontier round of table-driven best responses (Figure 5 lines 6-15).

    Shared by :func:`solve_global_table` and
    :class:`repro.core.incremental.IncrementalRMGP` — both maintain the
    same state (table + frontier) and must replay the same schedule.
    Returns ``(deviations, players_examined)``.
    """
    deviations = 0
    examined = 0
    half = (1.0 - instance.alpha) * 0.5
    tol = dynamics.DEVIATION_TOLERANCE
    flags = active.flags
    neighbor_views = instance.neighbor_indices
    weight_views = instance.neighbor_weights
    for player in sweep:
        if not flags[player]:
            continue
        flags[player] = False
        examined += 1
        row = table[player]
        current = int(assignment[player])
        best = int(row.argmin())
        if row[best] >= row[current] - tol:
            continue
        # Deviate and notify friends (Figure 5 lines 10-15): two entries
        # of each friend's row move by ½·w, one vectorized update.
        assignment[player] = best
        deviations += 1
        idx = neighbor_views[player]
        if idx.size:
            deltas = half * weight_views[player]
            table[idx, best] -= deltas
            table[idx, current] += deltas
            flags[idx] = True
    return deviations, examined


def _solve_global_table(
    instance: RMGPInstance,
    init: str = "closest",
    order: str = "degree",
    seed: Optional[int] = None,
    warm_start: Optional[np.ndarray] = None,
    max_rounds: int = dynamics.DEFAULT_MAX_ROUNDS,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    budget: Optional[RuntimeBudget] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
) -> PartitionResult:
    """Run RMGP_gt on ``instance`` (Figure 5).

    The checkpoint serializes the global table itself: rebuilding it
    from the checkpointed assignment would sum the bincount scatter in
    a different order than the incremental ±½·w updates, and a last-ulp
    difference can flip a later argmin — resuming from the stored table
    keeps the trajectory byte-identical.

    ``backend``/``workers``: the ``shm`` backend parallelizes the table
    *build* (the per-row scatter chunks are byte-identical to the full
    scatter); the sweep itself is inherently sequential (each move edits
    friends' rows), so the pool is released right after the build.  The
    ``numba`` backend jits the sweep loop instead.  Either way the
    trajectory is byte-identical to the pure path.
    """
    rec = active_recorder(recorder)
    rng = random.Random(seed)
    clock = dynamics.RoundClock()

    runtime = SolveRuntime.create(
        budget=budget,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        recorder=rec,
    )
    restored = load_resume(resume_from, instance, "RMGP_gt", rec)
    engine = None
    backend_info = {}
    if backend is not None or workers is not None:
        engine, backend_info = make_engine(
            instance,
            backend=backend,
            workers=workers,
            recorder=rec,
            with_table=True,
            tol=dynamics.DEVIATION_TOLERANCE,
        )
    try:
        return _run_global_table(
            instance, init, order, rng, warm_start, max_rounds, rec,
            runtime, restored, engine, backend_info, clock,
        )
    finally:
        if engine is not None:
            engine.shutdown()


def _run_global_table(
    instance: RMGPInstance,
    init: str,
    order: str,
    rng: random.Random,
    warm_start: Optional[np.ndarray],
    max_rounds: int,
    rec: Recorder,
    runtime,
    restored,
    engine,
    backend_info: dict,
    clock: dynamics.RoundClock,
) -> PartitionResult:
    sweep_engine = engine if isinstance(engine, LocalEngine) else None
    with rec.span("solve", solver="RMGP_gt", n=instance.n, k=instance.k):
        if restored is not None:
            assignment = restored.assignment
            sweep = [int(p) for p in restored.state["sweep"]]
            table = restored.state["table"]
            active = dynamics.ActiveSet(instance.n, dirty=restored.frontier)
            if restored.rng_state is not None:
                rng.setstate(restored.rng_state)
            rounds: List[RoundStats] = restored.restored_rounds()
            round_index = restored.round_index
        else:
            with rec.span("round", round=0, phase="init") as init_span:
                assignment = dynamics.initial_assignment(
                    instance, init, rng, warm_start
                )
                sweep = dynamics.player_order(instance, order, rng)
                with rec.span("build_table"):
                    if isinstance(engine, ShmEngine):
                        table = engine.build_table(assignment)
                        # The sweep is inherently serial; release the
                        # workers (and the segment) right away.
                        engine.shutdown()
                    else:
                        table = build_global_table(instance, assignment)
                # Initially dirty = not provably happy, matching Figure 5's
                # first pass.
                active = dynamics.ActiveSet(
                    instance.n, dirty=~happiness(table, assignment)
                )
                if init_span is not None:
                    init_span.attrs["table_bytes"] = int(table.nbytes)
            rounds = [
                RoundStats(round_index=0, deviations=0, seconds=clock.lap())
            ]
            round_index = 0
        rec.gauge("solver.table_bytes", table.nbytes, solver="RMGP_gt")

        def make_checkpoint() -> SolveCheckpoint:
            return SolveCheckpoint(
                solver="RMGP_gt",
                round_index=round_index,
                assignment=assignment.copy(),
                frontier=active.flags.copy(),
                rng_state=rng.getstate(),
                rounds=rounds_to_payload(rounds),
                state={
                    "sweep": [int(p) for p in sweep],
                    "table": table.copy(),
                },
                fingerprint=SolveCheckpoint.fingerprint_of(instance),
            )

        sweep_array = (
            np.asarray(sweep, dtype=np.int64)
            if sweep_engine is not None
            else None
        )
        converged = False
        while not converged:
            if runtime is not None and runtime.check(round_index + 1):
                break
            round_index += 1
            dynamics.check_round_budget(round_index, max_rounds, "RMGP_gt")
            with rec.span("round", round=round_index) as round_span:
                if sweep_engine is not None:
                    deviations, examined = sweep_engine.table_sweep(
                        table, assignment, active.flags, sweep_array
                    )
                else:
                    deviations, examined = table_round(
                        instance, table, assignment, active, sweep
                    )
            rec.round_end(
                round_span, "RMGP_gt", round_index,
                deviations=deviations,
                examined=examined,
                # A table lookup replaces the k-way Eq. 3 scan: one row
                # argmin per examined player.
                cost_evaluations=examined,
                frontier_fn=active.count,
                potential_fn=lambda: potential(instance, assignment),
            )
            rounds.append(
                RoundStats(
                    round_index=round_index,
                    deviations=deviations,
                    seconds=clock.lap(),
                    players_examined=examined,
                )
            )
            converged = deviations == 0
            if runtime is not None and not converged:
                runtime.note_round(round_index, make_checkpoint)
        if runtime is not None:
            runtime.finalize(make_checkpoint)

    extra = {"table_bytes": table.nbytes}
    extra.update(backend_info)
    if not converged:
        extra["remaining_frontier"] = active.count()
    return make_result(
        solver="RMGP_gt",
        instance=instance,
        assignment=assignment,
        rounds=rounds,
        converged=converged,
        wall_seconds=clock.total(),
        extra=extra,
        stop_reason=runtime.stop_reason if runtime is not None else None,
    )


# Legacy entry point(s), consolidated in repro.compat (removal: 2.0).
from repro.compat import solve_global_table  # noqa: E402
