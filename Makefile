# Convenience targets for the RMGP reproduction.

PYTHON ?= python3

.PHONY: install test test-output bench bench-full bench-output bench-perf bench-perf-update bench-parallel bench-serve bench-serve-overload serve examples figures clean

install:
	pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Solver perf-regression check against benchmarks/BENCH_core.json.
# Stale bytecode must never leak into a timing run: purge cached
# benchmark bytecode first and run with -B so none is written back.
bench-perf:
	find benchmarks -name __pycache__ -type d -exec rm -rf {} +
	$(PYTHON) -B benchmarks/bench_perf_regression.py --check --profile core

bench-perf-update:
	find benchmarks -name __pycache__ -type d -exec rm -rf {} +
	$(PYTHON) -B benchmarks/bench_perf_regression.py --update

# Shared-memory backend: speedup-vs-workers curve + byte-identity gate,
# recorded into benchmarks/history/parallel.jsonl.
bench-parallel:
	find benchmarks -name __pycache__ -type d -exec rm -rf {} +
	$(PYTHON) -B benchmarks/bench_parallel.py

# Solve-service load generator: concurrent mixed-deadline HTTP traffic
# + one cancelled job, p50/p99/req/s recorded into
# benchmarks/history/serve.jsonl.
bench-serve:
	$(PYTHON) -B benchmarks/bench_serve.py --check

# Admission storm at ~10x service capacity: shed rate, goodput and
# p99-of-admitted recorded under the serve/overload history key.
bench-serve-overload:
	$(PYTHON) -B benchmarks/bench_serve.py --overload --check

# Run the HTTP/JSON partitioning service on the default port.
serve:
	$(PYTHON) -m repro serve

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

figures:
	for fig in table1 fig7 fig8 fig9 fig10 fig11 fig12a fig12b fig12c fig13 fig14; do \
		$(PYTHON) -m repro figure $$fig; \
	done

# -prune stops find from descending into directories it is about to
# delete (silences spurious "No such file or directory" noise) and the
# explicit src/repro pass catches bytecode landed by PYTHONPATH=src runs.
clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	rm -f benchmarks/history/*.tmp
	find src/repro tests benchmarks . -name __pycache__ -type d -prune -exec rm -rf {} + 2>/dev/null || true
